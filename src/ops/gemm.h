// Small blocked single-precision GEMM and the im2col convolution path
// built on it. Direct convolution (ops/conv2d.h) is memory-bound on the
// DDnet shapes; the im2col+GEMM formulation trades extra memory traffic
// for a compute kernel with far better register/cache reuse — the
// classic alternative kernel strategy on CPUs, provided here so the
// microbenchmarks can compare the two and tests can cross-check them.
#pragma once

#include "core/tensor.h"
#include "ops/conv2d.h"

namespace ccovid::ops {

/// C (m x n) = A (m x k) @ B (k x n), row-major, C overwritten.
/// Cache-blocked with a register-tiled inner kernel; parallel over row
/// blocks.
void sgemm(const real_t* a, const real_t* b, real_t* c, index_t m,
           index_t k, index_t n);

/// Tensor convenience wrapper: returns A @ B for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Unfolds conv patches: input (N, C, H, W) -> (N, C*K*K, Ho*Wo)
/// columns; out-of-bounds taps contribute zeros.
Tensor im2col(const Tensor& input, index_t ksize, Conv2dParams p);

/// Folds columns back (the adjoint of im2col): (N, C*K*K, Ho*Wo) ->
/// (N, C, H, W), accumulating overlaps.
Tensor col2im(const Tensor& cols, index_t channels, index_t h, index_t w,
              index_t ksize, Conv2dParams p);

/// conv2d via im2col + GEMM; numerically identical to ops::conv2d up to
/// float summation order.
Tensor conv2d_gemm(const Tensor& input, const Tensor& weight,
                   const Tensor& bias, Conv2dParams p);

}  // namespace ccovid::ops
