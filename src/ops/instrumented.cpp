#include "ops/instrumented.h"

#include <cstdint>
#include <vector>

namespace ccovid::ops {

namespace {

using u64 = std::uint64_t;

// Number of in-bounds taps per output coordinate along one dimension for
// a gather loop: tap ky is valid iff 0 <= o*stride - pad + ky < extent.
std::vector<u64> gather_valid_counts(index_t out_extent, index_t in_extent,
                                     index_t k, index_t stride,
                                     index_t pad) {
  std::vector<u64> v(static_cast<std::size_t>(out_extent), 0);
  for (index_t o = 0; o < out_extent; ++o) {
    u64 c = 0;
    for (index_t kk = 0; kk < k; ++kk) {
      const index_t i = o * stride - pad + kk;
      if (i >= 0 && i < in_extent) ++c;
    }
    v[static_cast<std::size_t>(o)] = c;
  }
  return v;
}

// For transposed-conv gather: tap valid iff (o + pad - kk) divisible by
// stride and quotient within the input.
std::vector<u64> deconv_gather_valid_counts(index_t out_extent,
                                            index_t in_extent, index_t k,
                                            index_t stride, index_t pad) {
  std::vector<u64> v(static_cast<std::size_t>(out_extent), 0);
  for (index_t o = 0; o < out_extent; ++o) {
    u64 c = 0;
    for (index_t kk = 0; kk < k; ++kk) {
      const index_t num = o + pad - kk;
      if (num < 0 || num % stride != 0) continue;
      if (num / stride < in_extent) ++c;
    }
    v[static_cast<std::size_t>(o)] = c;
  }
  return v;
}

u64 sum(const std::vector<u64>& v) {
  u64 s = 0;
  for (u64 x : v) s += x;
  return s;
}

}  // namespace

OpCounters count_conv2d(index_t n, index_t cin, index_t h, index_t w,
                        index_t cout, index_t k, Conv2dParams p) {
  const index_t ho = conv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = conv_out_extent(w, k, p.stride, p.pad);
  const auto vy = gather_valid_counts(ho, h, k, p.stride, p.pad);
  const auto vx = gather_valid_counts(wo, w, k, p.stride, p.pad);
  // Taps per plane are separable: sum_oy sum_ox vy*vx = sum(vy)*sum(vx).
  const u64 taps_plane = sum(vy) * sum(vx);
  const u64 taps = static_cast<u64>(n * cout * cin) * taps_plane;
  OpCounters c;
  c.global_loads = 2 * taps;  // input element + weight per tap
  c.global_stores = static_cast<u64>(n * cout * ho * wo);
  c.flops = 2 * taps;  // multiply + accumulate
  return c;
}

OpCounters count_deconv2d_gather(index_t n, index_t cin, index_t h,
                                 index_t w, index_t cout, index_t k,
                                 Deconv2dParams p) {
  const index_t ho = deconv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = deconv_out_extent(w, k, p.stride, p.pad);
  const auto vy = deconv_gather_valid_counts(ho, h, k, p.stride, p.pad);
  const auto vx = deconv_gather_valid_counts(wo, w, k, p.stride, p.pad);
  const u64 taps = static_cast<u64>(n * cout * cin) * sum(vy) * sum(vx);
  OpCounters c;
  c.global_loads = 2 * taps;
  c.global_stores = static_cast<u64>(n * cout * ho * wo);
  c.flops = 2 * taps;
  return c;
}

OpCounters count_deconv2d_scatter(index_t n, index_t cin, index_t h,
                                  index_t w, index_t cout, index_t k,
                                  Deconv2dParams p) {
  const index_t ho = deconv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = deconv_out_extent(w, k, p.stride, p.pad);
  // Scatter taps: for input coordinate i, tap kk lands in-bounds iff
  // 0 <= i*stride - pad + kk < out_extent — same structure as a gather
  // over the *input* index space against the output extent.
  const auto vy = gather_valid_counts(h, ho, k, p.stride, p.pad);
  const auto vx = gather_valid_counts(w, wo, k, p.stride, p.pad);
  const u64 taps = static_cast<u64>(n * cout * cin) * sum(vy) * sum(vx);
  OpCounters c;
  // Each (co, ci) pass re-reads every input element once; each tap reads
  // the weight and read-modify-writes the output partial sum.
  c.global_loads = static_cast<u64>(n * cout * cin * h * w)  // input
                   + taps                                    // weights
                   + taps;                                   // output RMW read
  c.global_stores = taps + static_cast<u64>(n * cout * ho * wo);  // + init
  c.flops = 2 * taps;
  return c;
}

OpCounters count_max_pool2d(index_t n, index_t c, index_t h, index_t w,
                            Pool2dParams p) {
  const index_t ho = (h + 2 * p.pad - p.ksize) / p.stride + 1;
  const index_t wo = (w + 2 * p.pad - p.ksize) / p.stride + 1;
  const auto vy = gather_valid_counts(ho, h, p.ksize, p.stride, p.pad);
  const auto vx = gather_valid_counts(wo, w, p.ksize, p.stride, p.pad);
  const u64 taps = static_cast<u64>(n * c) * sum(vy) * sum(vx);
  OpCounters cnt;
  cnt.global_loads = taps;
  cnt.global_stores = static_cast<u64>(n * c * ho * wo);
  cnt.flops = 0;  // comparisons are not counted (Table 6 convention)
  return cnt;
}

OpCounters count_unpool2d(index_t n, index_t c, index_t h, index_t w,
                          index_t scale) {
  const u64 outs = static_cast<u64>(n * c * h * scale * w * scale);
  OpCounters cnt;
  cnt.global_loads = 4 * outs;
  cnt.global_stores = outs;
  cnt.flops = 7 * outs;  // 4 weighted products + 3 adds
  return cnt;
}

OpCounters count_leaky_relu(index_t numel) {
  OpCounters cnt;
  cnt.global_loads = static_cast<u64>(numel);
  cnt.global_stores = static_cast<u64>(numel);
  cnt.flops = static_cast<u64>(numel);
  return cnt;
}

OpCounters count_batch_norm(index_t n, index_t c, index_t spatial) {
  const u64 elems = static_cast<u64>(n * c * spatial);
  OpCounters cnt;
  cnt.global_loads = elems + static_cast<u64>(4 * c);  // x + per-ch params
  cnt.global_stores = elems;
  cnt.flops = 2 * elems + static_cast<u64>(5 * c);  // scale*x+shift + prep
  return cnt;
}

OpCounters count_conv2d_bruteforce(index_t n, index_t cin, index_t h,
                                   index_t w, index_t cout, index_t k,
                                   Conv2dParams p) {
  const index_t ho = conv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = conv_out_extent(w, k, p.stride, p.pad);
  OpCounters c;
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      for (index_t ky = 0; ky < k; ++ky) {
        const index_t iy = oy * p.stride - p.pad + ky;
        if (iy < 0 || iy >= h) continue;
        for (index_t kx = 0; kx < k; ++kx) {
          const index_t ix = ox * p.stride - p.pad + kx;
          if (ix < 0 || ix >= w) continue;
          c.global_loads += 2;
          c.flops += 2;
        }
      }
    }
  }
  c.global_loads *= static_cast<u64>(n * cout * cin);
  c.flops *= static_cast<u64>(n * cout * cin);
  c.global_stores = static_cast<u64>(n * cout * ho * wo);
  return c;
}

OpCounters count_deconv2d_gather_bruteforce(index_t n, index_t cin,
                                            index_t h, index_t w,
                                            index_t cout, index_t k,
                                            Deconv2dParams p) {
  const index_t ho = deconv_out_extent(h, k, p.stride, p.pad);
  const index_t wo = deconv_out_extent(w, k, p.stride, p.pad);
  OpCounters c;
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      for (index_t ky = 0; ky < k; ++ky) {
        const index_t ny = oy + p.pad - ky;
        if (ny < 0 || ny % p.stride != 0 || ny / p.stride >= h) continue;
        for (index_t kx = 0; kx < k; ++kx) {
          const index_t nx = ox + p.pad - kx;
          if (nx < 0 || nx % p.stride != 0 || nx / p.stride >= w) continue;
          c.global_loads += 2;
          c.flops += 2;
        }
      }
    }
  }
  c.global_loads *= static_cast<u64>(n * cout * cin);
  c.flops *= static_cast<u64>(n * cout * cin);
  c.global_stores = static_cast<u64>(n * cout * ho * wo);
  return c;
}

}  // namespace ccovid::ops
