// Exact operation counting for Table 6.
//
// The paper footnotes Table 6 with "the number of floating-point
// operations and memory accesses is obtained by implementing counters in
// each kernel". These functions reproduce that: each one walks the same
// index space as its kernel and tallies, per in-bounds filter tap, the
// global loads, global stores and floating-point operations the kernel
// performs. Boundary handling is exact (padding taps that are skipped by
// the kernel are not counted). Interior/edge structure is separable, so
// the walk is O(H + W) per plane rather than O(H * W * K * K).
//
// Counting conventions (matching the paper's):
//   * a "load"/"store" is one float read/written from/to tensor storage;
//   * a flop is one FP multiply, add, or compare-with-select;
//   * max-pooling contributes 0 flops (comparisons only), as in Table 6;
//   * integer index arithmetic is never counted.
#pragma once

#include "core/counters.h"
#include "core/tensor.h"
#include "ops/conv2d.h"
#include "ops/deconv2d.h"
#include "ops/pool2d.h"

namespace ccovid::ops {

/// Gather-style direct convolution (the library's conv2d).
OpCounters count_conv2d(index_t n, index_t cin, index_t h, index_t w,
                        index_t cout, index_t k, Conv2dParams p);

/// Refactored (gather) deconvolution.
OpCounters count_deconv2d_gather(index_t n, index_t cin, index_t h,
                                 index_t w, index_t cout, index_t k,
                                 Deconv2dParams p);

/// Baseline (scatter) deconvolution with global-memory partial sums; the
/// extra output-plane read-modify-write traffic is what REF removes.
OpCounters count_deconv2d_scatter(index_t n, index_t cin, index_t h,
                                  index_t w, index_t cout, index_t k,
                                  Deconv2dParams p);

/// Max pooling (0 flops per the paper's convention).
OpCounters count_max_pool2d(index_t n, index_t c, index_t h, index_t w,
                            Pool2dParams p);

/// Bilinear un-pooling: 4 loads, 1 store, 7 flops per output element
/// (4 muls + 3 adds).
OpCounters count_unpool2d(index_t n, index_t c, index_t h, index_t w,
                          index_t scale);

/// Leaky-ReLU: 1 load, 1 store, 1 flop per element.
OpCounters count_leaky_relu(index_t numel);

/// Inference batch normalization: 1 load, 1 store, 2 flops per element
/// plus the per-channel scale/shift preparation (5 flops, 4 loads).
OpCounters count_batch_norm(index_t n, index_t c, index_t spatial);

/// Brute-force tap-walking versions used by tests to validate the
/// separable fast counts above. O(output * K * K); keep shapes small.
OpCounters count_conv2d_bruteforce(index_t n, index_t cin, index_t h,
                                   index_t w, index_t cout, index_t k,
                                   Conv2dParams p);
OpCounters count_deconv2d_gather_bruteforce(index_t n, index_t cin,
                                            index_t h, index_t w,
                                            index_t cout, index_t k,
                                            Deconv2dParams p);

}  // namespace ccovid::ops
