// Kernel optimization flags mirroring §4.2 of the paper.
//
// The paper's ablation (Table 7) times the full DDnet under four
// cumulative configurations: Baseline, +REF (deconvolution refactoring
// via inverse coefficient mapping), +PF (memory prefetching of loop
// bounds), +LU (loop unrolling of the multiply-add loop by the filter
// size). Every configuration is a real, separately implemented code path
// here, selected at run time.
#pragma once

#include <string>

namespace ccovid::ops {

struct KernelOptions {
  /// Gather-style deconvolution (inverse coefficient mapping, Fig. 9b)
  /// instead of the scatter baseline with global-memory partial sums
  /// (Fig. 9a).
  bool refactor = true;
  /// Cache loop bounds / filter parameters in locals before the hot loop.
  bool prefetch = true;
  /// Fully unroll the multiply-add loop for the 5x5 and 1x1 filter sizes.
  bool unroll = true;

  static KernelOptions baseline() { return {false, false, false}; }
  static KernelOptions refactored() { return {true, false, false}; }
  static KernelOptions refactored_prefetch() { return {true, true, false}; }
  static KernelOptions all() { return {true, true, true}; }

  std::string str() const {
    std::string s = "baseline";
    if (refactor) s += "+REF";
    if (prefetch) s += "+PF";
    if (unroll) s += "+LU";
    return s;
  }
};

}  // namespace ccovid::ops
