#include "ops/linear.h"

#include <stdexcept>

#include "core/parallel.h"
#include "core/simd.h"
#include "trace/trace.h"

namespace ccovid::ops {

Tensor linear(const Tensor& input, const Tensor& weight,
              const Tensor& bias) {
  TRACE_SPAN("ops.linear");
  if (input.rank() != 2 || weight.rank() != 2 ||
      input.dim(1) != weight.dim(1)) {
    throw std::invalid_argument("linear: shapes " + input.shape().str() +
                                " x " + weight.shape().str());
  }
  const index_t n = input.dim(0), in_f = input.dim(1), out_f = weight.dim(0);
  if (bias.defined() && (bias.rank() != 1 || bias.dim(0) != out_f)) {
    throw std::invalid_argument("linear: bias must be (Out)");
  }
  Tensor out({n, out_f});
  const real_t* ip = input.data();
  const real_t* wp = weight.data();
  const real_t* bp = bias.defined() ? bias.data() : nullptr;
  real_t* op = out.data();
  const simd::KernelTable& kt = simd::kernels();
  parallel_for(
      0, n,
      [&](index_t ni) {
        const real_t* x = ip + ni * in_f;
        real_t* y = op + ni * out_f;
        for (index_t o = 0; o < out_f; ++o) {
          // Canonical 8-lane strided dot (element i -> lane i%8, fixed
          // reduction tree): every backend yields the same bits, unlike
          // the historical sequential accumulation this replaces.
          y[o] = (bp ? bp[o] : 0.0f) + kt.dot(x, wp + o * in_f, in_f);
        }
      },
      /*grain=*/1);
  return out;
}

Tensor linear_backward_input(const Tensor& grad_out, const Tensor& weight) {
  const index_t n = grad_out.dim(0), out_f = grad_out.dim(1),
                in_f = weight.dim(1);
  Tensor gin({n, in_f});
  const real_t* gp = grad_out.data();
  const real_t* wp = weight.data();
  real_t* op = gin.data();
  for (index_t ni = 0; ni < n; ++ni) {
    const real_t* dy = gp + ni * out_f;
    real_t* dx = op + ni * in_f;
    for (index_t o = 0; o < out_f; ++o) {
      const real_t g = dy[o];
      const real_t* w = wp + o * in_f;
      for (index_t i = 0; i < in_f; ++i) dx[i] += g * w[i];
    }
  }
  return gin;
}

Tensor linear_backward_weight(const Tensor& grad_out, const Tensor& input) {
  const index_t n = grad_out.dim(0), out_f = grad_out.dim(1),
                in_f = input.dim(1);
  Tensor gw({out_f, in_f});
  const real_t* gp = grad_out.data();
  const real_t* ip = input.data();
  real_t* wp = gw.data();
  for (index_t ni = 0; ni < n; ++ni) {
    const real_t* dy = gp + ni * out_f;
    const real_t* x = ip + ni * in_f;
    for (index_t o = 0; o < out_f; ++o) {
      const real_t g = dy[o];
      real_t* w = wp + o * in_f;
      for (index_t i = 0; i < in_f; ++i) w[i] += g * x[i];
    }
  }
  return gw;
}

Tensor linear_backward_bias(const Tensor& grad_out) {
  const index_t n = grad_out.dim(0), out_f = grad_out.dim(1);
  Tensor gb({out_f});
  const real_t* gp = grad_out.data();
  real_t* bp = gb.data();
  for (index_t ni = 0; ni < n; ++ni) {
    for (index_t o = 0; o < out_f; ++o) bp[o] += gp[ni * out_f + o];
  }
  return gb;
}

}  // namespace ccovid::ops
