// Fully-connected layer: the classifier head of the 3-D DenseNet.
#pragma once

#include "core/tensor.h"

namespace ccovid::ops {

/// y = x @ W^T + b with x (N, In), W (Out, In), b (Out) or undefined.
Tensor linear(const Tensor& input, const Tensor& weight, const Tensor& bias);

Tensor linear_backward_input(const Tensor& grad_out, const Tensor& weight);
Tensor linear_backward_weight(const Tensor& grad_out, const Tensor& input);
Tensor linear_backward_bias(const Tensor& grad_out);

}  // namespace ccovid::ops
