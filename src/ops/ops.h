// Umbrella header for the kernel library.
#pragma once

#include "ops/activations.h"
#include "ops/batchnorm.h"
#include "ops/concat.h"
#include "ops/conv2d.h"
#include "ops/conv3d.h"
#include "ops/deconv2d.h"
#include "ops/instrumented.h"
#include "ops/kernel_options.h"
#include "ops/linear.h"
#include "ops/pool2d.h"
#include "ops/pool3d.h"
#include "ops/unpool2d.h"
