#include "ops/pool2d.h"

#include <limits>
#include <stdexcept>

#include "core/parallel.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

void check_pool_args(const Tensor& input, const Pool2dParams& p) {
  if (input.rank() != 4) {
    throw std::invalid_argument("pool2d: input must be NCHW");
  }
  if (p.ksize < 1 || p.stride < 1 || p.pad < 0 || p.pad >= p.ksize) {
    throw std::invalid_argument("pool2d: bad params");
  }
}

}  // namespace

index_t pool_out_extent(index_t in, const Pool2dParams& p) {
  return (in + 2 * p.pad - p.ksize) / p.stride + 1;
}

void max_pool2d_plane(const real_t* in_p, real_t* out_p, index_t* arg_p,
                      index_t h, index_t w, index_t ho, index_t wo,
                      const Pool2dParams& p) {
  for (index_t oy = 0; oy < ho; ++oy) {
    for (index_t ox = 0; ox < wo; ++ox) {
      real_t best = -std::numeric_limits<real_t>::infinity();
      index_t best_ix = 0;
      for (index_t ky = 0; ky < p.ksize; ++ky) {
        const index_t iy = oy * p.stride - p.pad + ky;
        if (iy < 0 || iy >= h) continue;
        for (index_t kx = 0; kx < p.ksize; ++kx) {
          const index_t ix = ox * p.stride - p.pad + kx;
          if (ix < 0 || ix >= w) continue;
          const real_t v = in_p[iy * w + ix];
          if (v > best) {
            best = v;
            best_ix = iy * w + ix;
          }
        }
      }
      out_p[oy * wo + ox] = best;
      if (arg_p) arg_p[oy * wo + ox] = best_ix;
    }
  }
}

MaxPool2dResult max_pool2d(const Tensor& input, Pool2dParams p) {
  TRACE_SPAN("ops.max_pool2d");
  check_pool_args(input, p);
  const index_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t ho = pool_out_extent(h, p);
  const index_t wo = pool_out_extent(w, p);
  MaxPool2dResult res{Tensor({n, c, ho, wo}),
                      std::vector<index_t>(
                          static_cast<std::size_t>(n * c * ho * wo))};
  const real_t* ip = input.data();
  real_t* op = res.output.data();
  index_t* ap = res.argmax.data();

  parallel_for(
      0, n * c,
      [&](index_t plane) {
        max_pool2d_plane(ip + plane * h * w, op + plane * ho * wo,
                         ap + plane * ho * wo, h, w, ho, wo, p);
      },
      /*grain=*/1);
  return res;
}

Tensor max_pool2d_backward(const Tensor& grad_out,
                           const std::vector<index_t>& argmax,
                           index_t input_h, index_t input_w) {
  const index_t n = grad_out.dim(0), c = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  if (static_cast<index_t>(argmax.size()) != n * c * ho * wo) {
    throw std::invalid_argument("max_pool2d_backward: argmax size mismatch");
  }
  Tensor gin({n, c, input_h, input_w});
  const real_t* gp = grad_out.data();
  real_t* op = gin.data();
  const index_t* ap = argmax.data();
  // Scatter per (n, c) plane: windows can overlap (ksize > stride), so
  // accumulate rather than assign.
  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* g = gp + plane * ho * wo;
        const index_t* a = ap + plane * ho * wo;
        real_t* out = op + plane * input_h * input_w;
        for (index_t i = 0; i < ho * wo; ++i) out[a[i]] += g[i];
      },
      /*grain=*/1);
  return gin;
}

Tensor avg_pool2d(const Tensor& input, Pool2dParams p) {
  TRACE_SPAN("ops.avg_pool2d");
  check_pool_args(input, p);
  const index_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t ho = pool_out_extent(h, p);
  const index_t wo = pool_out_extent(w, p);
  Tensor out({n, c, ho, wo});
  const real_t* ip = input.data();
  real_t* op = out.data();
  // Divisor is the full kernel area (count_include_pad), keeping the
  // backward pass a uniform redistribute.
  const real_t inv_area =
      1.0f / static_cast<real_t>(p.ksize * p.ksize);
  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* in_p = ip + plane * h * w;
        real_t* out_p = op + plane * ho * wo;
        for (index_t oy = 0; oy < ho; ++oy) {
          for (index_t ox = 0; ox < wo; ++ox) {
            real_t acc = 0.0f;
            for (index_t ky = 0; ky < p.ksize; ++ky) {
              const index_t iy = oy * p.stride - p.pad + ky;
              if (iy < 0 || iy >= h) continue;
              for (index_t kx = 0; kx < p.ksize; ++kx) {
                const index_t ix = ox * p.stride - p.pad + kx;
                if (ix < 0 || ix >= w) continue;
                acc += in_p[iy * w + ix];
              }
            }
            out_p[oy * wo + ox] = acc * inv_area;
          }
        }
      },
      /*grain=*/1);
  return out;
}

Tensor avg_pool2d_backward(const Tensor& grad_out, Pool2dParams p,
                           index_t input_h, index_t input_w) {
  const index_t n = grad_out.dim(0), c = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  Tensor gin({n, c, input_h, input_w});
  const real_t* gp = grad_out.data();
  real_t* op = gin.data();
  const real_t inv_area =
      1.0f / static_cast<real_t>(p.ksize * p.ksize);
  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* g = gp + plane * ho * wo;
        real_t* out = op + plane * input_h * input_w;
        for (index_t oy = 0; oy < ho; ++oy) {
          for (index_t ox = 0; ox < wo; ++ox) {
            const real_t v = g[oy * wo + ox] * inv_area;
            for (index_t ky = 0; ky < p.ksize; ++ky) {
              const index_t iy = oy * p.stride - p.pad + ky;
              if (iy < 0 || iy >= input_h) continue;
              for (index_t kx = 0; kx < p.ksize; ++kx) {
                const index_t ix = ox * p.stride - p.pad + kx;
                if (ix < 0 || ix >= input_w) continue;
                out[iy * input_w + ix] += v;
              }
            }
          }
        }
      },
      /*grain=*/1);
  return gin;
}

}  // namespace ccovid::ops
