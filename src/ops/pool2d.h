// 2-D pooling. DDnet's pooling layers are 3x3/stride-2 with "same"-style
// padding 1, halving each spatial dimension (512 -> 256 -> ... -> 32).
// Max pooling keeps argmax indices for the backward pass; average pooling
// is provided for the classifier's transition layers.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace ccovid::ops {

struct Pool2dParams {
  index_t ksize = 3;
  index_t stride = 2;
  index_t pad = 1;
};

struct MaxPool2dResult {
  Tensor output;
  /// Flat (h*w) index of the winning input element per output element,
  /// same layout as output; used by max_pool2d_backward.
  std::vector<index_t> argmax;
};

MaxPool2dResult max_pool2d(const Tensor& input, Pool2dParams p);

/// Routes grad_out back to the argmax positions.
Tensor max_pool2d_backward(const Tensor& grad_out,
                           const std::vector<index_t>& argmax,
                           index_t input_h, index_t input_w);

Tensor avg_pool2d(const Tensor& input, Pool2dParams p);

Tensor avg_pool2d_backward(const Tensor& grad_out, Pool2dParams p,
                           index_t input_h, index_t input_w);

}  // namespace ccovid::ops
