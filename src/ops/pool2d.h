// 2-D pooling. DDnet's pooling layers are 3x3/stride-2 with "same"-style
// padding 1, halving each spatial dimension (512 -> 256 -> ... -> 32).
// Max pooling keeps argmax indices for the backward pass; average pooling
// is provided for the classifier's transition layers.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace ccovid::ops {

struct Pool2dParams {
  index_t ksize = 3;
  index_t stride = 2;
  index_t pad = 1;
};

struct MaxPool2dResult {
  Tensor output;
  /// Flat (h*w) index of the winning input element per output element,
  /// same layout as output; used by max_pool2d_backward.
  std::vector<index_t> argmax;
};

MaxPool2dResult max_pool2d(const Tensor& input, Pool2dParams p);

/// Output spatial extent for one dimension: (in + 2*pad - ksize)/stride + 1.
index_t pool_out_extent(index_t in, const Pool2dParams& p);

/// One (H, W) plane of max pooling, raw pointers. `arg_p` (when non-null)
/// receives the flat argmax per output element. This is THE plane loop
/// max_pool2d runs per (n, c); the graph executor calls it directly so
/// the compiled path shares the op's exact comparison order.
void max_pool2d_plane(const real_t* in_p, real_t* out_p, index_t* arg_p,
                      index_t h, index_t w, index_t ho, index_t wo,
                      const Pool2dParams& p);

/// Routes grad_out back to the argmax positions.
Tensor max_pool2d_backward(const Tensor& grad_out,
                           const std::vector<index_t>& argmax,
                           index_t input_h, index_t input_w);

Tensor avg_pool2d(const Tensor& input, Pool2dParams p);

Tensor avg_pool2d_backward(const Tensor& grad_out, Pool2dParams p,
                           index_t input_h, index_t input_w);

}  // namespace ccovid::ops
