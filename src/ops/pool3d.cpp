#include "ops/pool3d.h"

#include <limits>
#include <stdexcept>

#include "core/parallel.h"
#include "trace/trace.h"

namespace ccovid::ops {

namespace {

index_t out_extent(index_t in, const Pool3dParams& p) {
  return (in + 2 * p.pad - p.ksize) / p.stride + 1;
}

void check_args(const Tensor& input, const Pool3dParams& p) {
  if (input.rank() != 5) {
    throw std::invalid_argument("pool3d: input must be NCDHW");
  }
  if (p.ksize < 1 || p.stride < 1 || p.pad < 0 || p.pad >= p.ksize) {
    throw std::invalid_argument("pool3d: bad params");
  }
}

}  // namespace

MaxPool3dResult max_pool3d(const Tensor& input, Pool3dParams p) {
  TRACE_SPAN("ops.max_pool3d");
  check_args(input, p);
  const index_t n = input.dim(0), c = input.dim(1), d = input.dim(2),
                h = input.dim(3), w = input.dim(4);
  const index_t od = out_extent(d, p), oh = out_extent(h, p),
                ow = out_extent(w, p);
  MaxPool3dResult res{
      Tensor({n, c, od, oh, ow}),
      std::vector<index_t>(static_cast<std::size_t>(n * c * od * oh * ow))};
  const real_t* ip = input.data();
  real_t* op = res.output.data();
  index_t* ap = res.argmax.data();

  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* in_p = ip + plane * d * h * w;
        real_t* out_p = op + plane * od * oh * ow;
        index_t* arg_p = ap + plane * od * oh * ow;
        for (index_t oz = 0; oz < od; ++oz) {
          for (index_t oy = 0; oy < oh; ++oy) {
            for (index_t ox = 0; ox < ow; ++ox) {
              real_t best = -std::numeric_limits<real_t>::infinity();
              index_t best_ix = 0;
              for (index_t kz = 0; kz < p.ksize; ++kz) {
                const index_t iz = oz * p.stride - p.pad + kz;
                if (iz < 0 || iz >= d) continue;
                for (index_t ky = 0; ky < p.ksize; ++ky) {
                  const index_t iy = oy * p.stride - p.pad + ky;
                  if (iy < 0 || iy >= h) continue;
                  for (index_t kx = 0; kx < p.ksize; ++kx) {
                    const index_t ix = ox * p.stride - p.pad + kx;
                    if (ix < 0 || ix >= w) continue;
                    const real_t v = in_p[(iz * h + iy) * w + ix];
                    if (v > best) {
                      best = v;
                      best_ix = (iz * h + iy) * w + ix;
                    }
                  }
                }
              }
              out_p[(oz * oh + oy) * ow + ox] = best;
              arg_p[(oz * oh + oy) * ow + ox] = best_ix;
            }
          }
        }
      },
      /*grain=*/1);
  return res;
}

Tensor max_pool3d_backward(const Tensor& grad_out,
                           const std::vector<index_t>& argmax, index_t in_d,
                           index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), c = grad_out.dim(1),
                sp = grad_out.dim(2) * grad_out.dim(3) * grad_out.dim(4);
  if (static_cast<index_t>(argmax.size()) != n * c * sp) {
    throw std::invalid_argument("max_pool3d_backward: argmax mismatch");
  }
  Tensor gin({n, c, in_d, in_h, in_w});
  const real_t* gp = grad_out.data();
  real_t* op = gin.data();
  const index_t* ap = argmax.data();
  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* g = gp + plane * sp;
        const index_t* a = ap + plane * sp;
        real_t* out = op + plane * in_d * in_h * in_w;
        for (index_t i = 0; i < sp; ++i) out[a[i]] += g[i];
      },
      /*grain=*/1);
  return gin;
}

Tensor avg_pool3d(const Tensor& input, Pool3dParams p) {
  TRACE_SPAN("ops.avg_pool3d");
  check_args(input, p);
  const index_t n = input.dim(0), c = input.dim(1), d = input.dim(2),
                h = input.dim(3), w = input.dim(4);
  const index_t od = out_extent(d, p), oh = out_extent(h, p),
                ow = out_extent(w, p);
  Tensor out({n, c, od, oh, ow});
  const real_t* ip = input.data();
  real_t* op = out.data();
  const real_t inv = 1.0f / static_cast<real_t>(p.ksize * p.ksize * p.ksize);
  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* in_p = ip + plane * d * h * w;
        real_t* out_p = op + plane * od * oh * ow;
        for (index_t oz = 0; oz < od; ++oz) {
          for (index_t oy = 0; oy < oh; ++oy) {
            for (index_t ox = 0; ox < ow; ++ox) {
              real_t acc = 0.0f;
              for (index_t kz = 0; kz < p.ksize; ++kz) {
                const index_t iz = oz * p.stride - p.pad + kz;
                if (iz < 0 || iz >= d) continue;
                for (index_t ky = 0; ky < p.ksize; ++ky) {
                  const index_t iy = oy * p.stride - p.pad + ky;
                  if (iy < 0 || iy >= h) continue;
                  for (index_t kx = 0; kx < p.ksize; ++kx) {
                    const index_t ix = ox * p.stride - p.pad + kx;
                    if (ix < 0 || ix >= w) continue;
                    acc += in_p[(iz * h + iy) * w + ix];
                  }
                }
              }
              out_p[(oz * oh + oy) * ow + ox] = acc * inv;
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

Tensor avg_pool3d_backward(const Tensor& grad_out, Pool3dParams p,
                           index_t in_d, index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), c = grad_out.dim(1),
                od = grad_out.dim(2), oh = grad_out.dim(3),
                ow = grad_out.dim(4);
  Tensor gin({n, c, in_d, in_h, in_w});
  const real_t* gp = grad_out.data();
  real_t* op = gin.data();
  const real_t inv = 1.0f / static_cast<real_t>(p.ksize * p.ksize * p.ksize);
  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* g = gp + plane * od * oh * ow;
        real_t* out = op + plane * in_d * in_h * in_w;
        for (index_t oz = 0; oz < od; ++oz) {
          for (index_t oy = 0; oy < oh; ++oy) {
            for (index_t ox = 0; ox < ow; ++ox) {
              const real_t v = g[(oz * oh + oy) * ow + ox] * inv;
              for (index_t kz = 0; kz < p.ksize; ++kz) {
                const index_t iz = oz * p.stride - p.pad + kz;
                if (iz < 0 || iz >= in_d) continue;
                for (index_t ky = 0; ky < p.ksize; ++ky) {
                  const index_t iy = oy * p.stride - p.pad + ky;
                  if (iy < 0 || iy >= in_h) continue;
                  for (index_t kx = 0; kx < p.ksize; ++kx) {
                    const index_t ix = ox * p.stride - p.pad + kx;
                    if (ix < 0 || ix >= in_w) continue;
                    out[(iz * in_h + iy) * in_w + ix] += v;
                  }
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
  return gin;
}

Tensor global_avg_pool3d(const Tensor& input) {
  TRACE_SPAN("ops.global_avg_pool3d");
  if (input.rank() != 5) {
    throw std::invalid_argument("global_avg_pool3d: input must be NCDHW");
  }
  const index_t n = input.dim(0), c = input.dim(1),
                sp = input.dim(2) * input.dim(3) * input.dim(4);
  Tensor out({n, c});
  const real_t* ip = input.data();
  real_t* op = out.data();
  for (index_t plane = 0; plane < n * c; ++plane) {
    double acc = 0.0;
    const real_t* x = ip + plane * sp;
    for (index_t i = 0; i < sp; ++i) acc += x[i];
    op[plane] = static_cast<real_t>(acc / static_cast<double>(sp));
  }
  return out;
}

Tensor global_avg_pool3d_backward(const Tensor& grad_out, index_t in_d,
                                  index_t in_h, index_t in_w) {
  const index_t n = grad_out.dim(0), c = grad_out.dim(1);
  const index_t sp = in_d * in_h * in_w;
  Tensor gin({n, c, in_d, in_h, in_w});
  const real_t* gp = grad_out.data();
  real_t* op = gin.data();
  const real_t inv = 1.0f / static_cast<real_t>(sp);
  for (index_t plane = 0; plane < n * c; ++plane) {
    const real_t v = gp[plane] * inv;
    real_t* out = op + plane * sp;
    for (index_t i = 0; i < sp; ++i) out[i] = v;
  }
  return gin;
}

}  // namespace ccovid::ops
