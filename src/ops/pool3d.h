// 3-D pooling for the classifier: max pooling after each dense block,
// average pooling in transitions, and global average pooling before the
// fully-connected head (NCDHW layout).
#pragma once

#include <vector>

#include "core/tensor.h"

namespace ccovid::ops {

struct Pool3dParams {
  index_t ksize = 2;
  index_t stride = 2;
  index_t pad = 0;
};

struct MaxPool3dResult {
  Tensor output;
  std::vector<index_t> argmax;  ///< flat (d*h*w) winner per output element
};

MaxPool3dResult max_pool3d(const Tensor& input, Pool3dParams p);
Tensor max_pool3d_backward(const Tensor& grad_out,
                           const std::vector<index_t>& argmax, index_t in_d,
                           index_t in_h, index_t in_w);

Tensor avg_pool3d(const Tensor& input, Pool3dParams p);
Tensor avg_pool3d_backward(const Tensor& grad_out, Pool3dParams p,
                           index_t in_d, index_t in_h, index_t in_w);

/// (N, C, D, H, W) -> (N, C): mean over the spatial volume.
Tensor global_avg_pool3d(const Tensor& input);
Tensor global_avg_pool3d_backward(const Tensor& grad_out, index_t in_d,
                                  index_t in_h, index_t in_w);

}  // namespace ccovid::ops
