#include "ops/unpool2d.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "trace/trace.h"

namespace ccovid::ops {

Lerp unpool_lerp(index_t o, index_t scale, index_t in_extent) {
  const double src =
      (static_cast<double>(o) + 0.5) / static_cast<double>(scale) - 0.5;
  const double clamped = std::clamp(src, 0.0, double(in_extent - 1));
  const index_t lo = static_cast<index_t>(std::floor(clamped));
  const index_t hi = std::min(lo + 1, in_extent - 1);
  const real_t w_hi = static_cast<real_t>(clamped - double(lo));
  return {lo, hi, 1.0f - w_hi, w_hi};
}

void unpool2d_bilinear_plane(const real_t* in_p, real_t* out_p, index_t w,
                             index_t ho, index_t wo, const Lerp* ly,
                             const Lerp* lx) {
  for (index_t oy = 0; oy < ho; ++oy) {
    const Lerp& y = ly[oy];
    for (index_t ox = 0; ox < wo; ++ox) {
      const Lerp& x = lx[ox];
      out_p[oy * wo + ox] =
          y.w_lo * (x.w_lo * in_p[y.lo * w + x.lo] +
                    x.w_hi * in_p[y.lo * w + x.hi]) +
          y.w_hi * (x.w_lo * in_p[y.hi * w + x.lo] +
                    x.w_hi * in_p[y.hi * w + x.hi]);
    }
  }
}

Tensor unpool2d_bilinear(const Tensor& input, index_t scale) {
  TRACE_SPAN("ops.unpool2d");
  if (input.rank() != 4) {
    throw std::invalid_argument("unpool2d: input must be NCHW");
  }
  if (scale < 1) throw std::invalid_argument("unpool2d: scale < 1");
  const index_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const index_t ho = h * scale, wo = w * scale;
  Tensor out({n, c, ho, wo});
  const real_t* ip = input.data();
  real_t* op = out.data();

  // Interpolation weights depend only on the output coordinate; compute
  // once per row/column.
  std::vector<Lerp> ly(static_cast<std::size_t>(ho)),
      lx(static_cast<std::size_t>(wo));
  for (index_t oy = 0; oy < ho; ++oy) ly[oy] = unpool_lerp(oy, scale, h);
  for (index_t ox = 0; ox < wo; ++ox) lx[ox] = unpool_lerp(ox, scale, w);

  parallel_for(
      0, n * c,
      [&](index_t plane) {
        unpool2d_bilinear_plane(ip + plane * h * w, op + plane * ho * wo, w,
                                ho, wo, ly.data(), lx.data());
      },
      /*grain=*/1);
  return out;
}

Tensor unpool2d_bilinear_backward(const Tensor& grad_out, index_t scale,
                                  index_t input_h, index_t input_w) {
  const index_t n = grad_out.dim(0), c = grad_out.dim(1),
                ho = grad_out.dim(2), wo = grad_out.dim(3);
  if (ho != input_h * scale || wo != input_w * scale) {
    throw std::invalid_argument("unpool2d_backward: size mismatch");
  }
  Tensor gin({n, c, input_h, input_w});
  const real_t* gp = grad_out.data();
  real_t* op = gin.data();

  std::vector<Lerp> ly(static_cast<std::size_t>(ho)),
      lx(static_cast<std::size_t>(wo));
  for (index_t oy = 0; oy < ho; ++oy) ly[oy] = unpool_lerp(oy, scale, input_h);
  for (index_t ox = 0; ox < wo; ++ox) lx[ox] = unpool_lerp(ox, scale, input_w);

  parallel_for(
      0, n * c,
      [&](index_t plane) {
        const real_t* g = gp + plane * ho * wo;
        real_t* out = op + plane * input_h * input_w;
        for (index_t oy = 0; oy < ho; ++oy) {
          const Lerp& y = ly[oy];
          for (index_t ox = 0; ox < wo; ++ox) {
            const Lerp& x = lx[ox];
            const real_t v = g[oy * wo + ox];
            out[y.lo * input_w + x.lo] += y.w_lo * x.w_lo * v;
            out[y.lo * input_w + x.hi] += y.w_lo * x.w_hi * v;
            out[y.hi * input_w + x.lo] += y.w_hi * x.w_lo * v;
            out[y.hi * input_w + x.hi] += y.w_hi * x.w_hi * v;
          }
        }
      },
      /*grain=*/1);
  return gin;
}

}  // namespace ccovid::ops
