// Un-pooling: bilinear interpolation upsampling by an integer scale
// factor (DDnet uses 2), as described in §2.2.2. Uses half-pixel-center
// sampling (align_corners = false), so the operation is exactly the
// adjoint of its backward pass.
#pragma once

#include "core/tensor.h"

namespace ccovid::ops {

/// Per-output-coordinate bilinear interpolation weights. The tables
/// depend only on (output extent, scale, input extent), so the graph
/// compiler hoists them into per-node constants instead of rebuilding
/// them every call.
struct Lerp {
  index_t lo, hi;
  real_t w_lo, w_hi;
};

/// Half-pixel-center source coordinate for output index `o`, clamped.
Lerp unpool_lerp(index_t o, index_t scale, index_t in_extent);

/// One (H, W) -> (Ho, Wo) plane of bilinear upsampling with precomputed
/// row/column tables — the exact plane loop unpool2d_bilinear runs per
/// (n, c); shared with the graph executor for bitwise parity.
void unpool2d_bilinear_plane(const real_t* in_p, real_t* out_p, index_t w,
                             index_t ho, index_t wo, const Lerp* ly,
                             const Lerp* lx);

/// (N, C, H, W) -> (N, C, H*scale, W*scale) via bilinear interpolation.
Tensor unpool2d_bilinear(const Tensor& input, index_t scale = 2);

/// Adjoint: distributes each output gradient across the (up to) four
/// source pixels with the interpolation weights.
Tensor unpool2d_bilinear_backward(const Tensor& grad_out, index_t scale,
                                  index_t input_h, index_t input_w);

}  // namespace ccovid::ops
