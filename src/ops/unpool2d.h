// Un-pooling: bilinear interpolation upsampling by an integer scale
// factor (DDnet uses 2), as described in §2.2.2. Uses half-pixel-center
// sampling (align_corners = false), so the operation is exactly the
// adjoint of its backward pass.
#pragma once

#include "core/tensor.h"

namespace ccovid::ops {

/// (N, C, H, W) -> (N, C, H*scale, W*scale) via bilinear interpolation.
Tensor unpool2d_bilinear(const Tensor& input, index_t scale = 2);

/// Adjoint: distributes each output gradient across the (up to) four
/// source pixels with the interpolation weights.
Tensor unpool2d_bilinear_backward(const Tensor& grad_out, index_t scale,
                                  index_t input_h, index_t input_w);

}  // namespace ccovid::ops
