#include "pipeline/classification_ai.h"

#include <stdexcept>

#include "autograd/optim.h"

namespace ccovid::pipeline {

namespace {

autograd::Var volume_to_batch(const Tensor& volume) {
  return autograd::Var(volume.clone().reshape(
      {1, 1, volume.dim(0), volume.dim(1), volume.dim(2)}));
}

}  // namespace

ClassificationAI::ClassificationAI(nn::DenseNet3dConfig cfg) : net_(cfg) {
  // Volumes are classified one at a time (batch 1), so inference uses
  // per-sample normalization statistics — running statistics trained at
  // batch 1 are not representative (see Module::set_batch_stats_always).
  net_.set_batch_stats_always(true);
}

std::vector<ClassifierEpochLog> ClassificationAI::train(
    const std::vector<Tensor>& volumes, const std::vector<int>& labels,
    const ClassificationTrainConfig& cfg, Rng& rng,
    const std::vector<Tensor>* val_volumes,
    const std::vector<int>* val_labels) {
  if (volumes.empty() || volumes.size() != labels.size()) {
    throw std::invalid_argument("ClassificationAI::train: bad inputs");
  }
  autograd::Adam opt(net_.parameters(), cfg.lr);
  std::vector<ClassifierEpochLog> logs;
  std::vector<index_t> order(volumes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    net_.set_training(true);
    for (index_t i = static_cast<index_t>(order.size()) - 1; i > 0; --i) {
      std::swap(order[i], order[rng.uniform_int(0, i)]);
    }
    double train_loss = 0.0;
    for (index_t idx : order) {
      Tensor input = cfg.augment
                         ? data::augment_volume(volumes[idx],
                                                cfg.augment_cfg, rng)
                         : volumes[idx].clone();
      autograd::Var logits = net_.forward(volume_to_batch(input));
      Tensor target({1, 1});
      target.at(0, 0) = static_cast<real_t>(labels[idx]);
      autograd::Var loss = autograd::bce_with_logits_loss(logits, target);
      opt.zero_grad();
      loss.backward();
      opt.step();
      train_loss += static_cast<double>(loss.value().at(0));
    }
    train_loss /= static_cast<double>(order.size());

    double val_loss = train_loss;
    if (val_volumes != nullptr && !val_volumes->empty()) {
      autograd::NoGradGuard no_grad;
      net_.set_training(false);
      double total = 0.0;
      for (std::size_t i = 0; i < val_volumes->size(); ++i) {
        autograd::Var logits =
            net_.forward(volume_to_batch((*val_volumes)[i]));
        Tensor target({1, 1});
        target.at(0, 0) = static_cast<real_t>((*val_labels)[i]);
        total += static_cast<double>(
            autograd::bce_with_logits_loss(logits, target).value().at(0));
      }
      val_loss = total / static_cast<double>(val_volumes->size());
    }
    logs.push_back({epoch + 1, train_loss, val_loss});
  }
  net_.set_training(false);
  return logs;
}

double ClassificationAI::predict(const Tensor& volume) const {
  return net_.predict_probability(volume);
}

ClassificationScores ClassificationAI::score_all(
    const std::vector<Tensor>& volumes,
    const std::vector<int>& labels) const {
  if (volumes.size() != labels.size()) {
    throw std::invalid_argument("score_all: size mismatch");
  }
  ClassificationScores s;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    s.probabilities.push_back(predict(volumes[i]));
    s.labels.push_back(labels[i]);
  }
  return s;
}

}  // namespace ccovid::pipeline
