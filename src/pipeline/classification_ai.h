// Classification AI (§2.3.2, §3.3): the 3-D DenseNet that scores a CT
// volume as COVID-positive or negative. Trained with binary
// cross-entropy (Eq. 2), Adam, and the §3.3.1 augmentations (Gaussian
// noise p=0.75, contrast p=0.5, intensity scale 0.1).
#pragma once

#include <vector>

#include "autograd/losses.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "nn/densenet3d.h"

namespace ccovid::pipeline {

struct ClassificationTrainConfig {
  int epochs = 10;
  /// The paper uses 1e-6 for its large model over 100 epochs; the
  /// compact default needs a proportionally larger rate.
  double lr = 1e-3;
  bool augment = true;
  data::AugmentConfig augment_cfg;

  static ClassificationTrainConfig paper() {
    ClassificationTrainConfig c;
    c.epochs = 100;
    c.lr = 1e-6;
    return c;
  }
};

struct ClassifierEpochLog {
  int epoch;
  double train_loss;
  double val_loss;  ///< equals train_loss when no validation set given
};

struct ClassificationScores {
  std::vector<double> probabilities;  ///< sigmoid score per volume
  std::vector<int> labels;            ///< ground truth
};

class ClassificationAI {
 public:
  explicit ClassificationAI(
      nn::DenseNet3dConfig cfg = nn::DenseNet3dConfig::compact());

  /// Trains on normalized volumes; returns per-epoch losses (Fig. 11b).
  /// `volumes` should already be segmentation-masked when reproducing
  /// the full pipeline.
  std::vector<ClassifierEpochLog> train(
      const std::vector<Tensor>& volumes, const std::vector<int>& labels,
      const ClassificationTrainConfig& cfg, Rng& rng,
      const std::vector<Tensor>* val_volumes = nullptr,
      const std::vector<int>* val_labels = nullptr);

  /// COVID-positive probability of one normalized volume (D, H, W).
  double predict(const Tensor& volume) const;

  ClassificationScores score_all(const std::vector<Tensor>& volumes,
                                 const std::vector<int>& labels) const;

  nn::DenseNet3d& network() { return net_; }

 private:
  nn::DenseNet3d net_;
};

}  // namespace ccovid::pipeline
