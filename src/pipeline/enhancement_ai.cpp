#include "pipeline/enhancement_ai.h"

#include <stdexcept>

#include "metrics/image_quality.h"

namespace ccovid::pipeline {

namespace {

autograd::Var slice_to_batch_var(const Tensor& slice, bool requires_grad) {
  return autograd::Var(
      slice.clone().reshape({1, 1, slice.dim(0), slice.dim(1)}),
      requires_grad);
}

Tensor slice_to_batch(const Tensor& slice) {
  return slice.clone().reshape({1, 1, slice.dim(0), slice.dim(1)});
}

}  // namespace

EnhancementAI::EnhancementAI(nn::DDnetConfig cfg) : net_(cfg) {}

std::vector<EpochLog> EnhancementAI::train(
    const data::EnhancementDataset& dataset,
    const EnhancementTrainConfig& cfg, Rng& rng) {
  if (dataset.train.empty()) {
    throw std::invalid_argument("EnhancementAI::train: empty train split");
  }
  autograd::Adam opt(net_.parameters(), cfg.lr);
  autograd::ExponentialLR sched(opt, cfg.lr_decay);

  std::vector<EpochLog> logs;
  std::vector<index_t> order(dataset.train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    net_.set_training(true);
    // Shuffle; batch size is 1 per the paper.
    for (index_t i = static_cast<index_t>(order.size()) - 1; i > 0; --i) {
      std::swap(order[i], order[rng.uniform_int(0, i)]);
    }
    double train_loss = 0.0;
    for (index_t idx : order) {
      const data::LowDosePair& pair = dataset.train[idx];
      autograd::Var x = slice_to_batch_var(pair.low, false);
      autograd::Var pred = net_.forward(x);
      autograd::Var loss = autograd::enhancement_loss(
          pred, slice_to_batch(pair.full), cfg.msssim_weight, 11,
          cfg.msssim_scales);
      opt.zero_grad();
      loss.backward();
      opt.step();
      train_loss += static_cast<double>(loss.value().at(0));
    }
    train_loss /= static_cast<double>(order.size());

    const double val_loss =
        dataset.val.empty() ? train_loss : dataset_loss(dataset.val, cfg);
    logs.push_back({epoch + 1, train_loss, val_loss});
    sched.step();
  }
  net_.set_training(false);
  return logs;
}

double EnhancementAI::dataset_loss(
    const std::vector<data::LowDosePair>& pairs,
    const EnhancementTrainConfig& cfg) const {
  autograd::NoGradGuard no_grad;
  // set_training is non-const; evaluate with current mode but frozen
  // stats are only used when the caller switched to eval. During
  // training epochs we still report the batch-stat loss, as PyTorch does
  // when eval() is not called.
  double total = 0.0;
  for (const auto& pair : pairs) {
    autograd::Var x = slice_to_batch_var(pair.low, false);
    autograd::Var pred = const_cast<nn::DDnet&>(net_).forward(x);
    autograd::Var loss = autograd::enhancement_loss(
        pred, slice_to_batch(pair.full), cfg.msssim_weight, 11,
        cfg.msssim_scales);
    total += static_cast<double>(loss.value().at(0));
  }
  return total / static_cast<double>(pairs.size());
}

Tensor EnhancementAI::enhance(const Tensor& low_dose) const {
  return net_.enhance(low_dose);
}

Tensor EnhancementAI::enhance_volume(const Tensor& volume) const {
  if (volume.rank() != 3) {
    throw std::invalid_argument("enhance_volume: expected (D, H, W)");
  }
  const index_t d = volume.dim(0), h = volume.dim(1), w = volume.dim(2);
  Tensor out({d, h, w});
  for (index_t z = 0; z < d; ++z) {
    Tensor slice({h, w});
    std::copy(volume.data() + z * h * w, volume.data() + (z + 1) * h * w,
              slice.data());
    const Tensor enhanced = net_.enhance(slice);
    std::copy(enhanced.data(), enhanced.data() + h * w,
              out.data() + z * h * w);
  }
  return out;
}

EnhancementEval EnhancementAI::evaluate(
    const std::vector<data::LowDosePair>& test) const {
  if (test.empty()) {
    throw std::invalid_argument("EnhancementAI::evaluate: empty test set");
  }
  EnhancementEval e;
  for (const auto& pair : test) {
    const Tensor enhanced = enhance(pair.low);
    e.mse_low += metrics::mse(pair.full, pair.low);
    e.mse_enhanced += metrics::mse(pair.full, enhanced);
    e.msssim_low += metrics::ms_ssim(pair.full, pair.low);
    e.msssim_enhanced += metrics::ms_ssim(pair.full, enhanced);
  }
  const double inv = 1.0 / static_cast<double>(test.size());
  e.mse_low *= inv;
  e.mse_enhanced *= inv;
  e.msssim_low *= inv;
  e.msssim_enhanced *= inv;
  return e;
}

}  // namespace ccovid::pipeline
