// Enhancement AI (§2.2, §3.1): DDnet trained on (low-dose, full-dose)
// image pairs with the composite MSE + 0.1*(1 - MS-SSIM) loss, Adam at
// lr 1e-4 decayed x0.8 per epoch, batch size 1 — the paper's §3.1.1
// hyperparameters exactly. Multi-node training goes through
// dist::DdpTrainer; this class is the single-process trainer + inference
// wrapper used by the pipeline and examples.
#pragma once

#include <vector>

#include "autograd/losses.h"
#include "autograd/optim.h"
#include "data/dataset.h"
#include "nn/ddnet.h"

namespace ccovid::pipeline {

struct EnhancementTrainConfig {
  int epochs = 50;        ///< paper: 50
  double lr = 1e-4;       ///< paper: 1e-4
  double lr_decay = 0.8;  ///< paper: x0.8 per epoch
  real_t msssim_weight = 0.1f;
  int msssim_scales = 5;  ///< auto-reduced for small images
};

struct EpochLog {
  int epoch;
  double train_loss;
  double val_loss;
};

/// Table 8's four numbers.
struct EnhancementEval {
  double mse_low = 0.0;        ///< MSE(Y, X)
  double msssim_low = 0.0;     ///< MS-SSIM(Y, X)
  double mse_enhanced = 0.0;   ///< MSE(Y, f(X))
  double msssim_enhanced = 0.0;
};

class EnhancementAI {
 public:
  explicit EnhancementAI(nn::DDnetConfig cfg = nn::DDnetConfig::paper());

  /// Trains on the dataset's train split, evaluating the loss on the
  /// validation split after each epoch (Fig. 11a's two curves).
  std::vector<EpochLog> train(const data::EnhancementDataset& dataset,
                              const EnhancementTrainConfig& cfg, Rng& rng);

  /// Enhances one [0,1] slice (H, W); inference only.
  Tensor enhance(const Tensor& low_dose) const;

  /// Enhances every slice of a (D, H, W) volume.
  Tensor enhance_volume(const Tensor& low_dose_volume) const;

  /// MSE / MS-SSIM of the raw and enhanced test images vs ground truth.
  EnhancementEval evaluate(const std::vector<data::LowDosePair>& test) const;

  nn::DDnet& network() { return net_; }
  const nn::DDnet& network() const { return net_; }

 private:
  double dataset_loss(const std::vector<data::LowDosePair>& pairs,
                      const EnhancementTrainConfig& cfg) const;

  nn::DDnet net_;
};

}  // namespace ccovid::pipeline
