#include "pipeline/framework.h"

#include <stdexcept>

#include "ct/hu.h"
#include "data/dataset.h"

namespace ccovid::pipeline {

ComputeCovid19Pipeline::ComputeCovid19Pipeline(
    std::shared_ptr<EnhancementAI> enhancement,
    std::shared_ptr<SegmentationAI> segmentation,
    std::shared_ptr<ClassificationAI> classification)
    : enhancement_(std::move(enhancement)),
      segmentation_(std::move(segmentation)),
      classification_(std::move(classification)) {
  if (!enhancement_ || !segmentation_ || !classification_) {
    throw std::invalid_argument("pipeline: null stage");
  }
}

Tensor ComputeCovid19Pipeline::prepare(const Tensor& volume_hu,
                                       bool use_enhancement) const {
  if (volume_hu.rank() != 3) {
    throw std::invalid_argument("diagnose: expected a (D, H, W) HU volume");
  }
  // §2.1 preparation: strip circular-FOV padding, then normalize.
  const Tensor cleaned = data::remove_circular_fov_volume(volume_hu);
  Tensor norm = ct::normalize_hu(cleaned);
  if (use_enhancement) {
    norm = enhancement_->enhance_volume(norm);
  }
  // §3.2: lung mask multiplied into the scan.
  return segmentation_->segment_and_mask(norm);
}

Diagnosis ComputeCovid19Pipeline::diagnose(const Tensor& volume_hu,
                                           bool use_enhancement,
                                           double threshold) const {
  const Tensor masked = prepare(volume_hu, use_enhancement);
  Diagnosis d;
  d.threshold = threshold;
  d.probability = classification_->predict(masked);
  d.positive = d.probability >= threshold;
  return d;
}

std::vector<double> ComputeCovid19Pipeline::score_volumes(
    const std::vector<Tensor>& volumes_hu, bool use_enhancement) const {
  std::vector<double> scores;
  scores.reserve(volumes_hu.size());
  for (const Tensor& v : volumes_hu) {
    scores.push_back(
        classification_->predict(prepare(v, use_enhancement)));
  }
  return scores;
}

}  // namespace ccovid::pipeline
