#include "pipeline/framework.h"

#include <cmath>
#include <stdexcept>

#include "core/finite.h"
#include "core/timer.h"
#include "ct/hu.h"
#include "data/dataset.h"
#include "fault/failpoint.h"
#include "serve/worker_pool.h"
#include "trace/trace.h"

namespace ccovid::pipeline {

ComputeCovid19Pipeline::ComputeCovid19Pipeline(
    std::shared_ptr<EnhancementAI> enhancement,
    std::shared_ptr<SegmentationAI> segmentation,
    std::shared_ptr<ClassificationAI> classification)
    : enhancement_(std::move(enhancement)),
      segmentation_(std::move(segmentation)),
      classification_(std::move(classification)) {
  if (!enhancement_ || !segmentation_ || !classification_) {
    throw std::invalid_argument("pipeline: null stage");
  }
}

Tensor ComputeCovid19Pipeline::prepare(const Tensor& volume_hu,
                                       bool use_enhancement,
                                       StageTimes* times) const {
  if (volume_hu.rank() != 3) {
    throw std::invalid_argument("diagnose: expected a (D, H, W) HU volume");
  }
  WallTimer timer;
  Tensor norm;
  {
    TRACE_SPAN("pipeline.prepare");
    // §2.1 preparation: strip circular-FOV padding, then normalize.
    const Tensor cleaned = data::remove_circular_fov_volume(volume_hu);
    norm = ct::normalize_hu(cleaned);
  }
  if (times) times->prepare_s = timer.seconds();
  finite_check(norm, "pipeline.prepare.output");
  if (use_enhancement) {
    timer.reset();
    {
      TRACE_SPAN("pipeline.enhance");
      norm = enhancement_->enhance_volume(norm);
    }
    if (times) times->enhance_s = timer.seconds();
    // NaN sentinel after the AI stage most prone to numeric blow-up; the
    // failpoint simulates that blow-up (nan(K) schedules) so retry /
    // degrade handling can be exercised without breaking the network.
    if (auto f = CCOVID_FAILPOINT_FIRED("pipeline.enhance.output")) {
      if (f.action == fault::Action::kNan) {
        fault::inject_nonfinite(norm, f.seed, f.count);
      }
    }
    finite_check(norm, "pipeline.enhance.output");
  }
  // §3.2: lung mask multiplied into the scan.
  timer.reset();
  Tensor masked;
  {
    TRACE_SPAN("pipeline.segment");
    masked = segmentation_->segment_and_mask(norm);
  }
  if (times) times->segment_s = timer.seconds();
  finite_check(masked, "pipeline.segment.output");
  return masked;
}

Diagnosis ComputeCovid19Pipeline::diagnose(const Tensor& volume_hu,
                                           bool use_enhancement,
                                           double threshold,
                                           StageTimes* times) const {
  const Tensor masked = prepare(volume_hu, use_enhancement, times);
  WallTimer timer;
  Diagnosis d;
  d.threshold = threshold;
  {
    TRACE_SPAN("pipeline.classify");
    d.probability = classification_->predict(masked);
  }
  if (!std::isfinite(d.probability)) {
    throw StageError("pipeline.classify.output",
                     "non-finite diagnosis probability");
  }
  d.positive = d.probability >= threshold;
  if (times) times->classify_s = timer.seconds();
  return d;
}

std::vector<Diagnosis> ComputeCovid19Pipeline::diagnose_batch(
    const std::vector<BatchItem>& items,
    std::vector<StageTimes>* times) const {
  if (times) times->assign(items.size(), StageTimes{});
  std::vector<Diagnosis> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    if (item.volume_hu == nullptr) {
      throw std::invalid_argument("diagnose_batch: null volume");
    }
    out.push_back(diagnose(*item.volume_hu, item.use_enhancement,
                           item.threshold,
                           times ? &(*times)[i] : nullptr));
  }
  return out;
}

std::vector<double> ComputeCovid19Pipeline::score_volumes(
    const std::vector<Tensor>& volumes_hu, bool use_enhancement,
    int workers) const {
  std::vector<double> scores(volumes_hu.size(), 0.0);
  if (workers <= 1) {
    for (std::size_t i = 0; i < volumes_hu.size(); ++i) {
      scores[i] = classification_->predict(
          prepare(volumes_hu[i], use_enhancement, nullptr));
    }
    return scores;
  }
  serve::WorkerPool::Options popt;
  popt.workers = workers;
  // Outer volume-level parallelism already covers the requested width;
  // capping kernels at one engine lane per volume keeps total
  // concurrency at `workers` as the caller sized it.
  popt.inner_threads = 1;
  serve::WorkerPool pool(popt);
  pool.for_each(static_cast<index_t>(volumes_hu.size()),
                [&](index_t i) {
                  scores[i] = classification_->predict(
                      prepare(volumes_hu[i], use_enhancement, nullptr));
                });
  return scores;
}

}  // namespace ccovid::pipeline
