#include "pipeline/framework.h"

#include <cmath>
#include <stdexcept>

#include "core/finite.h"
#include "core/timer.h"
#include "ct/hu.h"
#include "data/dataset.h"
#include "fault/failpoint.h"
#include "serve/worker_pool.h"
#include "trace/trace.h"

namespace ccovid::pipeline {

ComputeCovid19Pipeline::ComputeCovid19Pipeline(
    std::shared_ptr<EnhancementAI> enhancement,
    std::shared_ptr<SegmentationAI> segmentation,
    std::shared_ptr<ClassificationAI> classification)
    : enhancement_(std::move(enhancement)),
      segmentation_(std::move(segmentation)),
      classification_(std::move(classification)) {
  if (!enhancement_ || !segmentation_ || !classification_) {
    throw std::invalid_argument("pipeline: null stage");
  }
}

Tensor ComputeCovid19Pipeline::prepare(const Tensor& volume_hu,
                                       bool use_enhancement,
                                       StageTimes* times,
                                       Diagnosis* diag) const {
  if (volume_hu.rank() != 3) {
    throw std::invalid_argument("diagnose: expected a (D, H, W) HU volume");
  }
  WallTimer timer;
  Tensor norm;
  {
    TRACE_SPAN("pipeline.prepare");
    // §2.1 preparation: strip circular-FOV padding, then normalize.
    const Tensor cleaned = data::remove_circular_fov_volume(volume_hu);
    norm = ct::normalize_hu(cleaned);
  }
  if (times) times->prepare_s = timer.seconds();
  finite_check(norm, "pipeline.prepare.output");
  if (use_enhancement) {
    timer.reset();
    {
      TRACE_SPAN("pipeline.enhance");
      norm = enhancement_->enhance_volume(norm);
    }
    if (times) times->enhance_s = timer.seconds();
    // NaN sentinel after the AI stage most prone to numeric blow-up; the
    // failpoint simulates that blow-up (nan(K) schedules) so retry /
    // degrade handling can be exercised without breaking the network.
    if (auto f = CCOVID_FAILPOINT_FIRED("pipeline.enhance.output")) {
      if (f.action == fault::Action::kNan) {
        fault::inject_nonfinite(norm, f.seed, f.count);
      }
    }
    finite_check(norm, "pipeline.enhance.output");
  }
  // §3.2: lung mask multiplied into the scan. The mask is produced
  // separately (the same two calls segment_and_mask makes, so the masked
  // bits are unchanged) because the burden quantification below needs
  // it: the masked volume alone cannot tell a zeroed background voxel
  // from a lung voxel whose intensity normalized to zero.
  timer.reset();
  Tensor masked;
  {
    TRACE_SPAN("pipeline.segment");
    const Tensor mask = segmentation_->segment(norm);
    masked = nn::AhNet::apply_mask(norm, mask);
    if (diag) {
      // Quantification: integer counts over the mask, one division at
      // the end — bitwise-deterministic, and free of any new tensor
      // allocation (the serving steady state stays zero-alloc).
      const real_t infected_floor = static_cast<real_t>(
          (kInfectionHuThreshold + 1024.0) / (1023.0 + 1024.0));
      const real_t* pm = mask.data();
      const real_t* pv = norm.data();
      const index_t n = mask.numel();
      std::uint64_t lung = 0, infected = 0;
      for (index_t i = 0; i < n; ++i) {
        if (pm[i] > 0.5f) {
          ++lung;
          infected += pv[i] >= infected_floor;
        }
      }
      diag->lung_voxels = lung;
      diag->infected_voxels = infected;
      diag->infection_burden =
          lung == 0 ? 0.0
                    : static_cast<double>(infected) / static_cast<double>(lung);
    }
  }
  if (times) times->segment_s = timer.seconds();
  finite_check(masked, "pipeline.segment.output");
  return masked;
}

Diagnosis ComputeCovid19Pipeline::diagnose(const Tensor& volume_hu,
                                           bool use_enhancement,
                                           double threshold,
                                           StageTimes* times) const {
  Diagnosis d;
  const Tensor masked = prepare(volume_hu, use_enhancement, times, &d);
  WallTimer timer;
  d.threshold = threshold;
  {
    TRACE_SPAN("pipeline.classify");
    d.probability = classification_->predict(masked);
  }
  if (!std::isfinite(d.probability)) {
    throw StageError("pipeline.classify.output",
                     "non-finite diagnosis probability");
  }
  d.positive = d.probability >= threshold;
  if (times) times->classify_s = timer.seconds();
  return d;
}

std::vector<Diagnosis> ComputeCovid19Pipeline::diagnose_batch(
    const std::vector<BatchItem>& items,
    std::vector<StageTimes>* times) const {
  if (times) times->assign(items.size(), StageTimes{});
  std::vector<Diagnosis> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    if (item.volume_hu == nullptr) {
      throw std::invalid_argument("diagnose_batch: null volume");
    }
    out.push_back(diagnose(*item.volume_hu, item.use_enhancement,
                           item.threshold,
                           times ? &(*times)[i] : nullptr));
  }
  return out;
}

std::vector<double> ComputeCovid19Pipeline::score_volumes(
    const std::vector<Tensor>& volumes_hu, bool use_enhancement,
    int workers) const {
  std::vector<double> scores(volumes_hu.size(), 0.0);
  if (workers <= 1) {
    for (std::size_t i = 0; i < volumes_hu.size(); ++i) {
      scores[i] = classification_->predict(
          prepare(volumes_hu[i], use_enhancement, nullptr));
    }
    return scores;
  }
  serve::WorkerPool::Options popt;
  popt.workers = workers;
  // Outer volume-level parallelism already covers the requested width;
  // capping kernels at one engine lane per volume keeps total
  // concurrency at `workers` as the caller sized it.
  popt.inner_threads = 1;
  serve::WorkerPool pool(popt);
  pool.for_each(static_cast<index_t>(volumes_hu.size()),
                [&](index_t i) {
                  scores[i] = classification_->predict(
                      prepare(volumes_hu[i], use_enhancement, nullptr));
                });
  return scores;
}

}  // namespace ccovid::pipeline
