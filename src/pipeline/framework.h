// ComputeCOVID19+ — the end-to-end framework of Fig. 3 / Fig. 4:
//   data preparation -> Enhancement AI -> Segmentation AI ->
//   Classification AI -> positive/negative call.
//
// The enhancement stage is optional per diagnosis, which is exactly the
// comparison §5.2.3 evaluates (original vs enhanced scans through the
// same analysis stack).
#pragma once

#include <memory>

#include "metrics/classification.h"
#include "pipeline/classification_ai.h"
#include "pipeline/enhancement_ai.h"
#include "pipeline/segmentation_ai.h"

namespace ccovid::pipeline {

struct Diagnosis {
  double probability = 0.0;  ///< COVID-positive score
  bool positive = false;     ///< probability >= threshold
  double threshold = 0.5;
};

class ComputeCovid19Pipeline {
 public:
  ComputeCovid19Pipeline(std::shared_ptr<EnhancementAI> enhancement,
                         std::shared_ptr<SegmentationAI> segmentation,
                         std::shared_ptr<ClassificationAI> classification);

  /// Full §2.1 preparation + workflow on a raw HU volume (D, H, W):
  /// removes circular-FOV padding, normalizes, optionally enhances every
  /// slice, segments and masks the lungs, classifies.
  Diagnosis diagnose(const Tensor& volume_hu, bool use_enhancement,
                     double threshold = 0.5) const;

  /// Scores a set of volumes for ROC analysis (Fig. 13): returns the
  /// per-volume probabilities with/without the enhancement stage chosen
  /// by `use_enhancement`.
  std::vector<double> score_volumes(const std::vector<Tensor>& volumes_hu,
                                    bool use_enhancement) const;

  EnhancementAI& enhancement() { return *enhancement_; }
  SegmentationAI& segmentation() { return *segmentation_; }
  ClassificationAI& classification() { return *classification_; }

 private:
  Tensor prepare(const Tensor& volume_hu, bool use_enhancement) const;

  std::shared_ptr<EnhancementAI> enhancement_;
  std::shared_ptr<SegmentationAI> segmentation_;
  std::shared_ptr<ClassificationAI> classification_;
};

}  // namespace ccovid::pipeline
