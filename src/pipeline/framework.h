// ComputeCOVID19+ — the end-to-end framework of Fig. 3 / Fig. 4:
//   data preparation -> Enhancement AI -> Segmentation AI ->
//   Classification AI -> positive/negative call.
//
// The enhancement stage is optional per diagnosis, which is exactly the
// comparison §5.2.3 evaluates (original vs enhanced scans through the
// same analysis stack).
#pragma once

#include <cstdint>
#include <memory>

#include "metrics/classification.h"
#include "pipeline/classification_ai.h"
#include "pipeline/enhancement_ai.h"
#include "pipeline/segmentation_ai.h"

namespace ccovid::pipeline {

struct Diagnosis {
  double probability = 0.0;  ///< COVID-positive score
  bool positive = false;     ///< probability >= threshold
  double threshold = 0.5;
  /// Infection-burden quantification (cf. the "Lung Infection
  /// Quantification of COVID-19 in CT Images" entry in PAPERS.md): the
  /// fraction of lung-mask voxels whose normalized intensity is at or
  /// above kInfectionHuThreshold — GGO/consolidation density, well above
  /// aerated parenchyma. Integer voxel counts divided once, so the
  /// metric is bitwise-deterministic and comparable across scans; the
  /// monitoring mode (serve/monitor.h) tracks its per-patient deltas.
  double infection_burden = 0.0;
  std::uint64_t lung_voxels = 0;      ///< mask voxels (denominator)
  std::uint64_t infected_voxels = 0;  ///< dense lung voxels (numerator)
};

/// Lung voxels at or above this HU count as infected (non-aerated lung:
/// GGO/crazy-paving/consolidation all land above; healthy parenchyma at
/// about -820 HU stays far below). -600 HU is the conventional
/// aerated/non-aerated cut in quantitative CT.
inline constexpr double kInfectionHuThreshold = -600.0;

/// Wall-clock seconds spent in each workflow stage of one diagnosis —
/// the per-stage breakdown the serving runtime aggregates into its
/// latency histograms.
struct StageTimes {
  double prepare_s = 0.0;   ///< FOV cleanup + HU normalization (§2.1)
  double enhance_s = 0.0;   ///< DDnet slice enhancement (0 when off)
  double segment_s = 0.0;   ///< lung segmentation + masking (§3.2)
  double classify_s = 0.0;  ///< 3-D DenseNet scoring (§3.3)
  double total() const {
    return prepare_s + enhance_s + segment_s + classify_s;
  }
};

/// One request of a coalesced micro-batch (see serve::InferenceServer).
/// The volume pointer must outlive the diagnose_batch call.
struct BatchItem {
  const Tensor* volume_hu = nullptr;
  bool use_enhancement = true;
  double threshold = 0.5;
};

class ComputeCovid19Pipeline {
 public:
  ComputeCovid19Pipeline(std::shared_ptr<EnhancementAI> enhancement,
                         std::shared_ptr<SegmentationAI> segmentation,
                         std::shared_ptr<ClassificationAI> classification);

  /// Full §2.1 preparation + workflow on a raw HU volume (D, H, W):
  /// removes circular-FOV padding, normalizes, optionally enhances every
  /// slice, segments and masks the lungs, classifies. When `times` is
  /// non-null the per-stage wall-clock breakdown is written there.
  /// Thread-safe once every stage network is in eval mode (inference
  /// never mutates the models), so concurrent diagnoses may share one
  /// pipeline instance.
  Diagnosis diagnose(const Tensor& volume_hu, bool use_enhancement,
                     double threshold = 0.5,
                     StageTimes* times = nullptr) const;

  /// Batch entry point used by the serving runtime: diagnoses every
  /// item in order on the calling thread. Each volume is processed
  /// independently, so results are bitwise-identical to per-item
  /// diagnose() calls no matter how requests were coalesced. `times`,
  /// when non-null, receives one StageTimes per item.
  std::vector<Diagnosis> diagnose_batch(
      const std::vector<BatchItem>& items,
      std::vector<StageTimes>* times = nullptr) const;

  /// Scores a set of volumes for ROC analysis (Fig. 13): returns the
  /// per-volume probabilities with/without the enhancement stage chosen
  /// by `use_enhancement`. `workers` > 1 fans the volumes out over a
  /// serve::WorkerPool whose workers run kernels single-threaded — the
  /// same primitive (and hence the same numerics) as the inference
  /// server; the result is identical to the sequential path.
  std::vector<double> score_volumes(const std::vector<Tensor>& volumes_hu,
                                    bool use_enhancement,
                                    int workers = 1) const;

  EnhancementAI& enhancement() { return *enhancement_; }
  SegmentationAI& segmentation() { return *segmentation_; }
  ClassificationAI& classification() { return *classification_; }

 private:
  /// When `diag` is non-null the lung/infected voxel counts and the
  /// infection-burden fraction are filled in from the segmentation mask
  /// (a read-only counting pass; the masked tensor bits are untouched).
  Tensor prepare(const Tensor& volume_hu, bool use_enhancement,
                 StageTimes* times, Diagnosis* diag = nullptr) const;

  std::shared_ptr<EnhancementAI> enhancement_;
  std::shared_ptr<SegmentationAI> segmentation_;
  std::shared_ptr<ClassificationAI> classification_;
};

}  // namespace ccovid::pipeline
