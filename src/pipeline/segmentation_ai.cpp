#include "pipeline/segmentation_ai.h"

#include <stdexcept>

#include "autograd/optim.h"

#include "ct/hu.h"

namespace ccovid::pipeline {

SegmentationAI::SegmentationAI(nn::AhNetConfig cfg) : net_(cfg) {
  // Slice-wise batch-1 training; per-sample statistics at inference for
  // the same reason as ClassificationAI.
  net_.set_batch_stats_always(true);
}

std::vector<double> SegmentationAI::train(
    const std::vector<data::VolumeSample>& volumes,
    const SegmentationTrainConfig& cfg, Rng& rng) {
  if (volumes.empty()) {
    throw std::invalid_argument("SegmentationAI::train: no volumes");
  }
  autograd::Adam opt(net_.parameters(), cfg.lr);
  std::vector<double> losses;
  net_.set_training(true);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double total = 0.0;
    index_t count = 0;
    for (const auto& vol : volumes) {
      const index_t d = vol.hu.dim(0), h = vol.hu.dim(1), w = vol.hu.dim(2);
      // One random slice per volume per epoch keeps epochs cheap while
      // covering the z range over training.
      const index_t z = rng.uniform_int(0, d - 1);
      const Tensor norm = ct::normalize_hu(vol.hu);
      Tensor slice({1, 1, h, w});
      std::copy(norm.data() + z * h * w, norm.data() + (z + 1) * h * w,
                slice.data());
      Tensor target({1, 1, h, w});
      std::copy(vol.lung_mask.data() + z * h * w,
                vol.lung_mask.data() + (z + 1) * h * w, target.data());

      autograd::Var logits = net_.forward(autograd::Var(std::move(slice)));
      autograd::Var loss = autograd::bce_with_logits_loss(logits, target);
      opt.zero_grad();
      loss.backward();
      opt.step();
      total += static_cast<double>(loss.value().at(0));
      ++count;
    }
    losses.push_back(total / static_cast<double>(count));
  }
  net_.set_training(false);
  return losses;
}

Tensor SegmentationAI::segment(const Tensor& volume) const {
  return net_.segment_volume(volume);
}

Tensor SegmentationAI::segment_and_mask(const Tensor& volume) const {
  return nn::AhNet::apply_mask(volume, segment(volume));
}

double SegmentationAI::dice(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("dice: shape mismatch");
  }
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t n = a.numel();
  double inter = 0.0, total = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const bool fa = pa[i] > 0.5f, fb = pb[i] > 0.5f;
    inter += (fa && fb) ? 1.0 : 0.0;
    total += (fa ? 1.0 : 0.0) + (fb ? 1.0 : 0.0);
  }
  return total == 0.0 ? 1.0 : 2.0 * inter / total;
}

SegmentationEval SegmentationAI::evaluate(
    const std::vector<data::VolumeSample>& volumes) const {
  if (volumes.empty()) {
    throw std::invalid_argument("SegmentationAI::evaluate: no volumes");
  }
  SegmentationEval e;
  for (const auto& vol : volumes) {
    const Tensor norm = ct::normalize_hu(vol.hu);
    const Tensor mask = segment(norm);
    e.dice += dice(mask, vol.lung_mask);
    const real_t* pm = mask.data();
    const real_t* pt = vol.lung_mask.data();
    index_t correct = 0;
    for (index_t i = 0; i < mask.numel(); ++i) {
      correct += ((pm[i] > 0.5f) == (pt[i] > 0.5f)) ? 1 : 0;
    }
    e.pixel_accuracy +=
        static_cast<double>(correct) / static_cast<double>(mask.numel());
  }
  const double inv = 1.0 / static_cast<double>(volumes.size());
  e.dice *= inv;
  e.pixel_accuracy *= inv;
  return e;
}

}  // namespace ccovid::pipeline
