// Segmentation AI (§2.3.1, §3.2): the AH-Net-style lung segmenter.
// The paper uses Nvidia Clara's pre-trained model; we train ours on
// phantom slices whose ground-truth lung masks are known analytically
// (see DESIGN.md §1). Output: binary foreground map multiplied into the
// scan.
#pragma once

#include <vector>

#include "autograd/losses.h"
#include "data/dataset.h"
#include "nn/ahnet.h"

namespace ccovid::pipeline {

struct SegmentationTrainConfig {
  int epochs = 8;
  double lr = 1e-3;
};

struct SegmentationEval {
  double dice = 0.0;            ///< mean Dice coefficient over volumes
  double pixel_accuracy = 0.0;  ///< mean foreground/background accuracy
};

class SegmentationAI {
 public:
  explicit SegmentationAI(nn::AhNetConfig cfg = nn::AhNetConfig{});

  /// Trains slice-wise on volumes with ground-truth masks (pixel BCE);
  /// returns per-epoch mean training loss.
  std::vector<double> train(const std::vector<data::VolumeSample>& volumes,
                            const SegmentationTrainConfig& cfg, Rng& rng);

  /// Binary lung mask of a normalized [0,1] volume (D, H, W).
  Tensor segment(const Tensor& volume) const;

  /// Masked ("segmented") scan: volume * mask (§3.2).
  Tensor segment_and_mask(const Tensor& volume) const;

  SegmentationEval evaluate(
      const std::vector<data::VolumeSample>& volumes) const;

  nn::AhNet& network() { return net_; }

  /// Dice coefficient between binary masks.
  static double dice(const Tensor& a, const Tensor& b);

 private:
  nn::AhNet net_;
};

}  // namespace ccovid::pipeline
