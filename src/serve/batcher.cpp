#include "serve/batcher.h"

#include <utility>

#include "fault/failpoint.h"

namespace ccovid::serve {

std::vector<RequestPtr> DynamicBatcher::next_batch() {
  std::vector<RequestPtr> batch;

  RequestPtr first = std::move(held_);
  if (!first) {
    auto popped = queue_.pop();  // blocks; nullopt = closed and drained
    if (!popped) return batch;
    first = std::move(*popped);
  }
  const Clock::time_point flush_at = Clock::now() + opt_.max_delay;
  batch.push_back(std::move(first));

  while (batch.size() < opt_.max_batch) {
    const auto now = Clock::now();
    if (now >= flush_at) break;
    // Grab immediately-available companions without waiting; only sleep
    // on the queue when it is momentarily empty.
    auto next = queue_.try_pop();
    if (!next) {
      next = queue_.pop_for(flush_at - now);
      if (!next) break;  // deadline hit or queue closed
    }
    if ((*next)->compatible(*batch.front())) {
      batch.push_back(std::move(*next));
    } else {
      held_ = std::move(*next);  // seeds the next batch
      break;
    }
  }
  // Flush-delay injection point: delay schedules here hold a formed
  // batch past request deadlines (the "deadline storm" chaos scenario —
  // worker-side triage must then time the whole batch out, not hang).
  CCOVID_FAILPOINT("serve.batcher.flush");
  return batch;
}

}  // namespace ccovid::serve
