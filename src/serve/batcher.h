// Dynamic micro-batcher: coalesces compatible queued requests into
// batches bounded by max_batch (flush on size) and max_delay (flush on
// deadline) — the two-knob policy of production model servers. An
// incompatible request (different session or enhancement setting) closes
// the current batch and is held over as the seed of the next one, so
// ordering is preserved and nothing is starved.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "serve/bounded_queue.h"
#include "serve/request.h"

namespace ccovid::serve {

struct BatcherOptions {
  std::size_t max_batch = 4;
  /// How long a formed-but-unfilled batch may wait for companions.
  std::chrono::microseconds max_delay{2000};
};

class DynamicBatcher {
 public:
  DynamicBatcher(BoundedQueue<RequestPtr>& queue, BatcherOptions opt)
      : queue_(queue), opt_(opt) {}

  /// Blocks for the next micro-batch. The first request is waited for
  /// indefinitely; once one arrives, companions are collected until the
  /// batch is full, max_delay elapses, or an incompatible request shows
  /// up. Returns an empty vector exactly once: when the queue is closed
  /// and fully drained (shutdown).
  std::vector<RequestPtr> next_batch();

 private:
  BoundedQueue<RequestPtr>& queue_;
  BatcherOptions opt_;
  RequestPtr held_;  ///< incompatible request carried into the next batch
};

}  // namespace ccovid::serve
