// Bounded multi-producer / multi-consumer queue — the admission-control
// primitive of the serving runtime (DESIGN.md "Serving"). A full queue
// rejects instead of blocking producers by default (try_push), which is
// what turns overload into fast-fail backpressure rather than unbounded
// latency growth; consumers block. close() makes the queue drain-only:
// pushes fail, pops keep returning the remaining items and then signal
// exhaustion — this is what graceful shutdown rides on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ccovid::serve {

/// Outcome of BoundedQueue::try_pop_for — unlike pop_for()'s nullopt,
/// this distinguishes "nothing arrived in time" (kTimeout, the starvation
/// signal the chaos harness polls on) from "queue closed and drained"
/// (kClosed, normal shutdown).
enum class PopState {
  kItem,     ///< an item was delivered
  kTimeout,  ///< queue still open but nothing arrived within the timeout
  kClosed,   ///< closed and fully drained: no item will ever arrive
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admit. False when the queue is full or closed — the
  /// value is NOT consumed on failure (rvalue-ref parameter), so callers
  /// keep ownership and can e.g. fulfil the request's promise with a
  /// rejection.
  bool try_push(T&& v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking admit: waits while full. False when the queue is closed
  /// (the value is not consumed).
  bool push(T&& v) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [this] { return closed_ || q_.size() < capacity_; });
      if (closed_) return false;
      q_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained (nullopt).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !q_.empty(); });
    return pop_locked();
  }

  /// Like pop() but gives up after `timeout`; nullopt on timeout too.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !q_.empty(); });
    return pop_locked();
  }

  /// Timed pop that reports WHY it returned: kItem (out was assigned),
  /// kTimeout (queue open, nothing arrived — caller may keep waiting or
  /// flag starvation), or kClosed (drained; stop consuming). pop_for()
  /// cannot make this distinction, which is what lets fault-injection
  /// tests bound their wait instead of hanging the binary on a stalled
  /// producer.
  template <typename Rep, typename Period>
  PopState try_pop_for(T& out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !q_.empty(); });
    if (!q_.empty()) {
      out = std::move(q_.front());
      q_.pop_front();
      not_full_.notify_one();
      return PopState::kItem;
    }
    return closed_ ? PopState::kClosed : PopState::kTimeout;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Stops admissions; pending items remain poppable (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  // Pre: mu_ held and (closed_ || !q_.empty()).
  std::optional<T> pop_locked() {
    if (q_.empty()) return std::nullopt;  // closed and drained
    T v = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> q_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ccovid::serve
