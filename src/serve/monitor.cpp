#include "serve/monitor.h"

#include <cstddef>
#include <cstdio>

#include "fault/failpoint.h"
#include "trace/trace.h"

namespace ccovid::serve {

// ------------------------------------------------------- result cache

std::uint64_t CachedResult::compute_digest() const {
  std::uint64_t h = fnv1a64(&probability, sizeof(probability));
  const std::uint8_t pos = positive ? 1 : 0;
  h = fnv1a64(&pos, sizeof(pos), h);
  h = fnv1a64(&threshold, sizeof(threshold), h);
  h = fnv1a64(&infection_burden, sizeof(infection_burden), h);
  h = fnv1a64(&lung_voxels, sizeof(lung_voxels), h);
  h = fnv1a64(&infected_voxels, sizeof(infected_voxels), h);
  return h;
}

std::uint64_t ResultCache::scan_key(const Tensor& volume_hu,
                                    bool use_enhancement, double threshold,
                                    core::Precision precision,
                                    bool graph_fusion, std::uint64_t epoch) {
  // Volume bytes first (the bulk), then every serving knob the output
  // bits depend on. fp32 results ARE fusion-invariant (the PR 7 bitwise
  // contract) but low-precision ones are not (DESIGN.md §13), so the
  // fusion flag is always folded in — a key that is conservatively
  // narrow costs a few extra misses, never a wrong hit.
  std::uint64_t h = fnv1a64(volume_hu);
  const std::uint8_t flags =
      static_cast<std::uint8_t>((use_enhancement ? 1 : 0) |
                                (graph_fusion ? 2 : 0));
  h = fnv1a64(&flags, sizeof(flags), h);
  h = fnv1a64(&threshold, sizeof(threshold), h);
  const std::int32_t prec = static_cast<std::int32_t>(precision);
  h = fnv1a64(&prec, sizeof(prec), h);
  h = fnv1a64(&epoch, sizeof(epoch), h);
  return h;
}

std::optional<CachedResult> ResultCache::lookup(std::uint64_t key) {
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.cache.lookup")) {
    if (f.action == fault::Action::kError) {
      // Lookup degraded (e.g. the cache's backing store is briefly
      // unreachable): a miss, never an error — recompute covers it.
      degraded_lookups.fetch_add(1, std::memory_order_relaxed);
      misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.cache.evict")) {
    if (f.action == fault::Action::kError) {
      // Forced eviction of the entry we were about to hit: the request
      // must degrade to recompute exactly as if capacity had taken it.
      lru_.erase(it->second.lru_it);
      map_.erase(it);
      forced_evictions.fetch_add(1, std::memory_order_relaxed);
      misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
  }
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.cache.poison")) {
    if (f.action == fault::Action::kCorrupt) {
      // Damage the STORED payload (not the copy we hand out) before
      // verification — the self-digest check below must catch it.
      fault::corrupt_bytes(&it->second.result,
                           offsetof(CachedResult, self_digest), f.seed,
                           f.count);
    }
  }
  if (it->second.result.compute_digest() != it->second.result.self_digest) {
    // Poisoned entry: drop it and miss. Serving it would hand the
    // client bits no recomputation could reproduce.
    TRACE_INSTANT_ID("serve.cache.poisoned", key);
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    poisoned_dropped.fetch_add(1, std::memory_order_relaxed);
    misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.result;
}

void ResultCache::insert(std::uint64_t key, CachedResult r,
                         std::uint64_t at_epoch) {
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.cache.invalidate")) {
    if (f.action == fault::Action::kError) {
      // Invalidation lands between this request's compute and its
      // insert — the epoch check below must drop the insert.
      invalidate("failpoint:serve.cache.invalidate");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (at_epoch != epoch_.load(std::memory_order_acquire)) {
    // Computed under a configuration that has since been invalidated:
    // inserting would resurrect retired bits under a key future
    // requests (new epoch) can never form — but dropping is still the
    // only safe choice, because the entry's payload may describe
    // weights that no longer exist.
    stale_inserts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (opt_.cache_capacity == 0) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.result = r;
    return;
  }
  while (map_.size() >= opt_.cache_capacity) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    evictions.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{r, lru_.begin()});
  inserts.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::invalidate(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  // Epoch first: any in-flight request sampled the old epoch, so both
  // its future lookups (key mismatch) and its insert (epoch mismatch)
  // die — then the entries themselves go.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  invalidated_entries.fetch_add(map_.size(), std::memory_order_relaxed);
  invalidations.fetch_add(1, std::memory_order_relaxed);
  map_.clear();
  lru_.clear();
  last_reason_ = reason;
  TRACE_INSTANT_ID("serve.cache.invalidate",
                   epoch_.load(std::memory_order_relaxed));
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::string ResultCache::last_invalidate_reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_reason_;
}

// ------------------------------------------------------ session store

void SessionStore::expire_locked(double now_s) {
  if (opt_.session_ttl_s <= 0.0) return;
  // Lazy sweep from the cold end of the LRU list; stops at the first
  // live session, so the amortized cost per observe is O(1).
  while (!lru_.empty()) {
    auto it = map_.find(lru_.back());
    if (it == map_.end()) {
      lru_.pop_back();
      continue;
    }
    if (now_s - it->second.last_touch_s <= opt_.session_ttl_s) break;
    lru_.pop_back();
    map_.erase(it);
    expired.fetch_add(1, std::memory_order_relaxed);
  }
}

ScanDelta SessionStore::observe(std::uint64_t patient_id, double burden,
                                double now_s, const SessionPrior* prior) {
  std::lock_guard<std::mutex> lock(mu_);
  expire_locked(now_s);
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.session.drop")) {
    if (f.action == fault::Action::kError) {
      auto it = map_.find(patient_id);
      if (it != map_.end()) {
        lru_.erase(it->second.lru_it);
        map_.erase(it);
        dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  auto it = map_.find(patient_id);
  if (it == map_.end()) {
    while (map_.size() >= opt_.session_capacity && !lru_.empty()) {
      auto victim = map_.find(lru_.back());
      lru_.pop_back();
      if (victim != map_.end()) {
        map_.erase(victim);
        evicted.fetch_add(1, std::memory_order_relaxed);
      }
    }
    lru_.push_front(patient_id);
    it = map_.emplace(patient_id, Session{}).first;
    it->second.lru_it = lru_.begin();
    if (prior != nullptr && prior->seq > 1) {
      // A follow-up scan arriving at a store with no record: a fresh
      // worker after failover, or a record lost to TTL/eviction/drop.
      // The authoritative prior rebuilds continuity exactly.
      rebuilt.fetch_add(1, std::memory_order_relaxed);
    } else {
      created.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  Session& s = it->second;
  s.last_touch_s = now_s;

  ScanDelta d;
  d.burden = burden;
  if (prior != nullptr) {
    // Routing layer owns ordinals and priors: use its bits verbatim so
    // failover re-dispatch reproduces the identical delta, then make
    // the local record agree (the rebuild).
    d.seq = prior->seq;
    d.first = prior->seq <= 1;
    if (!d.first) {
      d.delta_vs_prev = burden - prior->prev_burden;
      d.delta_vs_baseline = burden - prior->baseline_burden;
      s.baseline_burden = prior->baseline_burden;
    } else {
      s.baseline_burden = burden;
    }
    s.seq = d.seq;
  } else {
    d.seq = ++s.seq;
    d.first = d.seq == 1;
    if (d.first) {
      s.baseline_burden = burden;
    } else {
      d.delta_vs_prev = burden - s.prev_burden;
      d.delta_vs_baseline = burden - s.baseline_burden;
    }
  }
  s.prev_burden = burden;
  s.history.push_front(d);
  while (s.history.size() > opt_.history_capacity) s.history.pop_back();
  scans.fetch_add(1, std::memory_order_relaxed);
  return d;
}

std::optional<SessionPrior> SessionStore::snapshot(std::uint64_t patient_id,
                                                   double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  expire_locked(now_s);
  auto it = map_.find(patient_id);
  if (it == map_.end()) return std::nullopt;
  SessionPrior p;
  p.seq = it->second.seq;
  p.prev_burden = it->second.prev_burden;
  p.baseline_burden = it->second.baseline_burden;
  return p;
}

std::size_t SessionStore::patients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ------------------------------------------------------------ monitor

std::string Monitor::stats_json() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"cache\":{\"size\":%zu,\"epoch\":%llu,\"hits\":%llu,"
      "\"misses\":%llu,\"inserts\":%llu,\"evictions\":%llu,"
      "\"invalidations\":%llu,\"invalidated_entries\":%llu,"
      "\"stale_inserts\":%llu,\"poisoned_dropped\":%llu,"
      "\"forced_evictions\":%llu,\"degraded_lookups\":%llu},"
      "\"session\":{\"patients\":%zu,\"scans\":%llu,\"created\":%llu,"
      "\"rebuilt\":%llu,\"expired\":%llu,\"evicted\":%llu,"
      "\"dropped\":%llu}}",
      cache_.size(),
      static_cast<unsigned long long>(cache_.epoch()),
      static_cast<unsigned long long>(cache_.hits.load()),
      static_cast<unsigned long long>(cache_.misses.load()),
      static_cast<unsigned long long>(cache_.inserts.load()),
      static_cast<unsigned long long>(cache_.evictions.load()),
      static_cast<unsigned long long>(cache_.invalidations.load()),
      static_cast<unsigned long long>(cache_.invalidated_entries.load()),
      static_cast<unsigned long long>(cache_.stale_inserts.load()),
      static_cast<unsigned long long>(cache_.poisoned_dropped.load()),
      static_cast<unsigned long long>(cache_.forced_evictions.load()),
      static_cast<unsigned long long>(cache_.degraded_lookups.load()),
      sessions_.patients(),
      static_cast<unsigned long long>(sessions_.scans.load()),
      static_cast<unsigned long long>(sessions_.created.load()),
      static_cast<unsigned long long>(sessions_.rebuilt.load()),
      static_cast<unsigned long long>(sessions_.expired.load()),
      static_cast<unsigned long long>(sessions_.evicted.load()),
      static_cast<unsigned long long>(sessions_.dropped.load()));
  return buf;
}

}  // namespace ccovid::serve
