// Streaming longitudinal monitoring (ROADMAP item 5b): the state the
// paper's "monitoring" claim needs on top of the stateless serving
// stack — a per-patient session store, a content-addressed result
// cache, and the infection-burden delta engine.
//
//   submit(patient, scan) ──► ScanKey = FNV(volume bytes)
//                                       ⊕ enhancement ⊕ threshold bits
//                                       ⊕ precision ⊕ graph fusion
//                                       ⊕ cache epoch
//                               │
//                   ┌───────────┴───────────┐
//                   ▼ hit (self-digest ok)  ▼ miss / poisoned / evicted
//             cached Diagnosis        pipeline recompute ──► insert
//                   └───────────┬───────────┘
//                               ▼
//                  SessionStore::observe(patient, burden)
//                               │ delta vs prev + baseline
//                               ▼
//                  DiagnoseResponse{burden, Δprev, Δbaseline, seq}
//
// Cache correctness contract (chaos-gated in CI, see
// tests/chaos/chaos_monitor.cpp and the monitor-determinism job):
//
//   - a hit returns the EXACT bits a recomputation would produce: the
//     key covers every input the pipeline result depends on (volume
//     bytes, workflow shape, storage precision, fusion flag), and keys
//     carry the cache epoch so entries computed under a retired
//     configuration can never be read back;
//   - entries self-verify: each stores an FNV digest of its payload,
//     re-checked on every hit. A poisoned entry (bit-flipped by the
//     serve.cache.poison failpoint or a real memory fault) fails the
//     check, is dropped, and the request degrades to recompute — stale
//     or damaged bits are never served;
//   - invalidation orders against in-flight work: invalidate() bumps
//     the epoch FIRST, then clears; an insert racing the invalidation
//     carries the old epoch and is dropped (stale_inserts counter)
//     instead of resurrecting a pre-invalidation result.
//
// Session correctness contract: deltas telescope. For one patient,
// sum(burden_delta over scans 2..N) == burden_N - burden_1, each scan
// ordinal appears exactly once, and this holds across worker death
// because the ROUTING layer owns the ordinals: the front door numbers
// scans and ships (seq, prev burden, baseline burden) inside the
// request, so a failed-over request re-sent verbatim to a fresh worker
// yields bit-identical deltas (no lost, no double-counted scans). The
// worker's own store is a rebuildable cache of that history, used only
// when no authoritative prior rides the request (single-process mode).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/digest.h"
#include "core/precision.h"
#include "core/tensor.h"

namespace ccovid::serve {

struct MonitorOptions {
  std::size_t cache_capacity = 256;    ///< result-cache entries (LRU)
  std::size_t session_capacity = 1024; ///< tracked patients (LRU)
  std::size_t history_capacity = 64;   ///< scans remembered per patient
  /// Sessions idle longer than this are expired lazily on the next
  /// store access. 0 = never expire.
  double session_ttl_s = 0.0;
};

/// One cached diagnosis: the payload a hit must reproduce bit-for-bit.
/// `self_digest` is FNV over every payload field; lookup() re-derives
/// it so damaged entries are detected instead of served.
struct CachedResult {
  double probability = 0.0;
  bool positive = false;
  double threshold = 0.5;
  double infection_burden = 0.0;
  std::uint64_t lung_voxels = 0;
  std::uint64_t infected_voxels = 0;
  std::uint64_t self_digest = 0;

  std::uint64_t compute_digest() const;
  void seal() { self_digest = compute_digest(); }
};

/// Per-scan longitudinal result of SessionStore::observe.
struct ScanDelta {
  std::uint64_t seq = 0;  ///< 1-based scan ordinal for this patient
  double burden = 0.0;
  double delta_vs_prev = 0.0;      ///< 0 for the first scan
  double delta_vs_baseline = 0.0;  ///< 0 for the first scan
  bool first = false;
};

/// Authoritative prior handed down by the routing layer (see
/// ServeOptions::has_prior); seq is the ordinal the routing layer
/// assigned to THIS scan.
struct SessionPrior {
  std::uint64_t seq = 0;
  double prev_burden = 0.0;
  double baseline_burden = 0.0;
};

/// Content-addressed result cache with LRU eviction, self-verifying
/// entries, and epoch-ordered invalidation. Thread-safe; every counter
/// is monotonic.
class ResultCache {
 public:
  explicit ResultCache(const MonitorOptions& opt) : opt_(opt) {}

  /// Key of one (scan, serving configuration) cell. Folds the volume
  /// bytes with every knob the output bits depend on, plus `epoch` so
  /// invalidation retires all outstanding keys at once.
  static std::uint64_t scan_key(const Tensor& volume_hu,
                                bool use_enhancement, double threshold,
                                core::Precision precision, bool graph_fusion,
                                std::uint64_t epoch);

  /// Current epoch; sample it ONCE per request, before lookup, and pass
  /// the same value to insert() — that ordering is what makes
  /// invalidate-mid-request safe.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Verified lookup. Failpoints: `serve.cache.lookup` (error → forced
  /// miss), `serve.cache.evict` (error → entry force-evicted, miss),
  /// `serve.cache.poison` (corrupt → stored payload bytes damaged
  /// before verification; the self-digest check must catch it).
  std::optional<CachedResult> lookup(std::uint64_t key);

  /// Inserts a sealed result computed under `at_epoch`. Dropped (and
  /// counted in stale_inserts) when an invalidation happened since the
  /// epoch was sampled. Failpoint: `serve.cache.invalidate` (error →
  /// invalidate("failpoint") runs first, so this very insert is the
  /// one that gets dropped).
  void insert(std::uint64_t key, CachedResult r, std::uint64_t at_epoch);

  /// Retires every entry and all outstanding epochs (weight reload,
  /// precision/config change, operator request). Named reasons land in
  /// the stats JSON.
  void invalidate(const std::string& reason);

  std::size_t size() const;

  // Counters (relaxed monotonic).
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> evictions{0};      ///< capacity LRU
  std::atomic<std::uint64_t> invalidations{0};  ///< invalidate() calls
  std::atomic<std::uint64_t> invalidated_entries{0};
  std::atomic<std::uint64_t> stale_inserts{0};  ///< dropped by epoch check
  std::atomic<std::uint64_t> poisoned_dropped{0};
  std::atomic<std::uint64_t> forced_evictions{0};  ///< serve.cache.evict
  std::atomic<std::uint64_t> degraded_lookups{0};  ///< serve.cache.lookup

  std::string last_invalidate_reason() const;

 private:
  struct Entry {
    CachedResult result;
    std::list<std::uint64_t>::iterator lru_it;
  };

  MonitorOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::atomic<std::uint64_t> epoch_{0};
  std::string last_reason_;
};

/// Per-patient longitudinal session store: bounded scan history, LRU
/// patient eviction, lazy TTL expiry. Thread-safe.
class SessionStore {
 public:
  explicit SessionStore(const MonitorOptions& opt) : opt_(opt) {}

  /// Records one scan and returns its deltas. When `prior` is non-null
  /// the routing layer's (seq, prev, baseline) are authoritative — the
  /// local record is rebuilt from them (failover recovery); otherwise
  /// the local history assigns the ordinal. `now_s` is any monotonic
  /// clock (tests drive it manually for TTL determinism). Failpoint:
  /// `serve.session.drop` (error → this patient's local record is
  /// dropped first, exercising the rebuild path).
  ScanDelta observe(std::uint64_t patient_id, double burden, double now_s,
                    const SessionPrior* prior);

  /// Last-known (seq, prev, baseline) for a patient; nullopt when the
  /// session is absent or expired.
  std::optional<SessionPrior> snapshot(std::uint64_t patient_id,
                                       double now_s);

  std::size_t patients() const;

  // Counters (relaxed monotonic).
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> created{0};
  std::atomic<std::uint64_t> rebuilt{0};  ///< recreated from a prior
  std::atomic<std::uint64_t> expired{0};  ///< TTL
  std::atomic<std::uint64_t> evicted{0};  ///< capacity LRU
  std::atomic<std::uint64_t> dropped{0};  ///< serve.session.drop

 private:
  struct Session {
    std::uint64_t seq = 0;          ///< last assigned ordinal
    double baseline_burden = 0.0;   ///< first scan's burden
    double prev_burden = 0.0;       ///< most recent scan's burden
    double last_touch_s = 0.0;
    std::list<ScanDelta> history;   ///< newest front, bounded
    std::list<std::uint64_t>::iterator lru_it;
  };

  void expire_locked(double now_s);

  MonitorOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Session> map_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
};

/// The serving-side bundle: one cache + one session store + the stats
/// fragment the server splices into its JSON.
class Monitor {
 public:
  explicit Monitor(MonitorOptions opt)
      : opt_(opt), cache_(opt), sessions_(opt) {}

  MonitorOptions& options() { return opt_; }
  ResultCache& cache() { return cache_; }
  SessionStore& sessions() { return sessions_; }

  /// `"monitor":{...}` value — cache and session counters, sized for
  /// the chaos suites and the bench gate to assert on.
  std::string stats_json() const;

 private:
  MonitorOptions opt_;
  ResultCache cache_;
  SessionStore sessions_;
};

}  // namespace ccovid::serve
