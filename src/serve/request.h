// Request/response types of the inference-serving runtime.
//
// A client submits one raw HU volume plus ServeOptions and receives a
// std::future<DiagnoseResponse>. Internally the server moves Request
// objects (volume handle + promise + admission timestamp) through the
// bounded queue into the dynamic batcher and onto the worker pool.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "core/tensor.h"
#include "pipeline/framework.h"

namespace ccovid::serve {

using Clock = std::chrono::steady_clock;

enum class RequestStatus {
  kOk,        ///< diagnosis completed
  kRejected,  ///< admission queue full (backpressure fast-fail)
  kTimedOut,  ///< deadline expired before a worker picked the batch up
  kShutdown,  ///< submitted after shutdown began
  kError,     ///< pipeline threw (unknown session, bad volume, ...)
};

inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kTimedOut: return "timed_out";
    case RequestStatus::kShutdown: return "shutdown";
    case RequestStatus::kError: return "error";
  }
  return "unknown";
}

struct ServeOptions {
  std::string session = "default";  ///< model set in the SessionRegistry
  bool use_enhancement = true;      ///< run the DDnet stage (§5.2.3 knob)
  double threshold = 0.5;
  /// Drop the request unexecuted if it waits longer than this before a
  /// worker starts its batch. zero = no deadline.
  std::chrono::milliseconds deadline{0};

  // Longitudinal monitoring (serve/monitor.h). patient_id != 0 opts a
  // request into session tracking when the server runs with a Monitor;
  // 0 keeps the stateless one-shot behavior.
  std::uint64_t patient_id = 0;
  /// Authoritative scan ordinal supplied by the routing layer (the
  /// front door numbers a patient's scans so failover re-dispatch can
  /// never double-count); 0 = let the worker's local session assign it.
  std::uint64_t monitor_seq = 0;
  /// When true, prior_burden/baseline_burden carry the patient's last
  /// and first infection-burden values from the routing layer's session
  /// record — the worker computes deltas from these exact bits instead
  /// of its local history, so a freshly failed-over worker produces the
  /// same deltas as the one that died.
  bool has_prior = false;
  double prior_burden = 0.0;
  double baseline_burden = 0.0;
};

struct DiagnoseResponse {
  RequestStatus status = RequestStatus::kError;
  pipeline::Diagnosis diagnosis;     ///< valid when status == kOk
  pipeline::StageTimes stages;       ///< per-stage pipeline breakdown
  double queue_s = 0.0;              ///< admission -> worker pickup
  double execute_s = 0.0;            ///< this request's batch execution
  double total_s = 0.0;              ///< admission -> response
  std::uint64_t request_id = 0;
  std::size_t batch_size = 0;        ///< micro-batch the request rode in
  std::string error;                 ///< set when status == kError
  /// True when the batch only completed after the server dropped the
  /// enhancement stage (ServerOptions::degrade_on_failure): the result
  /// is valid but came from the reduced workflow.
  bool degraded = false;
  /// Failed execution attempts before this response (retry-with-backoff
  /// plus the degraded retry, when they happened).
  int retries = 0;

  // Longitudinal monitoring (serve/monitor.h); meaningful when
  // scan_seq > 0 (the request carried a patient_id and the server ran
  // with a Monitor).
  double infection_burden = 0.0;  ///< this scan's burden (pipeline metric)
  double burden_delta = 0.0;      ///< vs the patient's previous scan
  double baseline_delta = 0.0;    ///< vs the patient's first scan
  std::uint64_t scan_seq = 0;     ///< 1-based per-patient scan ordinal
  bool cache_hit = false;         ///< served from the result cache
};

/// Internal queue entry. The Tensor member is a shallow copy (shared
/// storage), so admission never copies voxel data.
struct Request {
  std::uint64_t id = 0;
  Tensor volume_hu;
  ServeOptions options;
  Clock::time_point submit_time;
  std::promise<DiagnoseResponse> promise;

  bool expired(Clock::time_point now) const {
    return options.deadline.count() > 0 &&
           now - submit_time > options.deadline;
  }

  /// Two requests may share a micro-batch when they hit the same model
  /// session with the same workflow shape (enhancement on/off). The
  /// decision threshold is per-request and does not affect batching.
  bool compatible(const Request& other) const {
    return options.session == other.options.session &&
           options.use_enhancement == other.options.use_enhancement;
  }
};

using RequestPtr = std::unique_ptr<Request>;

}  // namespace ccovid::serve
