#include "serve/server.h"

#include <exception>
#include <optional>
#include <utility>

#include "core/finite.h"
#include "core/precision.h"
#include "fault/failpoint.h"
#include "graph/graph.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace ccovid::serve {

void SessionRegistry::add(
    const std::string& name,
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> p) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[name] = std::move(p);
}

std::shared_ptr<const pipeline::ComputeCovid19Pipeline>
SessionRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::string> SessionRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, p] : sessions_) out.push_back(name);
  return out;
}

InferenceServer::InferenceServer(SessionRegistry registry, ServerOptions opt)
    : opt_(opt),
      registry_(std::move(registry)),
      queue_(opt.queue_capacity),
      batcher_(queue_, BatcherOptions{opt.max_batch, opt.batch_delay}),
      // Pool backlog of 1: the batcher pre-stages at most one batch, so
      // overload accumulates in the admission queue (where rejection and
      // deadline triage apply) instead of hiding in the pool.
      pool_(WorkerPool::Options{opt.workers, opt.inner_threads, 1}),
      start_time_(Clock::now()) {
  if (opt_.monitor) monitor_ = std::make_unique<Monitor>(opt_.monitor_opts);
  batcher_thread_ = std::thread([this] { batcher_loop(); });
}

InferenceServer::InferenceServer(
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
    ServerOptions opt)
    : InferenceServer(
          [&pipeline] {
            SessionRegistry r;
            r.add("default", std::move(pipeline));
            return r;
          }(),
          opt) {}

InferenceServer::~InferenceServer() { shutdown(); }

double InferenceServer::uptime_s() const {
  return std::chrono::duration<double>(Clock::now() - start_time_).count();
}

std::string InferenceServer::stats_json() const {
  std::string out = stats_.json(queue_depth(), uptime_s());
  // Injected-fault counters ride along so operators (and the chaos
  // harness) can tell injected failures from organic ones.
  const std::string fp = fault::Registry::instance().json();
  if (fp != "{}") out.insert(out.size() - 1, ",\"failpoints\":" + fp);
  if (monitor_) {
    out.insert(out.size() - 1, ",\"monitor\":" + monitor_->stats_json());
  }
  // Trace summary (per-span count/total/p50/p99): aggregation merges
  // every thread's ring into one duration set per span name BEFORE
  // extracting quantiles, so the reported percentiles are workload
  // quantiles even when inner threads outnumber workers.
  if (trace::enabled()) {
    out.insert(out.size() - 1,
               ",\"trace\":" + trace::summary_json(trace::snapshot()));
  }
  return out;
}

void InferenceServer::respond(RequestPtr req, DiagnoseResponse r) {
  r.request_id = req->id;
  r.total_s =
      std::chrono::duration<double>(Clock::now() - req->submit_time).count();
  req->promise.set_value(std::move(r));
}

std::future<DiagnoseResponse> InferenceServer::submit(const Tensor& volume_hu,
                                                      ServeOptions options) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (options.deadline.count() == 0) {
    options.deadline = opt_.default_deadline;
  }

  auto req = std::make_unique<Request>();
  req->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Admission span on the submitter thread; the worker re-emits the same
  // request id from execute/respond, stitching the request's timeline
  // across threads.
  TRACE_SPAN_ID("serve.admit", req->id);
  req->volume_hu = volume_hu;  // shallow copy, shared storage
  req->options = std::move(options);
  req->submit_time = Clock::now();
  std::future<DiagnoseResponse> fut = req->promise.get_future();

  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    DiagnoseResponse r;
    r.status = RequestStatus::kShutdown;
    respond(std::move(req), std::move(r));
    return fut;
  }
  // Admission fault: error schedules simulate queue exhaustion without
  // needing real overload (the request takes the same rejection path);
  // delay schedules stall the submitter so real overload can build.
  bool inject_reject = false;
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.queue.admit")) {
    inject_reject = f.action == fault::Action::kError;
  }
  if (inject_reject || !queue_.try_push(std::move(req))) {
    // try_push leaves ownership with us on failure: overload fast-fail.
    stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
    DiagnoseResponse r;
    r.status = RequestStatus::kRejected;
    respond(std::move(req), std::move(r));
    return fut;
  }
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

void InferenceServer::batcher_loop() {
  while (true) {
    std::vector<RequestPtr> batch = batcher_.next_batch();
    if (batch.empty()) break;  // queue closed and drained
    // Dispatch span carries the batch's first request id and covers the
    // (possibly blocking) hand-off to the pool, so backpressure stalls
    // are visible on the batcher lane.
    TRACE_SPAN_ID("serve.batch.dispatch", batch.front()->id);
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_volumes.fetch_add(batch.size(),
                                     std::memory_order_relaxed);
    // Wrap the batch in a shared_ptr: std::function requires copyable
    // callables. submit() blocks when every worker is busy and the
    // backlog is full — backpressure reaching back to the admission
    // queue.
    auto shared =
        std::make_shared<std::vector<RequestPtr>>(std::move(batch));
    pool_.submit([this, shared] { execute_batch(std::move(*shared)); });
  }
}

void InferenceServer::execute_batch(std::vector<RequestPtr> batch) {
  TRACE_SPAN_ID("serve.batch.execute", batch.front()->id);
  // Nested pipeline/op/ct spans on this worker inherit the lead request
  // id, so kernel time is attributable to the batch that ran it.
  trace::ScopedCorrelation corr(batch.front()->id);
  const Clock::time_point exec_start = Clock::now();

  // Deadline triage before any compute.
  std::vector<RequestPtr> live;
  live.reserve(batch.size());
  for (auto& req : batch) {
    if (req->expired(exec_start)) {
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
      DiagnoseResponse r;
      r.status = RequestStatus::kTimedOut;
      r.queue_s = std::chrono::duration<double>(exec_start -
                                                req->submit_time)
                      .count();
      respond(std::move(req), std::move(r));
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;

  auto fail_all = [&](const std::string& message) {
    for (auto& req : live) {
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
      DiagnoseResponse r;
      r.status = RequestStatus::kError;
      r.error = message;
      respond(std::move(req), std::move(r));
    }
  };

  const auto model = registry_.find(live.front()->options.session);
  if (!model) {
    fail_all("unknown session: " + live.front()->options.session);
    return;
  }

  // Result cache (monitoring mode): sample epoch + configuration ONCE
  // per batch, before any lookup, and pass the same epoch to insert —
  // invalidations racing this batch retire its keys, so its inserts are
  // dropped instead of resurrecting pre-invalidation results. Hits skip
  // compute entirely; only misses go to the pipeline.
  std::vector<std::uint64_t> keys(live.size(), 0);
  std::vector<std::optional<CachedResult>> cached(live.size());
  std::uint64_t epoch = 0;
  if (monitor_) {
    epoch = monitor_->cache().epoch();
    const core::Precision precision = core::active_precision();
    const bool fusion = graph::fusion_enabled();
    for (std::size_t i = 0; i < live.size(); ++i) {
      keys[i] = ResultCache::scan_key(
          live[i]->volume_hu, live[i]->options.use_enhancement,
          live[i]->options.threshold, precision, fusion, epoch);
      cached[i] = monitor_->cache().lookup(keys[i]);
    }
  }

  constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);
  std::vector<pipeline::BatchItem> items;
  std::vector<std::size_t> item_index(live.size(), kNoItem);
  std::vector<std::size_t> miss_of;  ///< item index -> live index
  items.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (cached[i]) continue;
    item_index[i] = items.size();
    miss_of.push_back(i);
    items.push_back({&live[i]->volume_hu, live[i]->options.use_enhancement,
                     live[i]->options.threshold});
  }

  // Execution with retry-with-backoff and optional graceful degradation:
  // transient faults (injected or organic) are retried max_retries times
  // with doubling sleeps; if the batch still fails and degradation is
  // enabled, it runs once more with the enhancement stage dropped and
  // responses flagged degraded. Only then does the client see kError.
  std::vector<pipeline::StageTimes> times;
  std::vector<pipeline::Diagnosis> results;
  int attempts_failed = 0;
  bool degraded = false;
  auto backoff = opt_.retry_backoff;
  while (!items.empty()) {
    try {
      if (auto f = CCOVID_FAILPOINT_FIRED("serve.worker.exec")) {
        if (f.action == fault::Action::kError ||
            f.action == fault::Action::kCorrupt) {
          throw StageError("serve.worker.exec", "injected execution fault");
        }
      }
      times.clear();
      results = model->diagnose_batch(items, &times);
      break;
    } catch (const std::exception& e) {
      ++attempts_failed;
      if (attempts_failed <= opt_.max_retries) {
        TRACE_INSTANT_ID("serve.retry", live.front()->id);
        stats_.retried.fetch_add(1, std::memory_order_relaxed);
        if (backoff.count() > 0) {
          std::this_thread::sleep_for(backoff);
          backoff *= 2;
        }
        continue;
      }
      if (opt_.degrade_on_failure && !degraded &&
          items.front().use_enhancement) {
        degraded = true;
        TRACE_INSTANT_ID("serve.degraded", live.front()->id);
        for (auto& item : items) item.use_enhancement = false;
        stats_.retried.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      fail_all(e.what());
      return;
    }
  }

  // Fill the cache from this batch's fresh computations. Degraded runs
  // are NOT cached: the key was derived from the requested workflow
  // (enhancement on) but the bits came from the reduced one, and a hit
  // must always equal an honest recomputation of its key.
  if (monitor_ && !degraded) {
    for (std::size_t j = 0; j < miss_of.size(); ++j) {
      const pipeline::Diagnosis& d = results[j];
      CachedResult cr;
      cr.probability = d.probability;
      cr.positive = d.positive;
      cr.threshold = d.threshold;
      cr.infection_burden = d.infection_burden;
      cr.lung_voxels = d.lung_voxels;
      cr.infected_voxels = d.infected_voxels;
      cr.seal();
      monitor_->cache().insert(keys[miss_of[j]], cr, epoch);
    }
  }

  if (opt_.device_stall_s > 0.0 && !items.empty()) {
    // Emulated accelerator residency: the worker blocks as it would on
    // a synchronous device queue running the paper-scale model. Cache
    // hits never touched the device, so only computed volumes stall.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        opt_.device_stall_s * static_cast<double>(items.size())));
  }

  const double execute_s =
      std::chrono::duration<double>(Clock::now() - exec_start).count();

  for (std::size_t i = 0; i < live.size(); ++i) {
    TRACE_SPAN_ID("serve.respond", live[i]->id);
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    if (degraded) stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    DiagnoseResponse r;
    r.status = RequestStatus::kOk;
    r.retries = attempts_failed;
    r.queue_s = std::chrono::duration<double>(exec_start -
                                              live[i]->submit_time)
                    .count();
    r.execute_s = execute_s;
    r.batch_size = live.size();

    const std::size_t j = item_index[i];
    if (j == kNoItem) {
      // Cache hit: reconstruct the diagnosis from the verified entry —
      // bitwise identical to what recomputation would have produced.
      const CachedResult& cr = *cached[i];
      r.cache_hit = true;
      r.diagnosis.probability = cr.probability;
      r.diagnosis.positive = cr.positive;
      r.diagnosis.threshold = cr.threshold;
      r.diagnosis.infection_burden = cr.infection_burden;
      r.diagnosis.lung_voxels = cr.lung_voxels;
      r.diagnosis.infected_voxels = cr.infected_voxels;
    } else {
      r.degraded = degraded;
      r.diagnosis = results[j];
      r.stages = times[j];
      stats_.prepare.record(times[j].prepare_s);
      if (items[j].use_enhancement) stats_.enhance.record(times[j].enhance_s);
      stats_.segment.record(times[j].segment_s);
      stats_.classify.record(times[j].classify_s);
      stats_.stage_totals.add("prepare", times[j].prepare_s);
      stats_.stage_totals.add("enhance", times[j].enhance_s);
      stats_.stage_totals.add("segment", times[j].segment_s);
      stats_.stage_totals.add("classify", times[j].classify_s);
    }
    r.infection_burden = r.diagnosis.infection_burden;

    // Longitudinal session tracking for requests carrying a patient id.
    // When the routing layer shipped an authoritative prior (failover-
    // safe ordinals), deltas come from those exact bits; otherwise the
    // local session history assigns the ordinal.
    if (monitor_ && live[i]->options.patient_id != 0) {
      SessionPrior prior;
      const SessionPrior* pp = nullptr;
      if (live[i]->options.has_prior) {
        prior.seq = live[i]->options.monitor_seq;
        prior.prev_burden = live[i]->options.prior_burden;
        prior.baseline_burden = live[i]->options.baseline_burden;
        pp = &prior;
      }
      const ScanDelta d = monitor_->sessions().observe(
          live[i]->options.patient_id, r.infection_burden, uptime_s(), pp);
      r.scan_seq = d.seq;
      r.burden_delta = d.delta_vs_prev;
      r.baseline_delta = d.delta_vs_baseline;
    }

    stats_.queue_wait.record(r.queue_s);
    stats_.execute.record(execute_s);

    const Clock::time_point done = Clock::now();
    stats_.total.record(
        std::chrono::duration<double>(done - live[i]->submit_time).count());
    respond(std::move(live[i]), std::move(r));
  }
}

void InferenceServer::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;

  accepting_.store(false, std::memory_order_release);
  queue_.close();  // batcher drains the remainder, then exits
  if (batcher_thread_.joinable()) batcher_thread_.join();
  pool_.shutdown();  // drains dispatched batches, then joins workers
}

}  // namespace ccovid::serve
