#include "serve/server.h"

#include <exception>
#include <utility>

#include "core/finite.h"
#include "fault/failpoint.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace ccovid::serve {

void SessionRegistry::add(
    const std::string& name,
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> p) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[name] = std::move(p);
}

std::shared_ptr<const pipeline::ComputeCovid19Pipeline>
SessionRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::string> SessionRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, p] : sessions_) out.push_back(name);
  return out;
}

InferenceServer::InferenceServer(SessionRegistry registry, ServerOptions opt)
    : opt_(opt),
      registry_(std::move(registry)),
      queue_(opt.queue_capacity),
      batcher_(queue_, BatcherOptions{opt.max_batch, opt.batch_delay}),
      // Pool backlog of 1: the batcher pre-stages at most one batch, so
      // overload accumulates in the admission queue (where rejection and
      // deadline triage apply) instead of hiding in the pool.
      pool_(WorkerPool::Options{opt.workers, opt.inner_threads, 1}),
      start_time_(Clock::now()) {
  batcher_thread_ = std::thread([this] { batcher_loop(); });
}

InferenceServer::InferenceServer(
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
    ServerOptions opt)
    : InferenceServer(
          [&pipeline] {
            SessionRegistry r;
            r.add("default", std::move(pipeline));
            return r;
          }(),
          opt) {}

InferenceServer::~InferenceServer() { shutdown(); }

double InferenceServer::uptime_s() const {
  return std::chrono::duration<double>(Clock::now() - start_time_).count();
}

std::string InferenceServer::stats_json() const {
  std::string out = stats_.json(queue_depth(), uptime_s());
  // Injected-fault counters ride along so operators (and the chaos
  // harness) can tell injected failures from organic ones.
  const std::string fp = fault::Registry::instance().json();
  if (fp != "{}") out.insert(out.size() - 1, ",\"failpoints\":" + fp);
  // Trace summary (per-span count/total/p50/p99): aggregation merges
  // every thread's ring into one duration set per span name BEFORE
  // extracting quantiles, so the reported percentiles are workload
  // quantiles even when inner threads outnumber workers.
  if (trace::enabled()) {
    out.insert(out.size() - 1,
               ",\"trace\":" + trace::summary_json(trace::snapshot()));
  }
  return out;
}

void InferenceServer::respond(RequestPtr req, DiagnoseResponse r) {
  r.request_id = req->id;
  r.total_s =
      std::chrono::duration<double>(Clock::now() - req->submit_time).count();
  req->promise.set_value(std::move(r));
}

std::future<DiagnoseResponse> InferenceServer::submit(const Tensor& volume_hu,
                                                      ServeOptions options) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (options.deadline.count() == 0) {
    options.deadline = opt_.default_deadline;
  }

  auto req = std::make_unique<Request>();
  req->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Admission span on the submitter thread; the worker re-emits the same
  // request id from execute/respond, stitching the request's timeline
  // across threads.
  TRACE_SPAN_ID("serve.admit", req->id);
  req->volume_hu = volume_hu;  // shallow copy, shared storage
  req->options = std::move(options);
  req->submit_time = Clock::now();
  std::future<DiagnoseResponse> fut = req->promise.get_future();

  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    DiagnoseResponse r;
    r.status = RequestStatus::kShutdown;
    respond(std::move(req), std::move(r));
    return fut;
  }
  // Admission fault: error schedules simulate queue exhaustion without
  // needing real overload (the request takes the same rejection path);
  // delay schedules stall the submitter so real overload can build.
  bool inject_reject = false;
  if (auto f = CCOVID_FAILPOINT_FIRED("serve.queue.admit")) {
    inject_reject = f.action == fault::Action::kError;
  }
  if (inject_reject || !queue_.try_push(std::move(req))) {
    // try_push leaves ownership with us on failure: overload fast-fail.
    stats_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
    DiagnoseResponse r;
    r.status = RequestStatus::kRejected;
    respond(std::move(req), std::move(r));
    return fut;
  }
  stats_.admitted.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

void InferenceServer::batcher_loop() {
  while (true) {
    std::vector<RequestPtr> batch = batcher_.next_batch();
    if (batch.empty()) break;  // queue closed and drained
    // Dispatch span carries the batch's first request id and covers the
    // (possibly blocking) hand-off to the pool, so backpressure stalls
    // are visible on the batcher lane.
    TRACE_SPAN_ID("serve.batch.dispatch", batch.front()->id);
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_volumes.fetch_add(batch.size(),
                                     std::memory_order_relaxed);
    // Wrap the batch in a shared_ptr: std::function requires copyable
    // callables. submit() blocks when every worker is busy and the
    // backlog is full — backpressure reaching back to the admission
    // queue.
    auto shared =
        std::make_shared<std::vector<RequestPtr>>(std::move(batch));
    pool_.submit([this, shared] { execute_batch(std::move(*shared)); });
  }
}

void InferenceServer::execute_batch(std::vector<RequestPtr> batch) {
  TRACE_SPAN_ID("serve.batch.execute", batch.front()->id);
  // Nested pipeline/op/ct spans on this worker inherit the lead request
  // id, so kernel time is attributable to the batch that ran it.
  trace::ScopedCorrelation corr(batch.front()->id);
  const Clock::time_point exec_start = Clock::now();

  // Deadline triage before any compute.
  std::vector<RequestPtr> live;
  live.reserve(batch.size());
  for (auto& req : batch) {
    if (req->expired(exec_start)) {
      stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
      DiagnoseResponse r;
      r.status = RequestStatus::kTimedOut;
      r.queue_s = std::chrono::duration<double>(exec_start -
                                                req->submit_time)
                      .count();
      respond(std::move(req), std::move(r));
    } else {
      live.push_back(std::move(req));
    }
  }
  if (live.empty()) return;

  auto fail_all = [&](const std::string& message) {
    for (auto& req : live) {
      stats_.failed.fetch_add(1, std::memory_order_relaxed);
      DiagnoseResponse r;
      r.status = RequestStatus::kError;
      r.error = message;
      respond(std::move(req), std::move(r));
    }
  };

  const auto model = registry_.find(live.front()->options.session);
  if (!model) {
    fail_all("unknown session: " + live.front()->options.session);
    return;
  }

  std::vector<pipeline::BatchItem> items;
  items.reserve(live.size());
  for (const auto& req : live) {
    items.push_back({&req->volume_hu, req->options.use_enhancement,
                     req->options.threshold});
  }

  // Execution with retry-with-backoff and optional graceful degradation:
  // transient faults (injected or organic) are retried max_retries times
  // with doubling sleeps; if the batch still fails and degradation is
  // enabled, it runs once more with the enhancement stage dropped and
  // responses flagged degraded. Only then does the client see kError.
  std::vector<pipeline::StageTimes> times;
  std::vector<pipeline::Diagnosis> results;
  int attempts_failed = 0;
  bool degraded = false;
  auto backoff = opt_.retry_backoff;
  for (;;) {
    try {
      if (auto f = CCOVID_FAILPOINT_FIRED("serve.worker.exec")) {
        if (f.action == fault::Action::kError ||
            f.action == fault::Action::kCorrupt) {
          throw StageError("serve.worker.exec", "injected execution fault");
        }
      }
      times.clear();
      results = model->diagnose_batch(items, &times);
      break;
    } catch (const std::exception& e) {
      ++attempts_failed;
      if (attempts_failed <= opt_.max_retries) {
        TRACE_INSTANT_ID("serve.retry", live.front()->id);
        stats_.retried.fetch_add(1, std::memory_order_relaxed);
        if (backoff.count() > 0) {
          std::this_thread::sleep_for(backoff);
          backoff *= 2;
        }
        continue;
      }
      if (opt_.degrade_on_failure && !degraded &&
          items.front().use_enhancement) {
        degraded = true;
        TRACE_INSTANT_ID("serve.degraded", live.front()->id);
        for (auto& item : items) item.use_enhancement = false;
        stats_.retried.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      fail_all(e.what());
      return;
    }
  }

  if (opt_.device_stall_s > 0.0) {
    // Emulated accelerator residency: the worker blocks as it would on
    // a synchronous device queue running the paper-scale model.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        opt_.device_stall_s * static_cast<double>(live.size())));
  }

  const double execute_s =
      std::chrono::duration<double>(Clock::now() - exec_start).count();

  for (std::size_t i = 0; i < live.size(); ++i) {
    TRACE_SPAN_ID("serve.respond", live[i]->id);
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    if (degraded) stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    DiagnoseResponse r;
    r.status = RequestStatus::kOk;
    r.degraded = degraded;
    r.retries = attempts_failed;
    r.diagnosis = results[i];
    r.stages = times[i];
    r.queue_s = std::chrono::duration<double>(exec_start -
                                              live[i]->submit_time)
                    .count();
    r.execute_s = execute_s;
    r.batch_size = live.size();

    stats_.queue_wait.record(r.queue_s);
    stats_.execute.record(execute_s);
    stats_.prepare.record(times[i].prepare_s);
    if (items[i].use_enhancement) stats_.enhance.record(times[i].enhance_s);
    stats_.segment.record(times[i].segment_s);
    stats_.classify.record(times[i].classify_s);
    stats_.stage_totals.add("prepare", times[i].prepare_s);
    stats_.stage_totals.add("enhance", times[i].enhance_s);
    stats_.stage_totals.add("segment", times[i].segment_s);
    stats_.stage_totals.add("classify", times[i].classify_s);

    const Clock::time_point done = Clock::now();
    stats_.total.record(
        std::chrono::duration<double>(done - live[i]->submit_time).count());
    respond(std::move(live[i]), std::move(r));
  }
}

void InferenceServer::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;

  accepting_.store(false, std::memory_order_release);
  queue_.close();  // batcher drains the remainder, then exits
  if (batcher_thread_.joinable()) batcher_thread_.join();
  pool_.shutdown();  // drains dispatched batches, then joins workers
}

}  // namespace ccovid::serve
