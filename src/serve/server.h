// InferenceServer — the batching inference-serving runtime tying the
// subsystem together:
//
//   submit() ──► BoundedQueue (admission control, fast-fail when full)
//                   │ batcher thread
//                   ▼
//             DynamicBatcher (flush on max_batch or max_delay)
//                   │ one job per micro-batch
//                   ▼
//             WorkerPool (N workers, kernels pinned single-threaded)
//                   │ ComputeCovid19Pipeline::diagnose_batch
//                   ▼
//             promise fulfilment + ServerStats
//
// Model weights are shared immutably: every worker reads the same
// pipeline instance out of the SessionRegistry (inference is const and
// eval-mode networks are never written — see pipeline/framework.h), so
// N workers cost one copy of the weights. Per-request scratch lives on
// the worker's stack, and each worker's kernels run single-threaded
// (core/parallel thread pin), which keeps diagnoses bitwise-identical
// for any worker count and any batch composition.
//
// shutdown() is graceful: admissions stop, everything already admitted
// is drained through the batcher and workers, then threads join.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/bounded_queue.h"
#include "serve/monitor.h"
#include "serve/request.h"
#include "serve/stats.h"
#include "serve/worker_pool.h"

namespace ccovid::serve {

/// Named, immutable model sets. Registered pipelines must already be in
/// eval mode (every network set_training(false)); the registry hands out
/// shared const pointers so workers can only read.
class SessionRegistry {
 public:
  SessionRegistry() = default;
  /// Movable so a populated registry can be handed to the server (the
  /// mutex member deletes the default move).
  SessionRegistry(SessionRegistry&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mu_);
    sessions_ = std::move(other.sessions_);
  }

  void add(const std::string& name,
           std::shared_ptr<const pipeline::ComputeCovid19Pipeline> p);
  std::shared_ptr<const pipeline::ComputeCovid19Pipeline> find(
      const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const pipeline::ComputeCovid19Pipeline>>
      sessions_;
};

struct ServerOptions {
  std::size_t queue_capacity = 64;  ///< admission queue bound
  std::size_t max_batch = 4;
  std::chrono::microseconds batch_delay{2000};
  int workers = 1;
  /// Per-request cap on shared-engine lanes for kernels inside a batch
  /// (see WorkerPool::Options). 0 = uncapped: all workers' kernels
  /// load-balance over one engine and saturate the machine.
  int inner_threads = 0;
  /// Applied to requests whose own deadline is zero. zero = none.
  std::chrono::milliseconds default_deadline{0};
  /// Emulated accelerator residency per volume (seconds): workers sleep
  /// this long per batched volume after computing the result, modeling
  /// the blocking device offload of the paper's GPU/FPGA deployments
  /// (projected by hetero::device_model). 0 = pure-CPU serving.
  double device_stall_s = 0.0;
  /// Failed batch executions are retried up to this many times before
  /// degrading or failing; transient faults (device glitch, injected
  /// failpoint) resolve without surfacing to clients. 0 = fail fast.
  int max_retries = 0;
  /// Sleep before the first retry; doubles on each subsequent one.
  std::chrono::milliseconds retry_backoff{10};
  /// After retries are exhausted, re-run the batch once with the DDnet
  /// enhancement stage disabled (the §5.2.3 reduced workflow) instead of
  /// failing — responses carry degraded=true so clients can tell.
  bool degrade_on_failure = false;
  /// Longitudinal monitoring mode (serve/monitor.h): session store +
  /// content-addressed result cache + per-patient burden deltas for
  /// requests carrying a patient_id. Stateless requests (patient_id 0)
  /// are untouched either way.
  bool monitor = false;
  MonitorOptions monitor_opts;
};

class InferenceServer {
 public:
  InferenceServer(SessionRegistry registry, ServerOptions opt);
  /// Single-model convenience: registers `pipeline` as "default".
  InferenceServer(
      std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
      ServerOptions opt);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admits one raw HU volume. Always returns a valid future; overload
  /// and shutdown are reported through DiagnoseResponse::status rather
  /// than exceptions. The tensor is shallow-copied (shared storage).
  std::future<DiagnoseResponse> submit(const Tensor& volume_hu,
                                       ServeOptions options = {});

  /// Graceful: stops admissions, drains queue + in-flight batches,
  /// joins all threads. Idempotent; also run by the destructor.
  void shutdown();

  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }
  /// Non-null when ServerOptions::monitor is set. Exposed so operators
  /// (and chaos suites) can invalidate the cache on weight/config
  /// changes and read the monitoring counters.
  Monitor* monitor() { return monitor_.get(); }
  const Monitor* monitor() const { return monitor_.get(); }
  std::size_t queue_depth() const { return queue_.size(); }
  const ServerOptions& options() const { return opt_; }
  ServerStats& stats() { return stats_; }
  const ServerStats& stats() const { return stats_; }
  double uptime_s() const;
  /// ServerStats::json with live queue depth and uptime filled in.
  std::string stats_json() const;

 private:
  void batcher_loop();
  void execute_batch(std::vector<RequestPtr> batch);
  static void respond(RequestPtr req, DiagnoseResponse r);

  ServerOptions opt_;
  SessionRegistry registry_;
  std::unique_ptr<Monitor> monitor_;  ///< null unless opt_.monitor
  ServerStats stats_;
  BoundedQueue<RequestPtr> queue_;
  DynamicBatcher batcher_;
  WorkerPool pool_;
  std::thread batcher_thread_;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex shutdown_mu_;
  bool shut_down_ = false;
  Clock::time_point start_time_;
};

}  // namespace ccovid::serve
