#include "serve/shard.h"

#include <unistd.h>

#include <chrono>
#include <deque>
#include <stdexcept>
#include <utility>

#include "core/digest.h"
#include "fault/failpoint.h"
#include "net/socket.h"
#include "trace/trace.h"

namespace ccovid::serve {

using net::CommError;
using net::Frame;
using net::FrameType;

namespace {

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

DiagnoseResponse from_shard(const ShardResponse& sr) {
  DiagnoseResponse r;
  r.status = sr.status;
  r.diagnosis.probability = sr.probability;
  r.diagnosis.positive = sr.positive;
  r.diagnosis.threshold = sr.threshold;
  r.stages.prepare_s = sr.prepare_s;
  r.stages.enhance_s = sr.enhance_s;
  r.stages.segment_s = sr.segment_s;
  r.stages.classify_s = sr.classify_s;
  r.execute_s = sr.execute_s;
  r.request_id = sr.request_id;
  r.error = sr.error;
  r.degraded = sr.degraded;
  r.retries = sr.retries;
  r.infection_burden = sr.infection_burden;
  r.diagnosis.infection_burden = sr.infection_burden;
  r.burden_delta = sr.burden_delta;
  r.baseline_delta = sr.baseline_delta;
  r.scan_seq = sr.scan_seq;
  r.cache_hit = sr.cache_hit;
  return r;
}

ShardResponse to_shard(std::uint64_t request_id, const DiagnoseResponse& r) {
  ShardResponse sr;
  sr.request_id = request_id;
  sr.status = r.status;
  sr.degraded = r.degraded;
  sr.retries = r.retries;
  sr.probability = r.diagnosis.probability;
  sr.positive = r.diagnosis.positive;
  sr.threshold = r.diagnosis.threshold;
  sr.prepare_s = r.stages.prepare_s;
  sr.enhance_s = r.stages.enhance_s;
  sr.segment_s = r.stages.segment_s;
  sr.classify_s = r.stages.classify_s;
  sr.execute_s = r.execute_s;
  sr.infection_burden = r.infection_burden;
  sr.burden_delta = r.burden_delta;
  sr.baseline_delta = r.baseline_delta;
  sr.scan_seq = r.scan_seq;
  sr.cache_hit = r.cache_hit;
  sr.error = r.error;
  return sr;
}

}  // namespace

std::uint32_t route_shard(std::uint64_t patient_id, int shards) {
  const std::uint64_t h = fnv1a64(&patient_id, sizeof(patient_id));
  return static_cast<std::uint32_t>(h % static_cast<std::uint64_t>(shards));
}

// ------------------------------------------------------- front door

struct FrontDoor::Pending {
  std::uint64_t id = 0;
  ShardRequest req;  ///< retained so failover can re-send it verbatim
  Clock::time_point submit;
  std::promise<DiagnoseResponse> promise;
  std::atomic<bool> done{false};
  int failovers = 0;  ///< touched only by the thread that owns dispatch
};

struct FrontDoor::ShardConn {
  std::unique_ptr<net::Transport> t;
  std::thread rx;
  std::atomic<bool> alive{true};
  std::uint32_t pid = 0;
  /// Guards inflight; mutable so stats_json (const) can snapshot depth.
  mutable std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> inflight;
  ShardCounters counters;
  std::atomic<std::uint64_t> hb_nonce{0};
  /// Heartbeats sent since the last ack (0 = healthy).
  std::atomic<int> hb_outstanding{0};
};

FrontDoor::FrontDoor(std::vector<std::unique_ptr<net::Transport>> workers,
                     FrontDoorOptions opt)
    : opt_(opt) {
  if (workers.empty()) {
    throw std::invalid_argument("FrontDoor: need at least one worker");
  }
  const int n = static_cast<int>(workers.size());
  conns_.reserve(workers.size());
  for (auto& t : workers) {
    auto conn = std::make_unique<ShardConn>();
    conn->t = std::move(t);
    conns_.push_back(std::move(conn));
  }
  // Handshake every shard before any thread starts: a worker that can't
  // say hello within the recv timeout fails construction typed rather
  // than surfacing later as routing errors.
  for (int i = 0; i < n; ++i) {
    auto& c = *conns_[i];
    TRACE_SPAN_ID("shard.handshake", static_cast<std::uint64_t>(i));
    HelloMsg hello;
    hello.shard_id = static_cast<std::uint32_t>(i);
    hello.shard_count = static_cast<std::uint32_t>(n);
    c.t->send(FrameType::kHello, encode(hello));
    Frame f = c.t->recv(opt_.recv_timeout_s);
    if (f.type != FrameType::kHelloAck) {
      throw CommError(CommError::Kind::kCorrupt, 0, i,
                      std::string("handshake: expected hello_ack, got ") +
                          net::to_string(f.type));
    }
    c.pid = decode_hello_ack(f.payload).pid;
  }
  for (int i = 0; i < n; ++i) {
    conns_[i]->rx = std::thread(&FrontDoor::rx_loop, this, i);
  }
  heartbeat_thread_ = std::thread(&FrontDoor::heartbeat_loop, this);
}

FrontDoor::~FrontDoor() { shutdown(); }

bool FrontDoor::resolve(Pending& pending, DiagnoseResponse r) {
  if (pending.done.exchange(true)) return false;
  // exchange() above guarantees exactly-once, so a monitored scan's
  // burden lands in the authoritative record exactly once — failover
  // twins can never double-advance a patient's history.
  if (opt_.monitor && pending.req.patient_id != 0 &&
      r.status == RequestStatus::kOk && r.scan_seq > 0) {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    MonitorRecord& rec = monitor_sessions_[pending.req.patient_id];
    if (rec.completed == 0) rec.baseline_burden = r.infection_burden;
    rec.prev_burden = r.infection_burden;
    ++rec.completed;
  }
  r.total_s = since(pending.submit);
  total_.record(r.total_s);
  pending.promise.set_value(std::move(r));
  return true;
}

std::future<DiagnoseResponse> FrontDoor::submit(std::uint64_t patient_id,
                                                const Tensor& volume_hu,
                                                ServeOptions options) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Monitoring: number this scan and attach the patient's completed
  // prior burdens BEFORE the request is encoded — the triple rides the
  // wire bytes, so a failover re-send is byte-identical and the deltas
  // a fresh worker computes are bit-identical to the dead worker's.
  if (opt_.monitor && patient_id != 0) {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    MonitorRecord& rec = monitor_sessions_[patient_id];
    options.patient_id = patient_id;
    options.monitor_seq = ++rec.assigned;
    if (rec.completed > 0) {
      options.has_prior = true;
      options.prior_burden = rec.prev_burden;
      options.baseline_burden = rec.baseline_burden;
    }
  }
  auto p = std::make_shared<Pending>();
  p->id = id;
  p->submit = Clock::now();
  p->req = ShardRequest::from_volume(id, patient_id, volume_hu, options);
  auto fut = p->promise.get_future();
  TRACE_SPAN_ID("shard.route", id);
  dispatch(std::move(p), static_cast<int>(route_shard(patient_id, shards())));
  return fut;
}

void FrontDoor::dispatch(std::shared_ptr<Pending> pending, int preferred) {
  const int n = shards();
  for (int k = 0; k < n; ++k) {
    const int s = (preferred + k) % n;
    auto& c = *conns_[s];
    if (!c.alive.load(std::memory_order_acquire)) continue;
    {
      // Register before sending so a response can never race past its
      // own bookkeeping; re-check aliveness under the lock so we never
      // insert into a shard fail_shard has already drained.
      std::lock_guard<std::mutex> lock(c.mu);
      if (!c.alive.load(std::memory_order_acquire)) continue;
      c.inflight[pending->id] = pending;
    }
    c.counters.routed.fetch_add(1, std::memory_order_relaxed);
    try {
      c.t->send(FrameType::kRequest, encode(pending->req));
      return;
    } catch (const CommError& e) {
      bool owned;
      {
        std::lock_guard<std::mutex> lock(c.mu);
        owned = c.inflight.erase(pending->id) > 0;
      }
      fail_shard(s, std::string("send failed: ") + e.what());
      // If another thread's fail_shard drained our entry first, it owns
      // the re-dispatch — bail to avoid routing the request twice.
      if (!owned) return;
      c.counters.failed_over.fetch_add(1, std::memory_order_relaxed);
      if (++pending->failovers > opt_.max_failovers) break;
    }
  }
  DiagnoseResponse r;
  r.status = RequestStatus::kError;
  r.request_id = pending->id;
  r.error = alive_shards() == 0 ? "no live shards"
                                : "failover budget exhausted (" +
                                      std::to_string(pending->failovers) +
                                      " attempts)";
  if (resolve(*pending, std::move(r))) {
    conns_[preferred % n]->counters.failed.fetch_add(
        1, std::memory_order_relaxed);
  }
}

void FrontDoor::fail_shard(int shard, const std::string& why) {
  auto& c = *conns_[shard];
  bool expected = true;
  if (!c.alive.compare_exchange_strong(expected, false)) return;
  TRACE_INSTANT_ID("shard.dead", static_cast<std::uint64_t>(shard));
  c.t->close();
  std::vector<std::shared_ptr<Pending>> orphans;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    orphans.reserve(c.inflight.size());
    for (auto& [id, p] : c.inflight) orphans.push_back(p);
    c.inflight.clear();
  }
  for (auto& p : orphans) {
    if (p->done.load(std::memory_order_acquire)) continue;
    c.counters.failed_over.fetch_add(1, std::memory_order_relaxed);
    if (++p->failovers > opt_.max_failovers) {
      DiagnoseResponse r;
      r.status = RequestStatus::kError;
      r.request_id = p->id;
      r.error = "shard " + std::to_string(shard) + " died (" + why +
                "); failover budget exhausted";
      if (resolve(*p, std::move(r))) {
        c.counters.failed.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    TRACE_INSTANT_ID("shard.failover", p->id);
    dispatch(p, (shard + 1) % shards());
  }
}

void FrontDoor::rx_loop(int shard) {
  auto& c = *conns_[shard];
  while (running_.load(std::memory_order_acquire)) {
    std::optional<Frame> f;
    try {
      f = c.t->recv_for(0.05);
    } catch (const CommError& e) {
      // Corrupt / out-of-sequence inbound traffic means the connection
      // can no longer be trusted — treat like a death, fail over.
      fail_shard(shard, e.what());
      return;
    }
    if (!f) {
      if (!c.t->open()) {
        if (!draining_.load(std::memory_order_acquire)) {
          fail_shard(shard, "connection closed by worker");
        }
        return;
      }
      continue;
    }
    switch (f->type) {
      case FrameType::kResponse: {
        ShardResponse sr;
        try {
          sr = decode_response(f->payload);
        } catch (const CommError& e) {
          fail_shard(shard, e.what());
          return;
        }
        std::shared_ptr<Pending> p;
        {
          std::lock_guard<std::mutex> lock(c.mu);
          auto it = c.inflight.find(sr.request_id);
          if (it != c.inflight.end()) {
            p = it->second;
            c.inflight.erase(it);
          }
        }
        // Unknown id: a late response for a request that already failed
        // over — its twin resolves (or resolved) it, drop this copy.
        if (!p) break;
        if (resolve(*p, from_shard(sr))) {
          auto& ctr = sr.status == RequestStatus::kOk ? c.counters.completed
                                                      : c.counters.failed;
          ctr.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case FrameType::kHeartbeatAck:
        c.hb_outstanding.store(0, std::memory_order_release);
        break;
      default:
        break;
    }
  }
}

void FrontDoor::heartbeat_loop() {
  const auto interval =
      std::chrono::duration<double>(opt_.heartbeat_interval_s);
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    if (!running_.load(std::memory_order_acquire)) break;
    for (int s = 0; s < shards(); ++s) {
      auto& c = *conns_[s];
      if (!c.alive.load(std::memory_order_acquire)) continue;
      const int outstanding = c.hb_outstanding.fetch_add(1) + 1;
      if (outstanding > 1) {
        c.counters.heartbeat_misses.fetch_add(1, std::memory_order_relaxed);
        TRACE_INSTANT_ID("shard.heartbeat_miss", static_cast<std::uint64_t>(s));
      }
      if (outstanding > opt_.heartbeat_miss_limit) {
        fail_shard(s, "heartbeat: " + std::to_string(outstanding - 1) +
                          " consecutive misses");
        continue;
      }
      HeartbeatMsg hb;
      hb.nonce = c.hb_nonce.fetch_add(1) + 1;
      try {
        c.t->send(FrameType::kHeartbeat, encode(hb));
      } catch (const CommError& e) {
        fail_shard(s, std::string("heartbeat send: ") + e.what());
      }
    }
  }
}

void FrontDoor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  draining_.store(true, std::memory_order_release);
  // Graceful: ask live workers to drain, then let the rx threads keep
  // collecting responses until the in-flight set empties (bounded).
  for (auto& cp : conns_) {
    if (!cp->alive.load(std::memory_order_acquire)) continue;
    try {
      cp->t->send(FrameType::kShutdown);
    } catch (const CommError&) {
      // Dead anyway; the rx loop will notice and fail over.
    }
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opt_.recv_timeout_s));
  auto inflight_total = [&] {
    std::size_t n = 0;
    for (auto& cp : conns_) {
      std::lock_guard<std::mutex> lock(cp->mu);
      n += cp->inflight.size();
    }
    return n;
  };
  while (Clock::now() < deadline && inflight_total() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  running_.store(false, std::memory_order_release);
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  for (auto& cp : conns_) cp->t->close();
  for (auto& cp : conns_) {
    if (cp->rx.joinable()) cp->rx.join();
  }
  // Anything still unresolved fails typed — never silently lost.
  for (auto& cp : conns_) {
    std::vector<std::shared_ptr<Pending>> left;
    {
      std::lock_guard<std::mutex> lock(cp->mu);
      for (auto& [id, p] : cp->inflight) left.push_back(p);
      cp->inflight.clear();
    }
    for (auto& p : left) {
      DiagnoseResponse r;
      r.status = RequestStatus::kShutdown;
      r.request_id = p->id;
      r.error = "front door shut down before the response arrived";
      if (resolve(*p, std::move(r))) {
        cp->counters.failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

int FrontDoor::alive_shards() const {
  int n = 0;
  for (auto& cp : conns_) n += cp->alive.load(std::memory_order_acquire);
  return n;
}

std::size_t FrontDoor::monitor_patients() const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return monitor_sessions_.size();
}

std::uint64_t FrontDoor::failed_over() const {
  std::uint64_t n = 0;
  for (auto& cp : conns_) {
    n += cp->counters.failed_over.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t FrontDoor::heartbeat_misses() const {
  std::uint64_t n = 0;
  for (auto& cp : conns_) {
    n += cp->counters.heartbeat_misses.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint32_t FrontDoor::worker_pid(int shard) const {
  return conns_[static_cast<std::size_t>(shard)]->pid;
}

std::string FrontDoor::stats_json() const {
  std::uint64_t routed = 0, completed = 0, failed = 0;
  for (auto& cp : conns_) {
    routed += cp->counters.routed.load(std::memory_order_relaxed);
    completed += cp->counters.completed.load(std::memory_order_relaxed);
    failed += cp->counters.failed.load(std::memory_order_relaxed);
  }
  std::string out = "{\"role\":\"front\"";
  out += ",\"shards\":" + std::to_string(shards());
  out += ",\"alive\":" + std::to_string(alive_shards());
  out += ",\"routed\":" + std::to_string(routed);
  out += ",\"completed\":" + std::to_string(completed);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"failed_over\":" + std::to_string(failed_over());
  out += ",\"heartbeat_misses\":" + std::to_string(heartbeat_misses());
  if (opt_.monitor) {
    out += ",\"monitor_patients\":" + std::to_string(monitor_patients());
  }
  out += ",";
  append_histogram_json(out, "total", total_);
  out += ",\"per_shard\":[";
  for (int s = 0; s < shards(); ++s) {
    const auto& c = *conns_[s];
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(c.mu);
      depth = c.inflight.size();
    }
    if (s > 0) out += ",";
    out += "{\"shard\":" + std::to_string(s);
    out += ",\"alive\":" +
           std::string(c.alive.load(std::memory_order_acquire) ? "true"
                                                               : "false");
    out += ",\"pid\":" + std::to_string(c.pid);
    out += ",\"routed\":" +
           std::to_string(c.counters.routed.load(std::memory_order_relaxed));
    out += ",\"completed\":" +
           std::to_string(c.counters.completed.load(std::memory_order_relaxed));
    out += ",\"failed\":" +
           std::to_string(c.counters.failed.load(std::memory_order_relaxed));
    out += ",\"failed_over\":" +
           std::to_string(
               c.counters.failed_over.load(std::memory_order_relaxed));
    out += ",\"heartbeat_misses\":" +
           std::to_string(
               c.counters.heartbeat_misses.load(std::memory_order_relaxed));
    out += ",\"inflight\":" + std::to_string(depth);
    out += ",\"frames_sent\":" + std::to_string(c.t->frames_sent());
    out += ",\"frames_received\":" + std::to_string(c.t->frames_received());
    out += ",\"bytes_sent\":" + std::to_string(c.t->bytes_sent());
    out += ",\"bytes_received\":" + std::to_string(c.t->bytes_received());
    out += "}";
  }
  out += "]";
  const std::string fp = fault::Registry::instance().json();
  if (fp != "{}") out += ",\"failpoints\":" + fp;
  out += "}";
  return out;
}

// ----------------------------------------------------------- worker

WorkerRunStats run_shard_worker(
    net::Transport& transport,
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
    const ShardWorkerOptions& opt) {
  WorkerRunStats st;

  // Handshake: the front door speaks first.
  std::optional<Frame> hf;
  try {
    hf = transport.recv_for(opt.recv_timeout_s);
  } catch (const CommError&) {
    return st;
  }
  if (!hf || hf->type != FrameType::kHello) return st;
  HelloAckMsg ack;
  try {
    ack.shard_id = decode_hello(hf->payload).shard_id;
  } catch (const CommError&) {
    return st;
  }
  ack.pid = static_cast<std::uint32_t>(::getpid());
  try {
    transport.send(FrameType::kHelloAck, encode(ack));
  } catch (const CommError&) {
    return st;
  }

  InferenceServer server(std::move(pipeline), opt.server);
  // FIFO of submitted-but-unanswered requests. The protocol loop only
  // submits and forwards — the InferenceServer's own threads execute —
  // so heartbeats keep flowing while batches run.
  std::deque<std::pair<std::uint64_t, std::future<DiagnoseResponse>>> inflight;
  bool draining = false;
  bool dead = false;

  auto flush_ready = [&]() -> bool {
    while (!inflight.empty() &&
           inflight.front().second.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      const std::uint64_t id = inflight.front().first;
      DiagnoseResponse r = inflight.front().second.get();
      inflight.pop_front();
      try {
        transport.send(FrameType::kResponse, encode(to_shard(id, r)));
      } catch (const CommError&) {
        return false;
      }
    }
    return true;
  };

  while (!dead) {
    if (!flush_ready()) break;
    if (draining && inflight.empty()) {
      st.exit = WorkerExit::kShutdown;
      break;
    }
    std::optional<Frame> f;
    try {
      // Tick fast while responses are pending so they forward promptly.
      f = transport.recv_for(inflight.empty() && !draining ? 0.05 : 0.005);
    } catch (const CommError&) {
      // Corrupt inbound traffic: abandon the connection; the front door
      // sees EOF / silence and fails our in-flight work over.
      break;
    }
    if (!f) {
      if (!transport.open()) break;
      continue;
    }
    switch (f->type) {
      case FrameType::kRequest: {
        TRACE_SPAN("shard.worker.request");
        ShardRequest rq;
        try {
          rq = decode_request(f->payload);
        } catch (const CommError&) {
          dead = true;
          break;
        }
        ServeOptions so;
        so.use_enhancement = rq.use_enhancement;
        so.threshold = rq.threshold;
        so.patient_id = rq.patient_id;
        so.monitor_seq = rq.monitor_seq;
        so.has_prior = rq.has_prior;
        so.prior_burden = rq.prior_burden;
        so.baseline_burden = rq.baseline_burden;
        inflight.emplace_back(rq.request_id,
                              server.submit(rq.to_tensor(), so));
        ++st.served;
        break;
      }
      case FrameType::kHeartbeat: {
        ++st.heartbeats;
        try {
          transport.send(FrameType::kHeartbeatAck, std::move(f->payload));
        } catch (const CommError&) {
          dead = true;
        }
        break;
      }
      case FrameType::kShutdown:
        draining = true;
        break;
      default:
        break;
    }
  }

  // Resolve whatever is still queued; forward best-effort (the peer may
  // already be gone — its failover machinery covers those requests).
  for (auto& [id, fut] : inflight) {
    DiagnoseResponse r = fut.get();
    if (!transport.open()) continue;
    try {
      transport.send(FrameType::kResponse, encode(to_shard(id, r)));
    } catch (const CommError&) {
    }
  }
  server.shutdown();
  return st;
}

std::uint64_t run_worker_listener(
    net::SocketListener& listener,
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
    const ShardWorkerOptions& opt, double accept_timeout_s) {
  std::uint64_t total = 0;
  for (;;) {
    std::unique_ptr<net::SocketTransport> t =
        listener.accept_for(accept_timeout_s);
    if (!t) return total;  // no front door within the window — give up
    const WorkerRunStats st = run_shard_worker(*t, pipeline, opt);
    total += st.served;
    if (st.exit == WorkerExit::kShutdown) return total;
    // Disconnect (front-door death or restart): re-accept and serve the
    // next incarnation with the same warmed pipeline.
  }
}

}  // namespace ccovid::serve
