// Sharded multi-process serving runtime — the step from "fast binary"
// to "deployable service" (ROADMAP item 2).
//
//   FrontDoor ──┬── Transport ──► worker 0 (own process, InferenceServer)
//   (routing,   ├── Transport ──► worker 1
//    health,    └── ...
//    failover)
//
// The front door accepts diagnosis submissions, hash-routes each
// patient to one of N workers over a net::Transport (Unix/TCP sockets
// across processes, or in-process channel pairs in tests), health-
// checks workers with heartbeats, and fails in-flight requests over to
// surviving shards when a worker dies — the PR 2 retry machinery lifted
// to the routing layer. Routing is by patient id, so a patient's
// follow-up scans land on the same shard while it lives (the
// monitoring-mode affinity ROADMAP item 5b needs).
//
// Failover state machine (per shard connection):
//
//   ALIVE ──(heartbeat miss < limit)──► SUSPECT ──(ack)──► ALIVE
//     │                                    │
//     │ EOF / CommError on rx              │ miss >= limit
//     ▼                                    ▼
//   DEAD: close transport, take the shard's in-flight requests, and
//         re-dispatch each to the next live shard (failovers budget
//         per request); when no shard is alive, fail them typed.
//
// Every submitted request resolves exactly once: completed by a worker,
// failed over and completed elsewhere, or failed with a typed status —
// never lost, never hung (the chaos suites' core invariant).
//
// Determinism: workers built from the same seed hold bitwise-identical
// weights, and the pipeline is deterministic, so a request produces the
// same probability bits on WHICHEVER shard executes it — routing and
// failover are invisible in the outputs, which is what makes the
// sharded path's results comparable against the single-process baseline
// in BENCH_shard.json.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/transport.h"
#include "serve/server.h"
#include "serve/shard_proto.h"
#include "serve/stats.h"

namespace ccovid::serve {

// ------------------------------------------------------- front door

struct FrontDoorOptions {
  /// Handshake + control-plane receive budget. Defaults from
  /// CCOVID_RECV_TIMEOUT (see net/error.h); --recv-timeout overrides.
  double recv_timeout_s = net::default_recv_timeout_s();
  double heartbeat_interval_s = 0.25;
  /// Consecutive unanswered heartbeats before a shard is declared dead.
  int heartbeat_miss_limit = 4;
  /// Per-request re-route budget after worker deaths; exhausting it
  /// fails the request typed instead of bouncing forever.
  int max_failovers = 2;
  /// Longitudinal monitoring: the front door becomes the AUTHORITY for
  /// per-patient scan ordinals and prior burdens. Each submit for a
  /// patient is numbered here and carries (seq, prev burden, baseline
  /// burden) in the wire request, so a failover re-send to a fresh
  /// worker reproduces the exact same deltas — worker state is only a
  /// cache. Requires sequential submission per patient (a follow-up
  /// scan is submitted after its predecessor resolved), which is the
  /// clinical reality monitoring models.
  bool monitor = false;
};

/// Per-shard routing/health counters (all monotonic; see stats_json).
struct ShardCounters {
  std::atomic<std::uint64_t> routed{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> failed_over{0};  ///< in-flight moved OFF this shard
  std::atomic<std::uint64_t> heartbeat_misses{0};
};

class FrontDoor {
 public:
  /// Takes ownership of one connected transport per shard and performs
  /// the hello/ack handshake on each (throws net::CommError when a
  /// worker does not answer). Call sites connect/spawn the workers —
  /// see shard_spawn.h and tools/ccovid_serve.cpp.
  FrontDoor(std::vector<std::unique_ptr<net::Transport>> workers,
            FrontDoorOptions opt);
  ~FrontDoor();
  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Routes one volume to shard hash(patient_id) % N (next live shard
  /// when that one is dead). Always returns a valid future; worker
  /// death after dispatch triggers failover, and exhausted failover
  /// surfaces as RequestStatus::kError.
  std::future<DiagnoseResponse> submit(std::uint64_t patient_id,
                                       const Tensor& volume_hu,
                                       ServeOptions options = {});

  /// Graceful: asks live workers to drain (kShutdown), waits for
  /// in-flight responses up to the recv timeout, fails stragglers
  /// typed, joins all threads. Idempotent; also run by the destructor.
  void shutdown();

  int shards() const { return static_cast<int>(conns_.size()); }
  int alive_shards() const;
  /// Patients the front door holds an authoritative session record for
  /// (0 unless FrontDoorOptions::monitor).
  std::size_t monitor_patients() const;
  std::uint64_t failed_over() const;
  std::uint64_t heartbeat_misses() const;
  /// Worker pid from the handshake (0 for in-process workers).
  std::uint32_t worker_pid(int shard) const;

  /// Routing-layer stats JSON: aggregate counters, end-to-end latency
  /// histogram, and a per-shard array (routed / completed / failed /
  /// failed_over / heartbeat_misses / alive / pid / frame counts) —
  /// the surface the bench gate and chaos suites assert on. Armed
  /// failpoint counters ride along like InferenceServer::stats_json.
  std::string stats_json() const;

 private:
  struct Pending;
  struct ShardConn;

  /// Authoritative per-patient monitoring record (see
  /// FrontDoorOptions::monitor). `assigned` is the last ordinal handed
  /// out at submit; `completed` counts scans whose burden came back, and
  /// prev/baseline hold those completed burdens' bits.
  struct MonitorRecord {
    std::uint64_t assigned = 0;
    std::uint64_t completed = 0;
    double baseline_burden = 0.0;
    double prev_burden = 0.0;
  };

  void rx_loop(int shard);
  void heartbeat_loop();
  void fail_shard(int shard, const std::string& why);
  /// Dispatches to the first live shard at or after `preferred`;
  /// resolves the promise typed when none is left or the failover
  /// budget is exhausted.
  void dispatch(std::shared_ptr<Pending> pending, int preferred);
  /// Fulfils the promise exactly once; false when already resolved.
  bool resolve(Pending& pending, DiagnoseResponse r);

  FrontDoorOptions opt_;
  std::vector<std::unique_ptr<ShardConn>> conns_;
  std::thread heartbeat_thread_;
  std::atomic<bool> running_{true};
  /// Set when shutdown begins: workers closing their side is then the
  /// expected drain, not a death (no failover, shard stays "alive").
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex monitor_mu_;
  std::unordered_map<std::uint64_t, MonitorRecord> monitor_sessions_;
  LatencyHistogram total_;  ///< submit -> resolve, across all shards
  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

// ----------------------------------------------------------- worker

struct ShardWorkerOptions {
  ServerOptions server;  ///< the wrapped InferenceServer's knobs
  /// Handshake receive budget; defaults from CCOVID_RECV_TIMEOUT.
  double recv_timeout_s = net::default_recv_timeout_s();
};

enum class WorkerExit {
  kShutdown,    ///< front door sent kShutdown; drained and exited
  kDisconnect,  ///< transport closed or corrupted mid-serve
};

struct WorkerRunStats {
  WorkerExit exit = WorkerExit::kDisconnect;
  std::uint64_t served = 0;
  std::uint64_t heartbeats = 0;
};

/// Serves one front-door connection: handshake (hello/ack), then
/// multiplex kRequest submissions into a local InferenceServer,
/// kHeartbeat echoes, and response sends until kShutdown (drain first)
/// or disconnect. The protocol loop never executes a diagnosis itself —
/// the InferenceServer's batcher/worker threads do — so heartbeats stay
/// answered while batches run.
WorkerRunStats run_shard_worker(
    net::Transport& transport,
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
    const ShardWorkerOptions& opt);

/// Listen-mode worker: accept a front door, serve it, and re-accept
/// when the connection drops (front-door restart) until a kShutdown
/// arrives or `accept_timeout_s` passes with no front door. Returns
/// total requests served.
std::uint64_t run_worker_listener(
    net::SocketListener& listener,
    std::shared_ptr<const pipeline::ComputeCovid19Pipeline> pipeline,
    const ShardWorkerOptions& opt, double accept_timeout_s = 30.0);

/// FNV-1a routing hash (exposed so tests can predict shard targets).
std::uint32_t route_shard(std::uint64_t patient_id, int shards);

}  // namespace ccovid::serve
