#include "serve/shard_proto.h"

#include <cstring>

namespace ccovid::serve {

using net::CommError;

// ------------------------------------------------------ wire helpers

void WireWriter::u32(std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf.insert(buf.end(), s.begin(), s.end());
}

void WireWriter::reals(const real_t* data, std::size_t n) {
  const std::size_t base = buf.size();
  buf.resize(base + n * sizeof(real_t));
  if (n > 0) std::memcpy(buf.data() + base, data, n * sizeof(real_t));
}

void WireReader::need(std::size_t n) const {
  if (off_ + n > n_) {
    throw CommError(CommError::Kind::kCorrupt, -1, -1,
                    "shard message truncated: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(off_) +
                        " of " + std::to_string(n_));
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return p_[off_++];
}

std::uint32_t WireReader::u32() {
  need(4);
  const std::uint32_t v = static_cast<std::uint32_t>(p_[off_]) |
                          static_cast<std::uint32_t>(p_[off_ + 1]) << 8 |
                          static_cast<std::uint32_t>(p_[off_ + 2]) << 16 |
                          static_cast<std::uint32_t>(p_[off_ + 3]) << 24;
  off_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint64_t lo = u32();
  return lo | static_cast<std::uint64_t>(u32()) << 32;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(p_ + off_), len);
  off_ += len;
  return s;
}

void WireReader::reals(real_t* out, std::size_t n) {
  need(n * sizeof(real_t));
  if (n > 0) std::memcpy(out, p_ + off_, n * sizeof(real_t));
  off_ += n * sizeof(real_t);
}

namespace {

/// Every decoder runs this last: trailing bytes mean a version-skewed
/// or damaged body, not a longer-but-compatible one.
void expect_drained(const WireReader& r, const char* what) {
  if (r.remaining() != 0) {
    throw CommError(CommError::Kind::kCorrupt, -1, -1,
                    std::string(what) + ": " +
                        std::to_string(r.remaining()) +
                        " trailing bytes (version skew?)");
  }
}

void expect_version(std::uint32_t got, const char* what) {
  if (got != kShardProtoVersion) {
    throw CommError(CommError::Kind::kCorrupt, -1, -1,
                    std::string(what) + ": protocol version " +
                        std::to_string(got) + ", expected " +
                        std::to_string(kShardProtoVersion));
  }
}

}  // namespace

// ---------------------------------------------------- message bodies

Tensor ShardRequest::to_tensor() const {
  Tensor t({static_cast<index_t>(depth), static_cast<index_t>(height),
            static_cast<index_t>(width)});
  if (!voxels.empty()) {
    std::memcpy(t.data(), voxels.data(), voxels.size() * sizeof(real_t));
  }
  return t;
}

ShardRequest ShardRequest::from_volume(std::uint64_t request_id,
                                       std::uint64_t patient_id,
                                       const Tensor& volume_hu,
                                       const ServeOptions& opt) {
  ShardRequest req;
  req.request_id = request_id;
  req.patient_id = patient_id;
  req.monitor_seq = opt.monitor_seq;
  req.has_prior = opt.has_prior;
  req.prior_burden = opt.prior_burden;
  req.baseline_burden = opt.baseline_burden;
  req.use_enhancement = opt.use_enhancement;
  req.threshold = opt.threshold;
  req.depth = static_cast<std::uint32_t>(volume_hu.dim(0));
  req.height = static_cast<std::uint32_t>(volume_hu.dim(1));
  req.width = static_cast<std::uint32_t>(volume_hu.dim(2));
  req.voxels.assign(volume_hu.data(),
                    volume_hu.data() + volume_hu.numel());
  return req;
}

std::vector<std::uint8_t> encode(const HelloMsg& m) {
  WireWriter w;
  w.u32(m.proto_version);
  w.u32(m.shard_id);
  w.u32(m.shard_count);
  return std::move(w.buf);
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& p) {
  WireReader r(p.data(), p.size());
  HelloMsg m;
  m.proto_version = r.u32();
  expect_version(m.proto_version, "hello");
  m.shard_id = r.u32();
  m.shard_count = r.u32();
  expect_drained(r, "hello");
  return m;
}

std::vector<std::uint8_t> encode(const HelloAckMsg& m) {
  WireWriter w;
  w.u32(m.proto_version);
  w.u32(m.shard_id);
  w.u32(m.pid);
  return std::move(w.buf);
}

HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p) {
  WireReader r(p.data(), p.size());
  HelloAckMsg m;
  m.proto_version = r.u32();
  expect_version(m.proto_version, "hello_ack");
  m.shard_id = r.u32();
  m.pid = r.u32();
  expect_drained(r, "hello_ack");
  return m;
}

std::vector<std::uint8_t> encode(const ShardRequest& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u64(m.patient_id);
  w.u64(m.monitor_seq);
  w.u8(m.has_prior ? 1 : 0);
  w.f64(m.prior_burden);
  w.f64(m.baseline_burden);
  w.u8(m.use_enhancement ? 1 : 0);
  w.f64(m.threshold);
  w.u32(m.depth);
  w.u32(m.height);
  w.u32(m.width);
  w.reals(m.voxels.data(), m.voxels.size());
  return std::move(w.buf);
}

ShardRequest decode_request(const std::vector<std::uint8_t>& p) {
  WireReader r(p.data(), p.size());
  ShardRequest m;
  m.request_id = r.u64();
  m.patient_id = r.u64();
  m.monitor_seq = r.u64();
  m.has_prior = r.u8() != 0;
  m.prior_burden = r.f64();
  m.baseline_burden = r.f64();
  m.use_enhancement = r.u8() != 0;
  m.threshold = r.f64();
  m.depth = r.u32();
  m.height = r.u32();
  m.width = r.u32();
  const std::uint64_t n = static_cast<std::uint64_t>(m.depth) * m.height *
                          m.width;
  // The voxel count must match both the dims and the remaining bytes —
  // a damaged dim field cannot drive an oversized allocation because
  // the frame payload (and so `p`) is already length-bounded.
  if (n * sizeof(real_t) != r.remaining()) {
    throw CommError(CommError::Kind::kCorrupt, -1, -1,
                    "request voxel payload is " +
                        std::to_string(r.remaining()) + " bytes, dims say " +
                        std::to_string(n * sizeof(real_t)));
  }
  m.voxels.resize(n);
  r.reals(m.voxels.data(), n);
  expect_drained(r, "request");
  return m;
}

std::vector<std::uint8_t> encode(const ShardResponse& m) {
  WireWriter w;
  w.u64(m.request_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u8(m.degraded ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.retries));
  w.f64(m.probability);
  w.u8(m.positive ? 1 : 0);
  w.f64(m.threshold);
  w.f64(m.prepare_s);
  w.f64(m.enhance_s);
  w.f64(m.segment_s);
  w.f64(m.classify_s);
  w.f64(m.execute_s);
  w.f64(m.infection_burden);
  w.f64(m.burden_delta);
  w.f64(m.baseline_delta);
  w.u64(m.scan_seq);
  w.u8(m.cache_hit ? 1 : 0);
  w.str(m.error);
  return std::move(w.buf);
}

ShardResponse decode_response(const std::vector<std::uint8_t>& p) {
  WireReader r(p.data(), p.size());
  ShardResponse m;
  m.request_id = r.u64();
  m.status = static_cast<RequestStatus>(r.u8());
  m.degraded = r.u8() != 0;
  m.retries = static_cast<std::int32_t>(r.u32());
  m.probability = r.f64();
  m.positive = r.u8() != 0;
  m.threshold = r.f64();
  m.prepare_s = r.f64();
  m.enhance_s = r.f64();
  m.segment_s = r.f64();
  m.classify_s = r.f64();
  m.execute_s = r.f64();
  m.infection_burden = r.f64();
  m.burden_delta = r.f64();
  m.baseline_delta = r.f64();
  m.scan_seq = r.u64();
  m.cache_hit = r.u8() != 0;
  m.error = r.str();
  expect_drained(r, "response");
  return m;
}

std::vector<std::uint8_t> encode(const HeartbeatMsg& m) {
  WireWriter w;
  w.u64(m.nonce);
  return std::move(w.buf);
}

HeartbeatMsg decode_heartbeat(const std::vector<std::uint8_t>& p) {
  WireReader r(p.data(), p.size());
  HeartbeatMsg m;
  m.nonce = r.u64();
  expect_drained(r, "heartbeat");
  return m;
}

}  // namespace ccovid::serve
