// Shard protocol: the message bodies the front door and worker
// processes exchange inside net::Frame payloads. Fixed little-endian
// encodings with bounds-checked decoding — a malformed body (truncated
// by a bug, damaged by a net.frame.* fault that slipped both checksums,
// or sent by a version-skewed peer) throws net::CommError kCorrupt,
// never reads out of bounds.
//
//   kHello        front door -> worker: protocol version, topology,
//                 the shard id this connection serves
//   kHelloAck     worker -> front door: version echo + worker pid (the
//                 pid is what worker-kill chaos targets)
//   kRequest      one diagnosis: patient id, workflow options, volume
//                 dims + raw voxels
//   kResponse     status/diagnosis/stage-times echo of serve's
//                 DiagnoseResponse
//   kHeartbeat(+Ack)  nonce echo — liveness probing
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "net/error.h"
#include "serve/request.h"

namespace ccovid::serve {

// v2: monitoring fields — requests carry the front door's authoritative
// (seq, prior burden, baseline burden) triple so failover re-dispatch
// reproduces deltas bit-for-bit; responses echo burden/delta/seq and
// the cache-hit flag. Version checks are exact: a v1 peer is rejected
// as version skew, never silently mis-parsed.
inline constexpr std::uint32_t kShardProtoVersion = 2;

// ------------------------------------------------------ wire helpers

/// Append-only little-endian encoder.
struct WireWriter {
  std::vector<std::uint8_t> buf;

  void u8(std::uint8_t v) { buf.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);                 ///< u32 length + bytes
  void reals(const real_t* data, std::size_t n);  ///< raw f32 bytes
};

/// Bounds-checked little-endian decoder; overruns throw CommError
/// kCorrupt (attributed to the reading side).
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), n_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  void reals(real_t* out, std::size_t n);
  std::size_t remaining() const { return n_ - off_; }

 private:
  void need(std::size_t n) const;
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------- message bodies

struct HelloMsg {
  std::uint32_t proto_version = kShardProtoVersion;
  std::uint32_t shard_id = 0;     ///< which shard this connection serves
  std::uint32_t shard_count = 1;  ///< topology (worker logs/validates)
};

struct HelloAckMsg {
  std::uint32_t proto_version = kShardProtoVersion;
  std::uint32_t shard_id = 0;
  std::uint32_t pid = 0;  ///< worker process id (0 = in-process worker)
};

struct ShardRequest {
  std::uint64_t request_id = 0;  ///< front-door-scoped correlation id
  std::uint64_t patient_id = 0;  ///< routing key
  // Monitoring (v2): the front door numbers each patient's scans and
  // ships the prior burden values with the request, so the worker's
  // delta computation is a pure function of the request bytes — a
  // failover re-send to a fresh worker reproduces the same deltas.
  std::uint64_t monitor_seq = 0;   ///< this scan's ordinal (0 = untracked)
  bool has_prior = false;
  double prior_burden = 0.0;
  double baseline_burden = 0.0;
  bool use_enhancement = true;
  double threshold = 0.5;
  std::uint32_t depth = 0, height = 0, width = 0;
  std::vector<real_t> voxels;  ///< depth*height*width HU values

  Tensor to_tensor() const;
  static ShardRequest from_volume(std::uint64_t request_id,
                                  std::uint64_t patient_id,
                                  const Tensor& volume_hu,
                                  const ServeOptions& opt);
};

struct ShardResponse {
  std::uint64_t request_id = 0;
  RequestStatus status = RequestStatus::kError;
  bool degraded = false;
  std::int32_t retries = 0;
  double probability = 0.0;
  bool positive = false;
  double threshold = 0.5;
  double prepare_s = 0.0, enhance_s = 0.0, segment_s = 0.0, classify_s = 0.0;
  double execute_s = 0.0;
  // Monitoring (v2): meaningful when scan_seq > 0.
  double infection_burden = 0.0;
  double burden_delta = 0.0;
  double baseline_delta = 0.0;
  std::uint64_t scan_seq = 0;
  bool cache_hit = false;
  std::string error;
};

struct HeartbeatMsg {
  std::uint64_t nonce = 0;
};

std::vector<std::uint8_t> encode(const HelloMsg& m);
std::vector<std::uint8_t> encode(const HelloAckMsg& m);
std::vector<std::uint8_t> encode(const ShardRequest& m);
std::vector<std::uint8_t> encode(const ShardResponse& m);
std::vector<std::uint8_t> encode(const HeartbeatMsg& m);

/// Decoders throw net::CommError(kCorrupt) on truncated / overlong /
/// version-skewed bodies.
HelloMsg decode_hello(const std::vector<std::uint8_t>& p);
HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p);
ShardRequest decode_request(const std::vector<std::uint8_t>& p);
ShardResponse decode_response(const std::vector<std::uint8_t>& p);
HeartbeatMsg decode_heartbeat(const std::vector<std::uint8_t>& p);

}  // namespace ccovid::serve
