#include "serve/shard_spawn.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace ccovid::serve {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    throw std::runtime_error(std::string("readlink(/proc/self/exe): ") +
                             std::strerror(errno));
  }
  return std::string(buf, static_cast<std::size_t>(n));
}

int spawn_process(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::invalid_argument("spawn_process: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // exec only returns on failure; exit hard without running parent
    // destructors/atexit handlers in the forked image.
    ::_exit(127);
  }
  return static_cast<int>(pid);
}

bool kill_process(int pid, int sig) {
  return ::kill(static_cast<pid_t>(pid), sig) == 0;
}

int wait_process(int pid, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
    if (r == static_cast<pid_t>(pid)) return status;
    if (r < 0) return -1;  // no such child (already reaped?)
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace ccovid::serve
