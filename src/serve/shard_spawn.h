// Worker process lifecycle for the sharded front door: fork/exec this
// binary (or any binary) with a worker-role argv, kill it (the chaos
// suites' worker-kill primitive), and reap it. Thin POSIX wrappers kept
// out of shard.h so the routing layer stays transport-only.
#pragma once

#include <string>
#include <vector>

namespace ccovid::serve {

/// Absolute path of the running executable (/proc/self/exe), for
/// respawning ourselves in a different role.
std::string self_exe_path();

/// fork + execv. argv[0] is the binary path. Returns the child pid;
/// throws std::runtime_error when fork fails. An exec failure surfaces
/// as the child exiting 127 (observed via wait_process).
int spawn_process(const std::vector<std::string>& argv);

/// Sends `sig` (e.g. SIGKILL for worker-kill chaos). False when the
/// process is already gone.
bool kill_process(int pid, int sig);

/// Reaps the child, polling up to `timeout_s`. Returns the raw waitpid
/// status, or -1 when the child did not exit within the window.
int wait_process(int pid, double timeout_s);

}  // namespace ccovid::serve
