#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ccovid::serve {

namespace {

constexpr double kBase = 1e-6;   // first bucket lower bound: 1 µs
constexpr double kRatio = 1.25;  // geometric bucket growth

std::uint64_t to_ns(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<std::uint64_t>(seconds * 1e9);
}

void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int LatencyHistogram::bucket_of(double seconds) {
  if (seconds <= kBase) return 0;
  const int b =
      static_cast<int>(std::log(seconds / kBase) / std::log(kRatio)) + 1;
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::bucket_lower(int b) {
  return b == 0 ? 0.0 : kBase * std::pow(kRatio, b - 1);
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  buckets_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ns = to_ns(seconds);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
}

double LatencyHistogram::min_seconds() const {
  const std::uint64_t ns = min_ns_.load(std::memory_order_relaxed);
  return ns == UINT64_MAX ? 0.0 : 1e-9 * static_cast<double>(ns);
}

double LatencyHistogram::max_seconds() const {
  return 1e-9 * static_cast<double>(max_ns_.load(std::memory_order_relaxed));
}

double LatencyHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank && seen > 0) {
      const double lo = std::max(bucket_lower(b), min_seconds());
      const double hi = b + 1 < kBuckets
                            ? std::min(bucket_lower(b + 1), max_seconds())
                            : max_seconds();
      if (lo <= 0.0) return hi;
      return std::sqrt(lo * std::max(hi, lo));  // geometric midpoint
    }
  }
  return max_seconds();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  atomic_min(min_ns_, other.min_ns_.load(std::memory_order_relaxed));
  atomic_max(max_ns_, other.max_ns_.load(std::memory_order_relaxed));
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void ServerStats::reset() {
  submitted = admitted = rejected_queue_full = rejected_shutdown = 0;
  timed_out = completed = failed = retried = degraded = 0;
  batches = batched_volumes = 0;
  queue_wait.reset();
  execute.reset();
  total.reset();
  prepare.reset();
  enhance.reset();
  segment.reset();
  classify.reset();
  stage_totals.reset();
}

void append_histogram_json(std::string& out, const char* name,
                           const LatencyHistogram& h) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"mean_s\":%.6f,\"p50_s\":%.6f,"
                "\"p95_s\":%.6f,\"p99_s\":%.6f,\"max_s\":%.6f}",
                name, static_cast<unsigned long long>(h.count()),
                h.mean_seconds(), h.quantile(0.50), h.quantile(0.95),
                h.quantile(0.99), h.max_seconds());
  out += buf;
}

std::string ServerStats::json(std::size_t queue_depth,
                              double uptime_s) const {
  char buf[768];
  std::string out = "{";
  std::snprintf(
      buf, sizeof(buf),
      "\"submitted\":%llu,\"admitted\":%llu,\"rejected_queue_full\":%llu,"
      "\"rejected_shutdown\":%llu,\"timed_out\":%llu,\"completed\":%llu,"
      "\"failed\":%llu,\"retried\":%llu,\"degraded\":%llu,"
      "\"batches\":%llu,\"batched_volumes\":%llu,"
      "\"mean_batch_size\":%.3f,\"queue_depth\":%zu,\"uptime_s\":%.3f,"
      "\"throughput_vps\":%.3f,",
      static_cast<unsigned long long>(submitted.load()),
      static_cast<unsigned long long>(admitted.load()),
      static_cast<unsigned long long>(rejected_queue_full.load()),
      static_cast<unsigned long long>(rejected_shutdown.load()),
      static_cast<unsigned long long>(timed_out.load()),
      static_cast<unsigned long long>(completed.load()),
      static_cast<unsigned long long>(failed.load()),
      static_cast<unsigned long long>(retried.load()),
      static_cast<unsigned long long>(degraded.load()),
      static_cast<unsigned long long>(batches.load()),
      static_cast<unsigned long long>(batched_volumes.load()),
      batches.load() == 0
          ? 0.0
          : static_cast<double>(batched_volumes.load()) /
                static_cast<double>(batches.load()),
      queue_depth, uptime_s,
      uptime_s > 0.0
          ? static_cast<double>(completed.load()) / uptime_s
          : 0.0);
  out += buf;

  out += "\"latency\":{";
  append_histogram_json(out, "queue_wait", queue_wait);
  out += ",";
  append_histogram_json(out, "execute", execute);
  out += ",";
  append_histogram_json(out, "total", total);
  out += "},\"stages\":{";
  append_histogram_json(out, "prepare", prepare);
  out += ",";
  append_histogram_json(out, "enhance", enhance);
  out += ",";
  append_histogram_json(out, "segment", segment);
  out += ",";
  append_histogram_json(out, "classify", classify);
  out += "},\"stage_totals_s\":{";
  bool first = true;
  for (const auto& [stage, seconds] : stage_totals.totals()) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6f", first ? "" : ",",
                  stage.c_str(), seconds);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace ccovid::serve
