// Observability surface of the serving runtime: lock-free latency
// histograms with quantile extraction, monotonic counters, and a JSON
// snapshot. This is the thread-safe generalization of the benchmark
// harness's KernelProfile/OpCounters machinery (src/core/timer.h,
// src/core/counters.h): KernelProfile (now mutex-guarded) still keeps
// the cumulative per-stage seconds, while LatencyHistogram adds the
// p50/p95/p99 view a server needs and plain atomics count admissions.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "core/timer.h"

namespace ccovid::serve {

/// Geometric-bucket latency histogram: 96 buckets with ratio 1.25
/// starting at 1 µs (~2.1 ks span, <= 25% relative quantile error).
/// record() is wait-free (one atomic add per sample), so worker threads
/// log every request without contending.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 96;

  void record(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const {
    return 1e-9 * static_cast<double>(sum_ns_.load(std::memory_order_relaxed));
  }
  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum_seconds() / static_cast<double>(n);
  }
  double min_seconds() const;
  double max_seconds() const;

  /// Latency at quantile q in [0, 1] (0.5 = p50). Returns the geometric
  /// midpoint of the containing bucket; 0 when empty.
  double quantile(double q) const;

  /// Folds `other`'s samples into this histogram. Per-worker histograms
  /// MUST be merged before quantile extraction — a quantile of
  /// per-worker quantiles is not a quantile of the workload (workers see
  /// different load mixes). Safe against concurrent record() on either
  /// side; the merged view is then a consistent superset snapshot.
  void merge(const LatencyHistogram& other);

  void reset();

 private:
  static int bucket_of(double seconds);
  static double bucket_lower(int b);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Counters + histograms shared by every server thread.
struct ServerStats {
  // Admission accounting.
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  // Resilience accounting: batch execution retries taken, and completed
  // requests served by the degraded (enhancement-off) workflow.
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> degraded{0};
  // Batching accounting.
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_volumes{0};

  // End-to-end request latencies.
  LatencyHistogram queue_wait;  ///< admission -> worker pickup
  LatencyHistogram execute;     ///< batch execution (per request)
  LatencyHistogram total;       ///< admission -> response

  // Pipeline-stage latencies (per completed request).
  LatencyHistogram prepare;
  LatencyHistogram enhance;
  LatencyHistogram segment;
  LatencyHistogram classify;

  /// Cumulative per-stage seconds, KernelProfile-style ("prepare",
  /// "enhance", "segment", "classify") — the Table-5-like view.
  KernelProfile stage_totals;

  void reset();

  /// JSON object with every counter, each histogram's
  /// count/mean/p50/p95/p99/max, per-stage totals, plus the
  /// caller-supplied gauges (live queue depth, uptime; throughput is
  /// completed / uptime).
  std::string json(std::size_t queue_depth, double uptime_s) const;
};

/// Appends one histogram as `"name":{...}` to `out` (exposed for the
/// bench's per-run reports).
void append_histogram_json(std::string& out, const char* name,
                           const LatencyHistogram& h);

}  // namespace ccovid::serve
