// Fixed-size worker pool executing queued jobs. Shared by the inference
// server (each job = one micro-batch) and by
// ComputeCovid19Pipeline::score_volumes' parallel path, so the ROC bench
// and the serving runtime exercise the same concurrency primitive.
//
// Pool threads are ORCHESTRATORS, not compute lanes: a job may sleep in
// retry backoff or a device stall, so the pool keeps its own OS threads
// instead of borrowing the TaskEngine's workers (a sleeping job must
// never occupy a compute lane). The kernels a job calls fan out into
// the shared engine; `inner_threads` is the per-job concurrency CAP on
// that engine (via ParallelPin), not a partition. The default (0 = no
// cap) lets a 4-worker server saturate every core through one shared
// pool; results stay bit-identical for any worker count and any cap
// because the engine's chunk boundaries depend only on (range, grain).
//
// The job queue is bounded: submit() blocks when all workers are busy
// and the backlog is full, which propagates backpressure up to the
// server's admission queue instead of buffering unboundedly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/types.h"
#include "fault/failpoint.h"
#include "serve/bounded_queue.h"

namespace ccovid::serve {

class WorkerPool {
 public:
  struct Options {
    int workers = 1;
    /// Per-job cap on TaskEngine lanes for kernels called from a worker
    /// (thread-local parallel_for width). 0 = uncapped: kernels use the
    /// full shared engine, which dynamic chunk-claiming load-balances
    /// across concurrent jobs. Set to 1 to force serial kernels (e.g.
    /// when outer batch parallelism alone already covers the machine).
    /// Results are bit-identical under every setting.
    int inner_threads = 0;
    /// Job backlog bound; 0 = 2 * workers.
    std::size_t queue_capacity = 0;
  };

  explicit WorkerPool(Options opt)
      : opt_(opt.workers < 1 ? Options{1, opt.inner_threads, opt.queue_capacity}
                             : opt),
        jobs_(opt_.queue_capacity == 0
                  ? 2 * static_cast<std::size_t>(opt_.workers)
                  : opt_.queue_capacity) {
    threads_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int w = 0; w < opt_.workers; ++w) {
      threads_.emplace_back([this, w] { run_worker(w); });
    }
  }

  ~WorkerPool() { shutdown(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return opt_.workers; }

  /// Enqueues a job; blocks while the backlog is full (backpressure).
  /// False once shutdown() has been called.
  bool submit(std::function<void()> job) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    if (!jobs_.push(std::move(job))) {
      finish_one();
      return false;
    }
    return true;
  }

  /// Blocks until every submitted job has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Convenience parallel map: runs fn(i) for i in [0, n) on the pool
  /// and blocks until all iterations complete. Iterations must be
  /// independent. Exceptions inside fn terminate (jobs are detached
  /// units); callers wanting per-item errors should catch inside fn.
  void for_each(index_t n, const std::function<void(index_t)>& fn) {
    for (index_t i = 0; i < n; ++i) {
      submit([&fn, i] { fn(i); });
    }
    wait_idle();
  }

  /// Drains the backlog, then joins every worker. Idempotent.
  void shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
      for (auto& t : threads_) {
        if (t.joinable()) t.join();
      }
      return;
    }
    jobs_.close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void run_worker(int index) {
    ParallelPin pin(opt_.inner_threads);
    // Deterministic identity for thread(I) failpoint filters: the worker
    // index, not OS-level arrival order.
    fault::ScopedThreadOrdinal ordinal(index);
    while (auto job = jobs_.pop()) {
      CCOVID_FAILPOINT("serve.worker.stall");
      (*job)();
      finish_one();
    }
  }

  void finish_one() {
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(idle_mu_);
      idle_cv_.notify_all();
    }
  }

  Options opt_;
  BoundedQueue<std::function<void()>> jobs_;
  std::vector<std::thread> threads_;
  std::atomic<index_t> pending_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stopping_{false};
};

}  // namespace ccovid::serve
