#include "trace/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>

namespace ccovid::trace {
namespace {

// Trace names are internal identifiers ("serve.request", failpoint
// sites) — escaping quotes/backslashes/control bytes is all JSON needs.
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// Fixed-notation seconds with ns resolution: decimal (not %g) so the
// vclock golden output stays byte-stable across libc float formatting.
void append_seconds(std::string& out, double s) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9f", s);
  out += buf;
}

}  // namespace

std::string chrome_json(const Snapshot& snap) {
  std::string out;
  out.reserve(128 + snap.events.size() * 96);
  out += "[\n";
  bool first = true;
  for (const Event& e : snap.events) {
    if (!first) out += ",\n";
    first = false;
    // ts/dur are µs (chrome's unit); ns-precision survives as fractions.
    const double ts_us = static_cast<double>(e.t0_ns) / 1000.0;
    const double dur_us = static_cast<double>(e.t1_ns - e.t0_ns) / 1000.0;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"ccovid\",\"ph\":\"";
    out += (e.kind == Kind::kInstant ? 'i' : 'X');
    out += "\",\"pid\":1,\"tid\":";
    append_u64(out, e.tid);
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", ts_us);
    out += buf;
    if (e.kind == Kind::kInstant) {
      out += ",\"s\":\"t\"";
    } else {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", dur_us);
      out += buf;
    }
    out += ",\"args\":{\"id\":";
    append_u64(out, e.id);
    out += ",\"depth\":";
    append_u64(out, e.depth);
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

bool write_chrome_json(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string json = chrome_json(snapshot());
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

std::vector<SpanStat> aggregate(const Snapshot& snap) {
  // Merge every thread's durations per name BEFORE extracting quantiles:
  // quantiles of per-thread quantiles are not quantiles of the workload.
  std::map<std::string, std::vector<std::uint64_t>> durations;
  for (const Event& e : snap.events) {
    if (e.kind != Kind::kSpan) continue;
    durations[e.name].push_back(e.t1_ns - e.t0_ns);
  }
  std::vector<SpanStat> stats;
  stats.reserve(durations.size());
  for (auto& [name, ds] : durations) {
    std::sort(ds.begin(), ds.end());
    SpanStat st;
    st.name = name;
    st.count = ds.size();
    std::uint64_t total = 0;
    for (std::uint64_t d : ds) total += d;
    st.total_s = 1e-9 * static_cast<double>(total);
    auto nearest_rank = [&](double q) {
      const std::size_t idx = std::min(
          ds.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(ds.size())));
      return 1e-9 * static_cast<double>(ds[idx]);
    };
    st.p50_s = nearest_rank(0.50);
    st.p99_s = nearest_rank(0.99);
    stats.push_back(std::move(st));
  }
  std::sort(stats.begin(), stats.end(), [](const SpanStat& a, const SpanStat& b) {
    if (a.total_s != b.total_s) return a.total_s > b.total_s;
    return a.name < b.name;
  });
  return stats;
}

std::string table(const std::vector<SpanStat>& stats) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %12s\n", "span",
                "count", "total_s", "p50_us", "p99_us");
  out += line;
  for (const SpanStat& st : stats) {
    std::snprintf(line, sizeof(line),
                  "%-32s %10" PRIu64 " %12.6f %12.3f %12.3f\n",
                  st.name.c_str(), st.count, st.total_s, st.p50_s * 1e6,
                  st.p99_s * 1e6);
    out += line;
  }
  return out;
}

std::string summary_json(const Snapshot& snap) {
  const std::vector<SpanStat> stats = aggregate(snap);
  std::string out = "{\"events\":";
  append_u64(out, snap.events.size());
  out += ",\"dropped\":";
  append_u64(out, snap.dropped);
  out += ",\"spans\":[";
  bool first = true;
  for (const SpanStat& st : stats) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, st.name.c_str());
    out += "\",\"count\":";
    append_u64(out, st.count);
    out += ",\"total_s\":";
    append_seconds(out, st.total_s);
    out += ",\"p50_s\":";
    append_seconds(out, st.p50_s);
    out += ",\"p99_s\":";
    append_seconds(out, st.p99_s);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ccovid::trace
