// Exporters over a trace Snapshot: chrome://tracing JSON, an aggregated
// per-span table (count/total/p50/p99), and a machine-readable summary
// object for splicing into BENCH_*.json / serve stats JSON.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.h"

namespace ccovid::trace {

/// Chrome trace-event JSON ("Trace Event Format", array-of-events form):
/// spans become "X" complete events with ts/dur in µs, instants become
/// "i" events; correlation ids land in args.id. Load via chrome://tracing
/// or https://ui.perfetto.dev.
std::string chrome_json(const Snapshot& snap);

/// snapshot() + chrome_json() + write to `path`. Returns false (and
/// writes nothing) on I/O failure.
bool write_chrome_json(const std::string& path);

/// Aggregated statistics for one span name, merged across ALL threads
/// before quantile extraction (per-thread quantiles would skew p99 when
/// workers see different load; see DESIGN.md §8).
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

/// Per-name stats over every span in the snapshot (instants are skipped
/// — they have no duration), sorted by descending total time. Quantiles
/// are nearest-rank over the merged duration set.
std::vector<SpanStat> aggregate(const Snapshot& snap);

/// Human-readable fixed-width table of aggregate(), one row per span.
std::string table(const std::vector<SpanStat>& stats);

/// JSON object (no trailing newline) of the form
///   {"events":N,"dropped":D,"spans":[{"name":...,"count":...,
///    "total_s":...,"p50_s":...,"p99_s":...},...]}
/// for merging into BENCH_*.json and serve stats output.
std::string summary_json(const Snapshot& snap);

}  // namespace ccovid::trace
