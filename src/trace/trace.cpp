#include "trace/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace ccovid::trace {
namespace {

// ------------------------------------------------------------ clock

std::atomic<bool> g_vclock{[] {
  const char* env = std::getenv("CCOVID_TRACE_VCLOCK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

// Virtual time advances 1 µs per draw so chrome's µs timeline shows one
// tick per event regardless of host speed.
std::atomic<std::uint64_t> g_vnow_ns{0};

std::uint64_t steady_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// ------------------------------------------------------------- ring

// In-ring record. Every field is a relaxed atomic so the snapshot thread
// may read slots a writer is concurrently overwriting without a data
// race; the seq-based discard protocol below rejects any slot whose
// value could have been torn across fields.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::uint64_t> t1_ns{0};
  std::atomic<std::uint64_t> id{0};
  std::atomic<std::uint16_t> depth{0};
  std::atomic<std::uint8_t> kind{0};
};

std::atomic<std::size_t> g_ring_capacity{16384};

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Single-writer ring: only the owning thread stores; any thread may
// snapshot. head_ counts records ever written (monotonic); slot k holds
// record seq where seq % capacity == k.
class ThreadRing {
 public:
  explicit ThreadRing(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), mask_(capacity - 1), slots_(capacity) {}

  std::uint32_t tid() const { return tid_; }

  void emit(const char* name, std::uint64_t t0, std::uint64_t t1,
            std::uint64_t id, std::uint16_t depth, Kind kind) {
    const std::uint64_t seq = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[seq & mask_];
    s.name.store(name, std::memory_order_relaxed);
    s.t0_ns.store(t0, std::memory_order_relaxed);
    s.t1_ns.store(t1, std::memory_order_relaxed);
    s.id.store(id, std::memory_order_relaxed);
    s.depth.store(depth, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    // Publish: a snapshot that observes head >= seq+1 may read the slot's
    // fields (they happen-before this release store).
    head_.store(seq + 1, std::memory_order_release);
  }

  // Copies the ring without stopping the writer. Any record the writer
  // may have been overwriting while we copied — i.e. whose slot was
  // reused between the two head reads — is discarded, never torn.
  void collect(std::vector<Event>& out, std::uint64_t& dropped) const {
    const std::size_t cap = mask_ + 1;
    const std::uint64_t h1 = head_.load(std::memory_order_acquire);
    const std::uint64_t lo1 = h1 > cap ? h1 - cap : 0;
    std::vector<Event> local;
    local.reserve(static_cast<std::size_t>(h1 - lo1));
    for (std::uint64_t seq = lo1; seq < h1; ++seq) {
      const Slot& s = slots_[seq & mask_];
      Event e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.t0_ns = s.t0_ns.load(std::memory_order_relaxed);
      e.t1_ns = s.t1_ns.load(std::memory_order_relaxed);
      e.id = s.id.load(std::memory_order_relaxed);
      e.depth = s.depth.load(std::memory_order_relaxed);
      e.kind = static_cast<Kind>(s.kind.load(std::memory_order_relaxed));
      e.tid = tid_;
      local.push_back(e);
    }
    // Re-read head: records below lo2 had their slot reclaimed during
    // the copy and may be torn mixes of old and new fields.
    const std::uint64_t h2 = head_.load(std::memory_order_acquire);
    const std::uint64_t lo2 = h2 > cap ? h2 - cap : 0;
    const std::uint64_t keep_from = std::max(lo1, lo2);
    dropped += keep_from;  // lost to wrap before (lo1) or during (rest) the copy
    for (std::uint64_t seq = lo1; seq < h1; ++seq) {
      if (seq < keep_from) continue;
      const Event& e = local[static_cast<std::size_t>(seq - lo1)];
      if (e.name != nullptr) out.push_back(e);
    }
  }

  std::uint64_t head() const { return head_.load(std::memory_order_acquire); }

  void reset() {
    // Called only from clear(); writers racing with this lose records
    // but every slot field stays individually well-defined (atomics).
    for (Slot& s : slots_) s.name.store(nullptr, std::memory_order_relaxed);
    head_.store(0, std::memory_order_release);
  }

 private:
  const std::uint32_t tid_;
  const std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::vector<Slot> slots_;
};

// --------------------------------------------------------- registry

// Rings are owned by a process-lifetime registry (leaked on exit, like
// the fault registry) so a snapshot can still read events of threads
// that have already exited.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 0;
};

RingRegistry& registry() {
  static RingRegistry* r = new RingRegistry();  // leaked: see comment above
  return *r;
}

ThreadRing* make_ring() {
  RingRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const std::size_t cap =
      round_up_pow2(std::max<std::size_t>(64, g_ring_capacity.load(std::memory_order_relaxed)));
  r.rings.push_back(std::make_unique<ThreadRing>(r.next_tid++, cap));
  return r.rings.back().get();
}

// The TLS pointer is never invalidated: rings live as long as the
// registry, so a cached pointer stays valid even across clear().
ThreadRing* thread_ring() {
  thread_local ThreadRing* ring = make_ring();
  return ring;
}

thread_local int t_depth = 0;
thread_local std::uint64_t t_correlation = 0;

}  // namespace

namespace detail {

std::atomic<int> g_level{0};

void emit_instant(const char* name, std::uint64_t id) {
  if (name == nullptr) return;
  const std::uint64_t t = now_ns();
  thread_ring()->emit(name, t, t, id != 0 ? id : t_correlation,
                      static_cast<std::uint16_t>(t_depth), Kind::kInstant);
}

}  // namespace detail

int level() { return detail::g_level.load(std::memory_order_relaxed); }

void set_level(int lvl) {
  detail::g_level.store(lvl < 0 ? 0 : lvl, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  if (g_vclock.load(std::memory_order_relaxed))
    return g_vnow_ns.fetch_add(1000, std::memory_order_relaxed) + 1000;
  return steady_ns();
}

void use_virtual_clock(bool on) {
  g_vclock.store(on, std::memory_order_relaxed);
  if (on) g_vnow_ns.store(0, std::memory_order_relaxed);
}

bool virtual_clock() { return g_vclock.load(std::memory_order_relaxed); }

void set_ring_capacity(std::size_t records) {
  g_ring_capacity.store(std::max<std::size_t>(64, records),
                        std::memory_order_relaxed);
}

std::uint64_t correlation_id() { return t_correlation; }

ScopedCorrelation::ScopedCorrelation(std::uint64_t id) : prev_(t_correlation) {
  t_correlation = id;
}

ScopedCorrelation::~ScopedCorrelation() { t_correlation = prev_; }

void Span::begin(const char* name, std::uint64_t id, bool use_tls_id) {
  if (name == nullptr) return;  // TRACE_SPAN_V below the verbosity level
  name_ = name;
  id_ = use_tls_id ? t_correlation : id;
  depth_ = static_cast<std::uint16_t>(t_depth);
  ++t_depth;
  t0_ns_ = now_ns();
}

void Span::end() {
  const std::uint64_t t1 = now_ns();
  --t_depth;
  // Spans are recorded at close so the single-writer ring never holds
  // half-open records; nesting is reconstructed from (t0, depth).
  if (enabled())
    thread_ring()->emit(name_, t0_ns_, t1, id_, depth_, Kind::kSpan);
}

Snapshot snapshot() {
  Snapshot snap;
  RingRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) ring->collect(snap.events, snap.dropped);
  std::sort(snap.events.begin(), snap.events.end(),
            [](const Event& a, const Event& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.t0_ns < b.t0_ns;
            });
  return snap;
}

void clear() {
  RingRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& ring : r.rings) ring->reset();
  g_vnow_ns.store(0, std::memory_order_relaxed);
}

int thread_depth() { return t_depth; }

}  // namespace ccovid::trace
