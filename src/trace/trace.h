// Structured tracing: thread-local span stacks writing fixed-size
// records into per-thread lock-free ring buffers, snapshot-able without
// stopping writers, exportable as chrome://tracing JSON or an aggregated
// per-span table (src/trace/export.h).
//
//   TRACE_SPAN("fbp.filter");                 // RAII span, ends at scope
//   TRACE_SPAN_ID("serve.request", req_id);   // span with correlation id
//   TRACE_INSTANT_ID("serve.retry", req_id);  // point event
//
// Cost model
// ----------
//  * Disabled (the default): every site compiles to ONE relaxed atomic
//    load of the global level — no lock, no map lookup, no allocation,
//    no clock read. tests/test_trace.cpp asserts the no-allocation part
//    via fresh_system_allocs().
//  * Enabled: one clock read plus five relaxed atomic stores into the
//    calling thread's preallocated ring (the ring itself is allocated
//    once, on the thread's first event). No locks on the hot path; the
//    registry mutex is only taken at ring creation and snapshot time.
//  * Tracing never perturbs numerics: spans only read clocks and write
//    trace records, so golden digests are bitwise identical with tracing
//    fully enabled (asserted by tests/test_golden.cpp).
//
// Levels: 0 = off, 1 = spans + instants (the default once enabled),
// 2 = also task-engine scheduling events (dispatch/steal/park) — those
// fire orders of magnitude more often, so they hide behind TRACE_*_V.
//
// Record names MUST be pointers that outlive the trace registry: string
// literals, or strings owned by a never-destroyed object (failpoint
// names qualify — the fault registry never frees a Failpoint). The ring
// stores the pointer, not a copy, which is what keeps emit() free of
// allocation.
//
// Virtual clock: set CCOVID_TRACE_VCLOCK=1 (or use_virtual_clock(true))
// to replace the steady clock with a global monotonic counter advancing
// 1 µs per event. Trace output of a deterministic single-threaded run is
// then byte-stable across machines and reruns — the property the golden
// trace tests pin down. Under concurrency the interleaving still decides
// which thread draws which tick; vclock keeps the *values* reproducible,
// not the schedule.
//
// Correlation ids: serve stamps each request's id into every span the
// request touches (admission on the submitter thread, execute/respond on
// a worker thread) via ScopedCorrelation, so one request's timeline can
// be stitched across threads in the chrome view. DDP uses the rank as
// the id, giving per-rank lanes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccovid::trace {

enum class Kind : std::uint8_t {
  kSpan = 0,     ///< duration event [t0_ns, t1_ns)
  kInstant = 1,  ///< point event (t1_ns == t0_ns)
};

/// One decoded trace record (the snapshot/export representation; the
/// in-ring layout is a struct of relaxed atomics, see trace.cpp).
struct Event {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint64_t id = 0;      ///< correlation id (0 = none)
  std::uint32_t tid = 0;     ///< small per-thread ordinal, not an OS id
  std::uint16_t depth = 0;   ///< span-stack depth at emit time
  Kind kind = Kind::kSpan;

  double duration_s() const { return 1e-9 * static_cast<double>(t1_ns - t0_ns); }
};

namespace detail {
/// The only state a disabled site touches. 0 = off, 1 = spans,
/// 2 = + engine scheduling events.
extern std::atomic<int> g_level;

void emit_instant(const char* name, std::uint64_t id);
}  // namespace detail

inline bool enabled() {
  return detail::g_level.load(std::memory_order_relaxed) > 0;
}
inline bool verbose() {
  return detail::g_level.load(std::memory_order_relaxed) > 1;
}

int level();
void set_level(int level);

/// Nanoseconds on the trace clock: steady_clock since first use, or the
/// virtual counter when the vclock is on.
std::uint64_t now_ns();

/// Switches to / from the deterministic virtual clock (also switchable
/// via the CCOVID_TRACE_VCLOCK environment variable, read once at
/// startup). Affects subsequent events only.
void use_virtual_clock(bool on);
bool virtual_clock();

/// Per-ring capacity in records for rings created AFTER the call
/// (default 16384, or CCOVID_TRACE_BUF). Must be a power of two; other
/// values are rounded up. Oldest records are overwritten on wrap.
void set_ring_capacity(std::size_t records);

// ----------------------------------------------------------- spans

/// Calling thread's current correlation id (0 = none).
std::uint64_t correlation_id();

/// RAII override of the calling thread's correlation id; spans and
/// instants emitted while alive carry `id` unless they set their own.
class ScopedCorrelation {
 public:
  explicit ScopedCorrelation(std::uint64_t id);
  ~ScopedCorrelation();
  ScopedCorrelation(const ScopedCorrelation&) = delete;
  ScopedCorrelation& operator=(const ScopedCorrelation&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span. Construction when disabled is a single relaxed load; the
/// out-of-line begin/end paths only run while tracing is on. A span that
/// outlives a set_level(0) still balances its depth counter and is
/// simply not recorded.
class Span {
 public:
  explicit Span(const char* name) : name_(nullptr) {
    if (enabled()) begin(name, /*id=*/0, /*use_tls_id=*/true);
  }
  Span(const char* name, std::uint64_t id) : name_(nullptr) {
    if (enabled()) begin(name, id, /*use_tls_id=*/false);
  }
  ~Span() {
    if (name_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, std::uint64_t id, bool use_tls_id);
  void end();

  const char* name_;
  std::uint64_t t0_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint16_t depth_ = 0;
};

// -------------------------------------------------------- snapshot

struct Snapshot {
  /// Events of every thread that ever traced, ordered by (tid, t0_ns,
  /// emit order).
  std::vector<Event> events;
  /// Records overwritten by ring wraparound before this snapshot (lost
  /// oldest-first; sized rings rarely wrap in practice).
  std::uint64_t dropped = 0;
};

/// Copies every thread's ring WITHOUT stopping writers: records a writer
/// may have been overwriting during the copy are discarded (they count
/// as dropped), never returned torn.
Snapshot snapshot();

/// Resets every ring (test support). Concurrent writers lose in-flight
/// records but stay well-defined.
void clear();

/// Current span-stack depth of the calling thread (test support).
int thread_depth();

}  // namespace ccovid::trace

// -------------------------------------------------------------- macros

#define CCOVID_TRACE_CAT2(a, b) a##b
#define CCOVID_TRACE_CAT(a, b) CCOVID_TRACE_CAT2(a, b)

/// RAII span over the rest of the enclosing scope. `name` must outlive
/// the trace registry (string literal or interned string).
#define TRACE_SPAN(name) \
  ::ccovid::trace::Span CCOVID_TRACE_CAT(ccovid_trace_span_, __LINE__)(name)

/// Span carrying an explicit correlation id (request id, rank, ...).
#define TRACE_SPAN_ID(name, id) \
  ::ccovid::trace::Span CCOVID_TRACE_CAT(ccovid_trace_span_, __LINE__)(name, (id))

/// Point event; inherits the thread's correlation id.
#define TRACE_INSTANT(name)                              \
  do {                                                   \
    if (::ccovid::trace::enabled())                      \
      ::ccovid::trace::detail::emit_instant((name), 0);  \
  } while (0)

/// Point event with an explicit correlation id.
#define TRACE_INSTANT_ID(name, id)                           \
  do {                                                       \
    if (::ccovid::trace::enabled())                          \
      ::ccovid::trace::detail::emit_instant((name), (id));   \
  } while (0)

/// Verbosity-gated variants for scheduling-frequency sites (task-engine
/// dispatch/steal/park): recorded only at level >= 2.
#define TRACE_SPAN_V(name)                                      \
  ::ccovid::trace::Span CCOVID_TRACE_CAT(ccovid_trace_span_,    \
                                         __LINE__)(             \
      ::ccovid::trace::verbose() ? (name) : nullptr)

#define TRACE_INSTANT_V(name)                            \
  do {                                                   \
    if (::ccovid::trace::verbose())                      \
      ::ccovid::trace::detail::emit_instant((name), 0);  \
  } while (0)
