// DDP chaos suite: runs distributed data-parallel training under seeded
// transport and gradient fault schedules and asserts the core invariant —
// training either converges in lock-step or raises a TYPED error
// (StageError for poisoned gradients, CommError for transport faults);
// it never hangs a collective and never silently diverges. Each
// scenario runs twice with the same schedule seed and compares outcome
// digests, witnessing bitwise reproducibility.
//
// Failpoints are armed AFTER the trainer is constructed so the initial
// weight broadcast stays clean and every schedule targets training-step
// traffic; thread(R) filters pin schedules to rank R's deterministic
// send/step sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "autograd/losses.h"
#include "core/digest.h"
#include "core/finite.h"
#include "core/tensor.h"
#include "dist/comm.h"
#include "dist/ddp.h"
#include "fault/failpoint.h"
#include "nn/ddnet.h"
#include "nn/layers.h"
#include "trace/trace.h"

namespace ccovid {
namespace {

using dist::CommError;
using dist::DdpConfig;
using dist::DdpTrainer;
using dist::EpochStats;

std::shared_ptr<nn::Module> tiny_ddnet_factory() {
  return std::make_shared<nn::DDnet>(nn::DDnetConfig::tiny());
}

struct ToyData {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;
};

ToyData make_toy_data(index_t count, index_t hw, std::uint64_t seed) {
  Rng rng(seed);
  ToyData d;
  for (index_t i = 0; i < count; ++i) {
    Tensor target({1, 1, hw, hw});
    rng.fill_uniform(target, 0.2, 0.8);
    Tensor input = target.clone();
    for (index_t j = 0; j < input.numel(); ++j) {
      input.data()[j] += static_cast<real_t>(rng.gaussian(0, 0.1));
    }
    d.inputs.push_back(std::move(input));
    d.targets.push_back(std::move(target));
  }
  return d;
}

DdpTrainer::LossFn toy_loss(const ToyData& data) {
  return [&data](nn::Module& model, int /*rank*/,
                 const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var total;
    for (index_t s : samples) {
      autograd::Var x(data.inputs[s].clone());
      autograd::Var pred = net.forward(x);
      autograd::Var loss =
          autograd::enhancement_loss(pred, data.targets[s], 0.1f, 11, 1);
      total = total.defined() ? autograd::add(total, loss) : loss;
    }
    return autograd::mul_scalar(
        total, 1.0f / static_cast<real_t>(samples.size()));
  };
}

std::uint64_t params_digest(nn::Module& m) {
  std::uint64_t h = kFnv1aOffset;
  for (const auto& p : m.parameters()) h = fnv1a64(p.value(), h);
  return h;
}

/// What one seeded scenario run produced, reduced to comparable bits.
struct Outcome {
  enum class Kind { kCompleted, kStageError, kCommError, kOtherError };
  Kind kind = Kind::kOtherError;
  std::string stage;                 ///< StageError::stage()
  int comm_kind = -1;                ///< static_cast<int>(CommError::Kind)
  std::uint64_t digest = kFnv1aOffset;  ///< loss bits + rank-0 params
  bool lock_step = false;            ///< rank params bitwise identical
};

/// One full scenario: fresh registry seed, fresh identically-seeded
/// model replicas, clean broadcast, THEN the fault schedule, one epoch.
/// Never hangs: every fault path below either completes or throws.
Outcome run_ddp_scenario(const std::string& failpoints, std::uint64_t seed,
                         DdpConfig cfg) {
  auto& reg = fault::Registry::instance();
  reg.reset();
  reg.set_seed(seed);
  Outcome out;
  nn::seed_init_rng(100);
  const ToyData data = make_toy_data(4, 16, 101);
  DdpTrainer trainer(tiny_ddnet_factory, cfg);  // clean weight broadcast
  reg.configure(failpoints);
  Rng rng(102);
  try {
    const EpochStats stats = trainer.train_epoch(4, toy_loss(data), rng);
    out.kind = Outcome::Kind::kCompleted;
    out.digest = fnv1a64(&stats.mean_loss, sizeof(stats.mean_loss));
    const std::uint64_t p0 = params_digest(trainer.model(0));
    out.digest = fnv1a64(&p0, sizeof(p0), out.digest);
    out.lock_step = true;
    for (int r = 1; r < cfg.world_size; ++r) {
      out.lock_step = out.lock_step && params_digest(trainer.model(r)) == p0;
    }
  } catch (const StageError& e) {
    out.kind = Outcome::Kind::kStageError;
    out.stage = e.stage();
    out.digest = fnv1a64(out.stage.data(), out.stage.size());
  } catch (const CommError& e) {
    out.kind = Outcome::Kind::kCommError;
    out.comm_kind = static_cast<int>(e.kind());
    out.digest = fnv1a64(&out.comm_kind, sizeof(out.comm_kind));
  }
  reg.reset();
  return out;
}

DdpConfig two_rank_config() {
  DdpConfig cfg;
  cfg.world_size = 2;
  cfg.per_worker_batch = 1;
  cfg.lr = 1e-3;
  return cfg;
}

class ChaosDdp : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

// Schedule 1: rank 1 is a straggler (stalls every other step). A slow
// rank must not desynchronize anything: the epoch completes, replicas
// end bitwise lock-step, and the whole run replays bitwise.
TEST_F(ChaosDdp, StragglerRankKeepsLockStep) {
  const std::string fp = "dist.rank.straggler=thread(1)*every(2)*delay(5ms)";
  const Outcome a = run_ddp_scenario(fp, 1, two_rank_config());
  ASSERT_EQ(a.kind, Outcome::Kind::kCompleted);
  EXPECT_TRUE(a.lock_step);
  const Outcome b = run_ddp_scenario(fp, 1, two_rank_config());
  ASSERT_EQ(b.kind, Outcome::Kind::kCompleted);
  EXPECT_EQ(a.digest, b.digest) << "straggler run must replay bitwise";
}

// Schedule 2: rank 0's local gradient is poisoned with NaN before the
// all-reduce. The sum spreads the poison to every rank, so with
// check_finite_grads every rank throws the SAME typed StageError and
// all threads join — divergence is loud, never silent.
TEST_F(ChaosDdp, PoisonedGradientRaisesTypedStageError) {
  auto cfg = two_rank_config();
  cfg.check_finite_grads = true;
  const std::string fp = "dist.grad.corrupt=thread(0)*once*nan(4)";
  const Outcome a = run_ddp_scenario(fp, 7, cfg);
  ASSERT_EQ(a.kind, Outcome::Kind::kStageError);
  EXPECT_EQ(a.stage, "dist.grad.allreduce");
  const Outcome b = run_ddp_scenario(fp, 7, cfg);
  EXPECT_EQ(b.kind, Outcome::Kind::kStageError);
  EXPECT_EQ(a.digest, b.digest);
}

// Control for schedule 2: the SAME poison without the finite check
// completes "successfully" — this is exactly the silent divergence the
// check exists to forbid, kept here as the documented counterexample.
TEST_F(ChaosDdp, WithoutFiniteCheckPoisonIsSilent) {
  auto cfg = two_rank_config();
  cfg.check_finite_grads = false;
  const Outcome a =
      run_ddp_scenario("dist.grad.corrupt=thread(0)*once*nan(4)", 7, cfg);
  EXPECT_EQ(a.kind, Outcome::Kind::kCompleted);
}

// Schedule 3: a message from rank 0 is dropped on the wire. The guarded
// transport turns the resulting hole in the sequence into a typed
// CommError (timeout if nothing else arrives, out-of-order if a
// successor does) instead of wedging the collective forever.
TEST_F(ChaosDdp, DroppedMessageRaisesCommErrorNotHang) {
  auto cfg = two_rank_config();
  cfg.guard.enabled = true;
  cfg.guard.recv_timeout_s = 0.5;
  const std::string fp = "dist.msg.drop=thread(0)*nth(2)";
  const Outcome a = run_ddp_scenario(fp, 3, cfg);
  ASSERT_EQ(a.kind, Outcome::Kind::kCommError);
  EXPECT_TRUE(a.comm_kind == static_cast<int>(CommError::Kind::kTimeout) ||
              a.comm_kind == static_cast<int>(CommError::Kind::kOutOfOrder))
      << "drop must surface as timeout or out-of-order, got kind "
      << a.comm_kind;
  const Outcome b = run_ddp_scenario(fp, 3, cfg);
  EXPECT_EQ(b.kind, Outcome::Kind::kCommError);
  EXPECT_EQ(a.comm_kind, b.comm_kind);
}

// Schedule 4: bit-flips on the wire AFTER the checksum was stamped —
// the receiver's FNV check catches it as kCorrupt, deterministically.
TEST_F(ChaosDdp, CorruptedPayloadDetectedByChecksum) {
  auto cfg = two_rank_config();
  cfg.guard.enabled = true;
  cfg.guard.recv_timeout_s = 0.5;
  const std::string fp = "dist.msg.corrupt=thread(1)*once*corrupt(3)";
  const Outcome a = run_ddp_scenario(fp, 11, cfg);
  ASSERT_EQ(a.kind, Outcome::Kind::kCommError);
  EXPECT_EQ(a.comm_kind, static_cast<int>(CommError::Kind::kCorrupt));
  const Outcome b = run_ddp_scenario(fp, 11, cfg);
  EXPECT_EQ(b.kind, Outcome::Kind::kCommError);
  EXPECT_EQ(a.digest, b.digest);
}

// Schedule 5: a duplicated send — the receiver sees the same sequence
// number twice and reports kDuplicate instead of consuming a stale
// payload as fresh data. Rank 1's uplink is the one faulted: the
// trainer rethrows the first error in rank order, so the detector
// (rank 0) must outrank the collateral timeout on the faulty rank.
// The dup targets rank 1's FIRST collective send (the deterministic
// ring makes one send per step at world 2), so the stale packet is
// still in the queue when rank 0 reads step 2's traffic.
TEST_F(ChaosDdp, DuplicatedMessageDetectedBySequence) {
  auto cfg = two_rank_config();
  cfg.guard.enabled = true;
  cfg.guard.recv_timeout_s = 0.5;
  const std::string fp = "dist.msg.dup=thread(1)*nth(1)";
  const Outcome a = run_ddp_scenario(fp, 13, cfg);
  ASSERT_EQ(a.kind, Outcome::Kind::kCommError);
  EXPECT_EQ(a.comm_kind, static_cast<int>(CommError::Kind::kDuplicate));
  const Outcome b = run_ddp_scenario(fp, 13, cfg);
  EXPECT_EQ(b.kind, Outcome::Kind::kCommError);
  EXPECT_EQ(a.digest, b.digest);
}

// The guard itself must not false-positive: enabled on a fault-free run
// (plus a straggler to stress the timeouts) everything checksums clean,
// the epoch completes, and replicas stay lock-step.
TEST_F(ChaosDdp, GuardIsCleanOnFaultFreeTraffic) {
  auto cfg = two_rank_config();
  cfg.guard.enabled = true;
  cfg.guard.recv_timeout_s = 2.0;
  const std::string fp = "dist.rank.straggler=thread(0)*nth(1)*delay(10ms)";
  const Outcome a = run_ddp_scenario(fp, 17, cfg);
  ASSERT_EQ(a.kind, Outcome::Kind::kCompleted);
  EXPECT_TRUE(a.lock_step);
}

}  // namespace
}  // namespace ccovid

namespace ccovid {
namespace {

// Tracing x DDP: failpoint fires surface as instants at their site, and
// the step phases (compute / allreduce / apply) appear as spans on
// per-rank lanes — each worker's ScopedCorrelation stamps rank+1 into
// its spans, so a two-rank run shows exactly lanes {1, 2}.
TEST_F(ChaosDdp, TraceRecordsFailpointFiresAndStepPhases) {
  trace::set_level(1);
  trace::clear();
  const std::string fp = "dist.rank.straggler=thread(1)*every(2)*delay(1ms)";
  const Outcome a = run_ddp_scenario(fp, 21, two_rank_config());
  const trace::Snapshot snap = trace::snapshot();
  trace::set_level(0);
  trace::clear();
  ASSERT_EQ(a.kind, Outcome::Kind::kCompleted);
  EXPECT_TRUE(a.lock_step);

  std::size_t fires = 0;
  std::set<std::uint64_t> compute_lanes, allreduce_lanes, apply_lanes;
  for (const auto& e : snap.events) {
    if (e.name == nullptr) continue;
    if (std::strcmp(e.name, "dist.rank.straggler") == 0) {
      EXPECT_EQ(e.kind, trace::Kind::kInstant);
      EXPECT_NE(e.id, 0u);  // per-fire seed
      ++fires;
    } else if (std::strcmp(e.name, "ddp.compute") == 0) {
      compute_lanes.insert(e.id);
    } else if (std::strcmp(e.name, "ddp.allreduce") == 0) {
      allreduce_lanes.insert(e.id);
    } else if (std::strcmp(e.name, "ddp.apply") == 0) {
      apply_lanes.insert(e.id);
    }
  }
  EXPECT_GT(fires, 0u) << "every(2) over 4 steps must fire on rank 1";
  const std::set<std::uint64_t> want{1, 2};
  EXPECT_EQ(compute_lanes, want);
  EXPECT_EQ(allreduce_lanes, want);
  EXPECT_EQ(apply_lanes, want);
}

}  // namespace
}  // namespace ccovid
