// Graph-fusion chaos suite: the serve runtime's resilience invariants
// (tests/chaos/chaos_serve.cpp) must hold identically when the
// enhancement stage runs through the compiled fused graph
// (src/graph/) instead of the op-by-op module walk, and — because the
// fused executor is bitwise-identical to the interpreter — the full
// seeded (status, degraded, retries, probability-bits) trace digest
// must match between fusion on and fusion off. A digest split here
// means the fused DDnet path diverged numerically under load, which
// the unit battery (tests/test_graph.cpp) would also catch, or that
// fusion changed a resilience decision, which only this suite sees.
//
// The ctest TIMEOUT on this binary is the deadlock backstop: a hung
// drain under the fused path fails the suite instead of wedging CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/digest.h"
#include "core/precision.h"
#include "data/phantom.h"
#include "fault/failpoint.h"
#include "graph/graph.h"
#include "nn/layers.h"
#include "serve/server.h"

namespace ccovid {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> tiny_pipeline() {
  nn::seed_init_rng(3);
  auto enh = std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

std::vector<data::PhantomVolume> tiny_volumes(std::size_t n) {
  Rng rng(11);
  std::vector<data::PhantomVolume> vols;
  for (std::size_t i = 0; i < n; ++i) {
    vols.push_back(data::make_volume(2, 8, i % 2 == 1, rng));
  }
  return vols;
}

struct ScenarioResult {
  std::vector<serve::DiagnoseResponse> responses;
  std::string stats_json;
  std::uint64_t trace_digest = kFnv1aOffset;
};

// Serialized submission (workers=1, max_batch=1, wait for each
// response) exactly as in chaos_serve.cpp, with the graph-fusion flag
// pinned for the server's whole lifetime — the worker thread reads the
// global flag per request, so the guard must outlive the drain.
ScenarioResult run_serialized(core::Precision prec, bool fusion,
                              const std::string& failpoints,
                              std::uint64_t seed, serve::ServerOptions opt,
                              std::size_t n) {
  // Both guards must outlive the drain: the worker thread samples the
  // process-wide precision (and fusion flag) once per request.
  core::PrecisionGuard pguard(prec);
  graph::FusionGuard guard(fusion);
  fault::Registry::instance().reset();
  fault::Registry::instance().set_seed(seed);
  ScenarioResult out;
  const auto vols = tiny_volumes(n);
  {
    serve::InferenceServer server(tiny_pipeline(), opt);
    fault::Registry::instance().configure(failpoints);
    for (std::size_t i = 0; i < n; ++i) {
      serve::ServeOptions so;
      so.use_enhancement = true;
      auto fut = server.submit(vols[i].hu, so);
      if (fut.wait_for(30s) != std::future_status::ready) {
        ADD_FAILURE() << "request " << i << " never resolved (lost/wedged)";
        fault::Registry::instance().reset();
        return out;
      }
      out.responses.push_back(fut.get());
    }
    out.stats_json = server.stats_json();
    server.shutdown();
  }
  for (const auto& r : out.responses) {
    const unsigned char status = static_cast<unsigned char>(r.status);
    const unsigned char degraded = r.degraded ? 1 : 0;
    out.trace_digest = fnv1a64(&status, 1, out.trace_digest);
    out.trace_digest = fnv1a64(&degraded, 1, out.trace_digest);
    out.trace_digest =
        fnv1a64(&r.retries, sizeof(r.retries), out.trace_digest);
    if (r.status == serve::RequestStatus::kOk) {
      const double p = r.diagnosis.probability;
      out.trace_digest = fnv1a64(&p, sizeof(p), out.trace_digest);
    }
  }
  fault::Registry::instance().reset();
  return out;
}

ScenarioResult run_serialized(bool fusion, const std::string& failpoints,
                              std::uint64_t seed, serve::ServerOptions opt,
                              std::size_t n) {
  return run_serialized(core::Precision::kF32, fusion, failpoints, seed,
                        opt, n);
}

serve::ServerOptions serialized_options() {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 1;
  opt.batch_delay = std::chrono::microseconds(100);
  return opt;
}

class ChaosGraph : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

// Fault-free baseline: the fused serve path returns the exact bits of
// the unfused path — probabilities included — and no request is lost.
TEST_F(ChaosGraph, FaultFreeFusedMatchesUnfusedBitwise) {
  const auto fused = run_serialized(true, "", 1, serialized_options(), 4);
  const auto plain = run_serialized(false, "", 1, serialized_options(), 4);
  ASSERT_EQ(fused.responses.size(), 4u);
  ASSERT_EQ(plain.responses.size(), 4u);
  for (const auto& r : fused.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
    EXPECT_EQ(r.retries, 0);
  }
  EXPECT_EQ(fused.trace_digest, plain.trace_digest)
      << "fused DDnet serve output diverged bitwise from the module walk";
}

// Admission-rejection storm under fusion: every request resolves
// (rejected or completed), the seeded pattern replays, and the whole
// trace matches the unfused run — fusion must not perturb the fault
// schedule (it consumes no failpoint randomness) or the survivors'
// bits.
TEST_F(ChaosGraph, AdmissionStormDigestIsFusionInvariant) {
  const std::string fp = "serve.queue.admit=prob(0.4)*error";
  const auto a = run_serialized(true, fp, 2024, serialized_options(), 12);
  ASSERT_EQ(a.responses.size(), 12u);
  std::size_t rejected = 0, completed = 0;
  for (const auto& r : a.responses) {
    ASSERT_TRUE(r.status == serve::RequestStatus::kRejected ||
                r.status == serve::RequestStatus::kOk)
        << serve::to_string(r.status);
    (r.status == serve::RequestStatus::kRejected ? rejected : completed)++;
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(completed, 0u);

  const auto b = run_serialized(true, fp, 2024, serialized_options(), 12);
  EXPECT_EQ(a.trace_digest, b.trace_digest) << "fused replay must be seeded";
  const auto c = run_serialized(false, fp, 2024, serialized_options(), 12);
  EXPECT_EQ(a.trace_digest, c.trace_digest)
      << "fusion flag leaked into the fault schedule or the numerics";
}

// Sticky NaN injection on the enhancement OUTPUT while the fused graph
// produces it: the finite_check guard must catch the poisoned tensor
// exactly as on the module path, degrade gracefully, and keep client
// responses finite. Retries and degradation counts match unfused.
TEST_F(ChaosGraph, FusedEnhanceNanDegradesGracefully) {
  auto opt = serialized_options();
  opt.max_retries = 1;
  opt.retry_backoff = std::chrono::milliseconds(1);
  opt.degrade_on_failure = true;
  const std::string fp = "pipeline.enhance.output=every(1)*nan(4)";
  const auto a = run_serialized(true, fp, 9, opt, 3);
  ASSERT_EQ(a.responses.size(), 3u);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
    EXPECT_TRUE(r.degraded);
    EXPECT_GE(r.retries, 1);
    EXPECT_TRUE(std::isfinite(r.diagnosis.probability));
  }
  EXPECT_NE(a.stats_json.find("\"degraded\":3"), std::string::npos)
      << a.stats_json;

  const auto b = run_serialized(false, fp, 9, opt, 3);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Retries exhausted under fusion: typed kError responses with the
// injected message, none lost, server survives and drains.
TEST_F(ChaosGraph, FusedExhaustedRetriesFailTyped) {
  auto opt = serialized_options();
  opt.max_retries = 1;
  opt.retry_backoff = std::chrono::milliseconds(1);
  const std::string fp = "serve.worker.exec=error";
  const auto a = run_serialized(true, fp, 31, opt, 3);
  ASSERT_EQ(a.responses.size(), 3u);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kError);
    EXPECT_NE(r.error.find("injected execution fault"), std::string::npos);
  }
  EXPECT_NE(a.stats_json.find("\"failed\":3"), std::string::npos)
      << a.stats_json;

  const auto b = run_serialized(false, fp, 31, opt, 3);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Flipping the fusion flag between requests of ONE server must not
// change any request's bits: each request independently picks the path
// the flag names, and both paths produce identical output. This is the
// live-reconfiguration story for `--graph-fusion` — operators can turn
// fusion off under incident without a bit of output drift.
TEST_F(ChaosGraph, MidStreamFusionToggleIsInvisible) {
  fault::Registry::instance().set_seed(1);
  const auto vols = tiny_volumes(6);
  std::vector<serve::DiagnoseResponse> toggled;
  {
    serve::InferenceServer server(tiny_pipeline(), serialized_options());
    for (std::size_t i = 0; i < 6; ++i) {
      graph::FusionGuard guard(i % 2 == 0);  // on, off, on, ...
      auto fut = server.submit(vols[i].hu);
      ASSERT_EQ(fut.wait_for(30s), std::future_status::ready)
          << "request " << i << " lost across a fusion toggle";
      toggled.push_back(fut.get());
    }
    server.shutdown();
  }
  const auto plain = run_serialized(false, "", 1, serialized_options(), 6);
  ASSERT_EQ(plain.responses.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(toggled[i].status, serve::RequestStatus::kOk)
        << toggled[i].error;
    const double a = toggled[i].diagnosis.probability;
    const double b = plain.responses[i].diagnosis.probability;
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
        << "request " << i << ": probability bits moved with the flag";
  }
}

// ---------------------------------------------------------------
// Low-precision storage chaos: the resilience invariants must hold
// unchanged when the enhancement graph runs fp16 or int8 — the
// failpoint schedule consumes no precision-dependent randomness, and
// a quantized/half executor must degrade, retry and type errors
// exactly like the fp32 one.

// Sticky NaN injection on the enhancement output at fp16 and int8:
// the finite guard catches the poisoned tensor on the low-precision
// graph path too, every request degrades gracefully, none is lost.
TEST_F(ChaosGraph, LowPrecisionEnhanceNanDegradesGracefully) {
  for (const core::Precision prec :
       {core::Precision::kF16, core::Precision::kInt8}) {
    SCOPED_TRACE(core::precision_name(prec));
    auto opt = serialized_options();
    opt.max_retries = 1;
    opt.retry_backoff = std::chrono::milliseconds(1);
    opt.degrade_on_failure = true;
    const std::string fp = "pipeline.enhance.output=every(1)*nan(4)";
    const auto a = run_serialized(prec, true, fp, 9, opt, 3);
    ASSERT_EQ(a.responses.size(), 3u);
    for (const auto& r : a.responses) {
      EXPECT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
      EXPECT_TRUE(r.degraded);
      EXPECT_GE(r.retries, 1);
      EXPECT_TRUE(std::isfinite(r.diagnosis.probability));
    }
    EXPECT_NE(a.stats_json.find("\"degraded\":3"), std::string::npos)
        << a.stats_json;
  }
}

// Retries exhausted at fp16/int8: typed kError responses, none lost,
// and the seeded trace replays — the fault schedule must be identical
// to the fp32 run's (precision consumes no failpoint randomness).
TEST_F(ChaosGraph, LowPrecisionExhaustedRetriesFailTyped) {
  auto opt = serialized_options();
  opt.max_retries = 1;
  opt.retry_backoff = std::chrono::milliseconds(1);
  const std::string fp = "serve.worker.exec=error";
  const auto f32 = run_serialized(core::Precision::kF32, true, fp, 31,
                                  opt, 3);
  for (const core::Precision prec :
       {core::Precision::kF16, core::Precision::kInt8}) {
    SCOPED_TRACE(core::precision_name(prec));
    const auto a = run_serialized(prec, true, fp, 31, opt, 3);
    ASSERT_EQ(a.responses.size(), 3u);
    for (const auto& r : a.responses) {
      EXPECT_EQ(r.status, serve::RequestStatus::kError);
      EXPECT_NE(r.error.find("injected execution fault"),
                std::string::npos);
    }
    EXPECT_EQ(a.trace_digest, f32.trace_digest)
        << "precision leaked into the fault schedule or error typing";
  }
}

// Seeded replay at a fixed low precision: two runs with the same seed
// produce the same full trace digest, probability bits included — the
// quantized pipeline is as deterministic as the fp32 one.
TEST_F(ChaosGraph, LowPrecisionAdmissionStormReplaysSeeded) {
  const std::string fp = "serve.queue.admit=prob(0.4)*error";
  const auto a = run_serialized(core::Precision::kF16, true, fp, 2024,
                                serialized_options(), 8);
  const auto b = run_serialized(core::Precision::kF16, true, fp, 2024,
                                serialized_options(), 8);
  ASSERT_EQ(a.responses.size(), 8u);
  EXPECT_EQ(a.trace_digest, b.trace_digest)
      << "fp16 serve replay must be seeded-deterministic";
}

// Mid-stream --precision toggles on ONE live server: every request
// resolves, and each request's probability bits equal a run fully
// pinned at that request's precision — the storage format is sampled
// once per request, so a toggle can never mix formats (or produce a
// hybrid result) within one request.
TEST_F(ChaosGraph, MidStreamPrecisionToggleNeverMixesFormats) {
  using core::Precision;
  const Precision cycle[6] = {Precision::kF32,  Precision::kF16,
                              Precision::kInt8, Precision::kBf16,
                              Precision::kF16,  Precision::kInt8};
  fault::Registry::instance().set_seed(1);
  const auto vols = tiny_volumes(6);
  std::vector<serve::DiagnoseResponse> toggled;
  {
    graph::FusionGuard fguard(true);
    serve::InferenceServer server(tiny_pipeline(), serialized_options());
    for (std::size_t i = 0; i < 6; ++i) {
      core::PrecisionGuard pguard(cycle[i]);
      auto fut = server.submit(vols[i].hu);
      ASSERT_EQ(fut.wait_for(30s), std::future_status::ready)
          << "request " << i << " lost across a precision toggle";
      toggled.push_back(fut.get());
    }
    server.shutdown();
  }
  for (const Precision prec :
       {Precision::kF32, Precision::kF16, Precision::kBf16,
        Precision::kInt8}) {
    const auto pinned = run_serialized(prec, true, "", 1,
                                       serialized_options(), 6);
    ASSERT_EQ(pinned.responses.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      if (cycle[i] != prec) continue;
      ASSERT_EQ(toggled[i].status, serve::RequestStatus::kOk)
          << toggled[i].error;
      const double a = toggled[i].diagnosis.probability;
      const double b = pinned.responses[i].diagnosis.probability;
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
          << "request " << i << " at " << core::precision_name(cycle[i])
          << ": bits differ from a run pinned at that precision — the "
             "toggle mixed storage formats within the request";
    }
  }
}

}  // namespace
}  // namespace ccovid
