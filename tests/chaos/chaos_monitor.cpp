// Monitoring-mode chaos suite: the result cache + session store
// (serve/monitor.h) under seeded fault schedules and a real
// worker-process kill. The invariants the monitor-determinism CI job
// gates on:
//
//   - NO STALE BITS, EVER: whatever happens to the cache (poison,
//     forced eviction, lookup outage, invalidate racing an insert,
//     capacity thrashing), every response carries bits identical to a
//     fault-free recomputation. Faults may cost hits, never correctness.
//   - NO LOST / DOUBLE-COUNTED DELTAS: across a SIGKILL of a worker
//     holding warm sessions, every patient's scan ordinals stay exactly
//     1..N and the failed-over follow-up deltas are bit-identical to
//     the arithmetic on the baseline burdens — the front door owns the
//     ordinals, worker state is only a cache.
//
// Seeded schedules + serialized submission make the fault traces
// bitwise-reproducible, checked with FNV digests as in chaos_serve.
// The ctest TIMEOUT is the deadlock backstop.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/digest.h"
#include "data/phantom.h"
#include "fault/failpoint.h"
#include "net/socket.h"
#include "net/transport.h"
#include "nn/layers.h"
#include "serve/monitor.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "serve/shard_spawn.h"

#ifndef CCOVID_SERVE_BIN
#error "chaos_monitor must be built with CCOVID_SERVE_BIN=<path>"
#endif

namespace ccovid {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> tiny_pipeline() {
  nn::seed_init_rng(3);
  auto enh = std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

std::vector<data::PhantomVolume> tiny_volumes(std::size_t n) {
  Rng rng(11);
  std::vector<data::PhantomVolume> vols;
  for (std::size_t i = 0; i < n; ++i) {
    vols.push_back(data::make_volume(2, 8, i % 2 == 1, rng));
  }
  return vols;
}

serve::ServerOptions monitored_options(std::size_t cache_capacity = 256) {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 1;
  opt.batch_delay = std::chrono::microseconds(100);
  opt.monitor = true;
  opt.monitor_opts.cache_capacity = cache_capacity;
  return opt;
}

struct MonitorScenario {
  std::vector<serve::DiagnoseResponse> responses;
  std::string stats_json;
  /// FNV-1a over (status, cache_hit, seq, probability, burden, delta)
  /// per response — the bitwise witness every fault schedule must
  /// reproduce against the fault-free run.
  std::uint64_t trace_digest = kFnv1aOffset;
  std::uint64_t hits = 0;
  std::uint64_t poisoned_dropped = 0;
  std::uint64_t forced_evictions = 0;
  std::uint64_t degraded_lookups = 0;
  std::uint64_t stale_inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t session_dropped = 0;
};

/// Serialized monitored scans: volume `order[i]` is submitted as a scan
/// of patient 100 + order[i] (same volume -> same patient -> telescoping
/// series), each waited before the next — seeded schedules replay
/// identically.
MonitorScenario run_monitored(const std::string& failpoints,
                              std::uint64_t seed, serve::ServerOptions opt,
                              const std::vector<data::PhantomVolume>& vols,
                              const std::vector<std::size_t>& order) {
  fault::Registry::instance().reset();
  fault::Registry::instance().set_seed(seed);
  MonitorScenario out;
  {
    serve::InferenceServer server(tiny_pipeline(), opt);
    fault::Registry::instance().configure(failpoints);
    for (std::size_t i = 0; i < order.size(); ++i) {
      serve::ServeOptions so;
      so.patient_id = 100 + order[i];
      auto fut = server.submit(vols[order[i]].hu, so);
      if (fut.wait_for(30s) != std::future_status::ready) {
        ADD_FAILURE() << "scan " << i << " never resolved (lost/wedged)";
        fault::Registry::instance().reset();
        return out;
      }
      out.responses.push_back(fut.get());
    }
    out.stats_json = server.stats_json();
    if (server.monitor() != nullptr) {
      const auto& c = server.monitor()->cache();
      out.hits = c.hits.load();
      out.poisoned_dropped = c.poisoned_dropped.load();
      out.forced_evictions = c.forced_evictions.load();
      out.degraded_lookups = c.degraded_lookups.load();
      out.stale_inserts = c.stale_inserts.load();
      out.evictions = c.evictions.load();
      out.session_dropped = server.monitor()->sessions().dropped.load();
    }
    server.shutdown();
  }
  for (const auto& r : out.responses) {
    const unsigned char status = static_cast<unsigned char>(r.status);
    const unsigned char hit = r.cache_hit ? 1 : 0;
    out.trace_digest = fnv1a64(&status, 1, out.trace_digest);
    out.trace_digest = fnv1a64(&hit, 1, out.trace_digest);
    out.trace_digest =
        fnv1a64(&r.scan_seq, sizeof(r.scan_seq), out.trace_digest);
    if (r.status == serve::RequestStatus::kOk) {
      out.trace_digest = fnv1a64(&r.diagnosis.probability, sizeof(double),
                                 out.trace_digest);
      out.trace_digest = fnv1a64(&r.infection_burden, sizeof(double),
                                 out.trace_digest);
      out.trace_digest =
          fnv1a64(&r.burden_delta, sizeof(double), out.trace_digest);
    }
  }
  fault::Registry::instance().reset();
  return out;
}

/// Per-response payload-bit comparison against the fault-free reference
/// run: same statuses, same probability/burden/delta BITS. cache_hit is
/// deliberately NOT compared — faults are allowed to turn hits into
/// recomputes, never to change the bits.
void expect_same_bits(const MonitorScenario& reference,
                      const MonitorScenario& faulted, const char* what) {
  ASSERT_EQ(reference.responses.size(), faulted.responses.size());
  for (std::size_t i = 0; i < reference.responses.size(); ++i) {
    const auto& a = reference.responses[i];
    const auto& b = faulted.responses[i];
    ASSERT_EQ(b.status, serve::RequestStatus::kOk)
        << what << ": scan " << i << " failed: " << b.error;
    EXPECT_EQ(a.scan_seq, b.scan_seq) << what << " scan " << i;
    EXPECT_EQ(0, std::memcmp(&a.diagnosis.probability,
                             &b.diagnosis.probability, sizeof(double)))
        << what << ": probability bits diverged at scan " << i;
    EXPECT_EQ(0, std::memcmp(&a.infection_burden, &b.infection_burden,
                             sizeof(double)))
        << what << ": burden bits diverged at scan " << i;
    EXPECT_EQ(0, std::memcmp(&a.burden_delta, &b.burden_delta,
                             sizeof(double)))
        << what << ": delta bits diverged at scan " << i;
  }
}

/// Two passes over 4 distinct volumes: pass 1 computes, pass 2 would
/// hit a healthy cache. The order every schedule below replays.
std::vector<std::size_t> two_pass_order() {
  return {0, 1, 2, 3, 0, 1, 2, 3};
}

class ChaosMonitor : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

// Schedule 0 (fault-free reference): second pass hits, hits are bitwise
// identical to the first-pass computation, deltas are exactly zero
// (same volume re-scanned), and the whole trace replays.
TEST_F(ChaosMonitor, FaultFreeReferenceHitsAndReplays) {
  const auto vols = tiny_volumes(4);
  const auto a = run_monitored("", 1, monitored_options(), vols,
                               two_pass_order());
  ASSERT_EQ(a.responses.size(), 8u);
  EXPECT_EQ(a.hits, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& first = a.responses[i];
    const auto& second = a.responses[4 + i];
    ASSERT_EQ(first.status, serve::RequestStatus::kOk);
    ASSERT_EQ(second.status, serve::RequestStatus::kOk);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit) << "volume " << i;
    EXPECT_EQ(0, std::memcmp(&first.infection_burden,
                             &second.infection_burden, sizeof(double)));
    EXPECT_EQ(second.scan_seq, 2u);
    EXPECT_EQ(second.burden_delta, 0.0);
  }
  const auto b = run_monitored("", 1, monitored_options(), vols,
                               two_pass_order());
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Schedule 1: every lookup that finds an entry poisons it first — the
// self-digest check must drop each one and recompute. Zero hits, zero
// stale bits.
TEST_F(ChaosMonitor, PoisonStormNeverServesStaleBits) {
  const auto vols = tiny_volumes(4);
  const auto clean = run_monitored("", 1, monitored_options(), vols,
                                   two_pass_order());
  const std::string fp = "serve.cache.poison=every(1)*corrupt(3)";
  const auto a = run_monitored(fp, 7, monitored_options(), vols,
                               two_pass_order());
  expect_same_bits(clean, a, "poison");
  EXPECT_EQ(a.hits, 0u) << "every found entry was poisoned";
  EXPECT_EQ(a.poisoned_dropped, 4u);
  for (const auto& r : a.responses) EXPECT_FALSE(r.cache_hit);
  EXPECT_NE(a.stats_json.find("\"poisoned_dropped\":4"), std::string::npos)
      << a.stats_json;

  const auto b = run_monitored(fp, 7, monitored_options(), vols,
                               two_pass_order());
  EXPECT_EQ(a.trace_digest, b.trace_digest)
      << "seeded corruption must replay bitwise";
}

// Schedule 2: forced eviction of an entry at the moment of its hit —
// degrade to recompute exactly as if capacity had taken it.
TEST_F(ChaosMonitor, ForcedEvictionDegradesToRecompute) {
  const auto vols = tiny_volumes(4);
  const auto clean = run_monitored("", 1, monitored_options(), vols,
                                   two_pass_order());
  const auto a = run_monitored("serve.cache.evict=nth(2)", 1,
                               monitored_options(), vols, two_pass_order());
  expect_same_bits(clean, a, "forced-evict");
  EXPECT_EQ(a.forced_evictions, 1u);
  EXPECT_EQ(a.hits, 3u) << "one hit was converted into a recompute";
}

// Schedule 3: probabilistic lookup outage (backing store unreachable) —
// a degraded lookup is a MISS, never an error; recompute covers it and
// the seeded outage pattern replays.
TEST_F(ChaosMonitor, LookupOutageDegradesToRecompute) {
  const auto vols = tiny_volumes(4);
  const auto clean = run_monitored("", 1, monitored_options(), vols,
                                   two_pass_order());
  const std::string fp = "serve.cache.lookup=prob(0.5)*error";
  const auto a = run_monitored(fp, 2024, monitored_options(), vols,
                               two_pass_order());
  expect_same_bits(clean, a, "lookup-outage");
  EXPECT_GT(a.degraded_lookups, 0u);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
  }
  const auto b = run_monitored(fp, 2024, monitored_options(), vols,
                               two_pass_order());
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  const auto c = run_monitored(fp, 99, monitored_options(), vols,
                               two_pass_order());
  EXPECT_LE(c.hits, 4u);
  EXPECT_GE(c.hits + c.degraded_lookups, 4u)
      << "every second-pass lookup either hit or degraded";
}

// Schedule 4: an invalidation lands between a request's compute and its
// insert. The epoch check must drop that insert (stale_inserts), the
// next scan of the same volume recomputes under the new epoch, and no
// pre-invalidation bits survive — while the bits themselves never
// change (same weights).
TEST_F(ChaosMonitor, InvalidateMidRequestDropsTheRacingInsert) {
  const auto vols = tiny_volumes(4);
  const auto clean = run_monitored("", 1, monitored_options(), vols,
                                   two_pass_order());
  const auto a =
      run_monitored("serve.cache.invalidate=nth(1)", 1, monitored_options(),
                    vols, two_pass_order());
  expect_same_bits(clean, a, "invalidate-mid-request");
  EXPECT_EQ(a.stale_inserts, 1u)
      << "the racing insert must die on the epoch check";
  // Scan 0's insert was dropped and its key retired with the old epoch,
  // so its second pass is a miss; volumes 1..3 were inserted under the
  // new epoch and still hit.
  EXPECT_EQ(a.hits, 3u);
  EXPECT_FALSE(a.responses[4].cache_hit);
  EXPECT_NE(a.stats_json.find("\"stale_inserts\":1"), std::string::npos)
      << a.stats_json;
}

// Schedule 5: evict-under-load — a 2-entry cache thrashed by 4 distinct
// volumes over three passes. Eviction churn costs hits, never bits, and
// the session deltas stay exact through it.
TEST_F(ChaosMonitor, CapacityThrashingStaysBitwiseCorrect) {
  const auto vols = tiny_volumes(4);
  std::vector<std::size_t> order;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t v = 0; v < 4; ++v) order.push_back(v);
  }
  const auto big = run_monitored("", 1, monitored_options(256), vols, order);
  const auto tiny = run_monitored("", 1, monitored_options(2), vols, order);
  expect_same_bits(big, tiny, "thrash");
  EXPECT_GT(tiny.evictions, 0u);
  EXPECT_LT(tiny.hits, big.hits);
  for (std::size_t i = 8; i < 12; ++i) {
    EXPECT_EQ(tiny.responses[i].scan_seq, 3u);
    EXPECT_EQ(tiny.responses[i].burden_delta, 0.0);
  }
}

// Schedule 6: a worker-local session record dropped mid-series
// (serve.session.drop). WITHOUT a routing authority the series restarts
// at 1 — typed, counted, deterministic (the single-process contract).
// The sharded test below proves the authoritative prior erases exactly
// this loss.
TEST_F(ChaosMonitor, SessionDropWithoutAuthorityRestartsTheSeries) {
  const auto vols = tiny_volumes(2);
  const std::vector<std::size_t> order = {0, 0, 0, 0};
  const std::string fp = "serve.session.drop=nth(3)";
  const auto a = run_monitored(fp, 1, monitored_options(), vols, order);
  ASSERT_EQ(a.responses.size(), 4u);
  EXPECT_EQ(a.session_dropped, 1u);
  EXPECT_EQ(a.responses[0].scan_seq, 1u);
  EXPECT_EQ(a.responses[1].scan_seq, 2u);
  EXPECT_EQ(a.responses[2].scan_seq, 1u) << "record dropped -> restart";
  EXPECT_EQ(a.responses[3].scan_seq, 2u);
  const auto b = run_monitored(fp, 1, monitored_options(), vols, order);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// ------------------------------------------------- worker-kill (real)

constexpr std::uint64_t kSeed = 3;

struct SpawnedWorker {
  int pid = 0;
  std::string path;
};

SpawnedWorker spawn_monitor_worker(int shard, double stall_ms) {
  SpawnedWorker w;
  w.path = "/tmp/ccovid_chaos_monitor_" + std::to_string(::getpid()) + "_" +
           std::to_string(shard) + ".sock";
  std::vector<std::string> argv = {
      CCOVID_SERVE_BIN, "--role", "worker",
      "--listen", "unix:" + w.path,
      "--shard-id", std::to_string(shard),
      "--seed", std::to_string(kSeed),
      "--workers", "1", "--batch", "2",
      "--recv-timeout", "2",
      "--accept-timeout", "20",
      "--monitor",
  };
  if (stall_ms > 0) {
    argv.push_back("--stall-ms");
    argv.push_back(std::to_string(stall_ms));
  }
  w.pid = serve::spawn_process(argv);
  return w;
}

void reap(const SpawnedWorker& w, double timeout_s = 10.0) {
  if (serve::wait_process(w.pid, timeout_s) == -1) {
    serve::kill_process(w.pid, SIGKILL);
    serve::wait_process(w.pid, 5.0);
  }
  ::unlink(w.path.c_str());
}

// SIGKILL a real worker process between a patient cohort's baseline and
// follow-up scans. The follow-ups fail over to the survivor — a fresh
// process with COLD sessions — yet every delta must come out
// bit-identical to the arithmetic on the baseline burdens, every
// ordinal exactly once: the front door's authoritative priors rebuild
// the history, so worker death loses no deltas and double-counts none.
TEST_F(ChaosMonitor, WorkerKillWithWarmSessionsPreservesDeltas) {
  constexpr std::size_t kPatients = 6;
  const auto vols = tiny_volumes(2 * kPatients);

  // Expected burden bits from the worker-twin pipeline (same config +
  // seed as the binary's default, see tools/ccovid_serve.cpp).
  std::vector<double> expected(vols.size());
  {
    nn::DDnetConfig ncfg;
    ncfg.base_channels = 8;
    ncfg.growth = 8;
    ncfg.levels = 2;
    ncfg.dense_layers = 2;
    nn::seed_init_rng(kSeed);
    auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
    auto seg = std::make_shared<pipeline::SegmentationAI>();
    auto cls = std::make_shared<pipeline::ClassificationAI>();
    enh->network().set_training(false);
    seg->network().set_training(false);
    cls->network().set_training(false);
    auto pipe = std::make_shared<const pipeline::ComputeCovid19Pipeline>(
        enh, seg, cls);
    serve::ServerOptions lopt;
    lopt.workers = 1;
    lopt.max_batch = 2;
    serve::InferenceServer local(pipe, lopt);
    std::vector<std::future<serve::DiagnoseResponse>> fs;
    for (const auto& v : vols) fs.push_back(local.submit(v.hu, {}));
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const auto r = fs[i].get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk);
      expected[i] = r.diagnosis.infection_burden;
    }
    local.shutdown();
  }

  SpawnedWorker w0 = spawn_monitor_worker(0, 20.0);
  SpawnedWorker w1 = spawn_monitor_worker(1, 20.0);
  {
    std::vector<std::unique_ptr<net::Transport>> ts;
    ts.push_back(net::connect_endpoint(
        net::Endpoint::parse("unix:" + w0.path), 15.0, 0, 0));
    ts.push_back(net::connect_endpoint(
        net::Endpoint::parse("unix:" + w1.path), 15.0, 0, 1));
    serve::FrontDoorOptions fopt;
    fopt.recv_timeout_s = 5.0;
    fopt.heartbeat_interval_s = 0.05;
    fopt.heartbeat_miss_limit = 10;
    fopt.monitor = true;
    serve::FrontDoor front(std::move(ts), fopt);

    // Round 1: baselines, collected fully (the sequential-per-patient
    // contract) so every session is warm before the kill.
    std::vector<std::future<serve::DiagnoseResponse>> fs;
    for (std::size_t p = 0; p < kPatients; ++p) {
      fs.push_back(front.submit(1 + p, vols[p].hu, {}));
    }
    for (std::size_t p = 0; p < kPatients; ++p) {
      const auto r = fs[p].get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
      EXPECT_EQ(r.scan_seq, 1u);
      ASSERT_EQ(0, std::memcmp(&expected[p], &r.infection_burden,
                               sizeof(double)))
          << "baseline burden bits diverged for patient " << p;
    }
    EXPECT_EQ(front.monitor_patients(), kPatients);

    // Round 2: follow-ups in flight, then SIGKILL one worker — its
    // patients' scans (warm sessions and all) must fail over.
    fs.clear();
    for (std::size_t p = 0; p < kPatients; ++p) {
      fs.push_back(front.submit(1 + p, vols[kPatients + p].hu, {}));
    }
    ASSERT_TRUE(serve::kill_process(w0.pid, SIGKILL));
    for (std::size_t p = 0; p < kPatients; ++p) {
      const auto r = fs[p].get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk)
          << "patient " << p << " lost its follow-up: " << r.error;
      EXPECT_EQ(r.scan_seq, 2u)
          << "ordinal lost or double-counted for patient " << p;
      ASSERT_EQ(0, std::memcmp(&expected[kPatients + p], &r.infection_burden,
                               sizeof(double)));
      const double want_delta = expected[kPatients + p] - expected[p];
      EXPECT_EQ(0, std::memcmp(&want_delta, &r.burden_delta, sizeof(double)))
          << "delta bits diverged for patient " << p;
      EXPECT_EQ(0, std::memcmp(&want_delta, &r.baseline_delta,
                               sizeof(double)))
          << "baseline delta bits diverged for patient " << p;
    }
    EXPECT_GE(front.failed_over(), 1u) << "kill landed after the drain?";
    EXPECT_EQ(front.alive_shards(), 1);
    EXPECT_EQ(front.monitor_patients(), kPatients);
    front.shutdown();
  }
  reap(w0);
  reap(w1);
}

}  // namespace
}  // namespace ccovid
