// Overlap chaos suite: faults injected WHILE bucketed allreduce overlaps
// the still-running async backward pass (dist/ddp.cpp overlap mode).
// The invariant under fire is the same as for plain DDP — every rank
// surfaces the SAME typed error (StageError for poisoned gradients), no
// collective hangs, and the optimizer never half-applies a step — plus
// one more: the overlapped schedule must be observationally equivalent
// to the sequential reduce-after-backward schedule. Completed runs end
// on identical bits, faulted runs end in identical outcomes, and the
// step-level fault schedule fires identically in both modes at the same
// registry seed.
//
// Parity is asserted through STEP-level failpoints (dist.rank.straggler,
// dist.grad.corrupt) only: transport-level schedules like
// dist.msg.drop=nth(K) count individual sends, and the overlapped mode
// legitimately makes a different number of sends per step (one per
// bucket), so wire-indexed specs address different packets per mode by
// design.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "autograd/losses.h"
#include "core/digest.h"
#include "core/finite.h"
#include "core/parallel.h"
#include "core/tensor.h"
#include "dist/comm.h"
#include "dist/ddp.h"
#include "fault/failpoint.h"
#include "nn/ddnet.h"
#include "nn/layers.h"
#include "trace/trace.h"

namespace ccovid {
namespace {

using dist::CommError;
using dist::DdpConfig;
using dist::DdpTrainer;
using dist::EpochStats;

std::shared_ptr<nn::Module> tiny_ddnet_factory() {
  return std::make_shared<nn::DDnet>(nn::DDnetConfig::tiny());
}

struct ToyData {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;
};

ToyData make_toy_data(index_t count, index_t hw, std::uint64_t seed) {
  Rng rng(seed);
  ToyData d;
  for (index_t i = 0; i < count; ++i) {
    Tensor target({1, 1, hw, hw});
    rng.fill_uniform(target, 0.2, 0.8);
    Tensor input = target.clone();
    for (index_t j = 0; j < input.numel(); ++j) {
      input.data()[j] += static_cast<real_t>(rng.gaussian(0, 0.1));
    }
    d.inputs.push_back(std::move(input));
    d.targets.push_back(std::move(target));
  }
  return d;
}

DdpTrainer::LossFn toy_loss(const ToyData& data) {
  return [&data](nn::Module& model, int /*rank*/,
                 const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var total;
    for (index_t s : samples) {
      autograd::Var x(data.inputs[s].clone());
      autograd::Var pred = net.forward(x);
      autograd::Var loss =
          autograd::enhancement_loss(pred, data.targets[s], 0.1f, 11, 1);
      total = total.defined() ? autograd::add(total, loss) : loss;
    }
    return autograd::mul_scalar(total,
                                1.0f / static_cast<real_t>(samples.size()));
  };
}

std::uint64_t params_digest(nn::Module& m) {
  std::uint64_t h = kFnv1aOffset;
  for (const auto& p : m.parameters()) h = fnv1a64(p.value(), h);
  return h;
}

/// What one seeded scenario run produced, reduced to comparable bits.
struct Outcome {
  enum class Kind { kCompleted, kStageError, kCommError, kOtherError };
  Kind kind = Kind::kOtherError;
  std::string stage;                    ///< StageError::stage()
  int comm_kind = -1;                   ///< static_cast<int>(CommError::Kind)
  std::uint64_t digest = kFnv1aOffset;  ///< loss bits + per-rank params
  bool lock_step = false;               ///< rank params bitwise identical
  /// fires() of the STEP-level failpoints, in fixed name order — the
  /// fault-schedule digest compared between overlap modes.
  std::uint64_t fault_digest = kFnv1aOffset;
  /// Per-rank post-run parameter digests (no-half-step assertions).
  std::vector<std::uint64_t> rank_params;
};

/// One full scenario: fresh registry seed, fresh identically-seeded
/// model replicas, clean broadcast, THEN the fault schedule, one epoch.
/// Never hangs: every fault path either completes or throws.
/// Pins the process-global lane count for the scenario: rank threads
/// resolve their backward width from it (a per-thread ParallelPin never
/// reaches them), and on a single-core runner the default of 1 would
/// quietly turn every "overlapped" scenario into an inline drain.
class GlobalWidth {
 public:
  explicit GlobalWidth(int n) : prev_(num_threads()) { set_num_threads(n); }
  ~GlobalWidth() { set_num_threads(prev_); }

 private:
  int prev_;
};

Outcome run_overlap_scenario(const std::string& failpoints,
                             std::uint64_t seed, DdpConfig cfg) {
  GlobalWidth width(4);
  auto& reg = fault::Registry::instance();
  reg.reset();
  reg.set_seed(seed);
  Outcome out;
  nn::seed_init_rng(100);
  const ToyData data = make_toy_data(4, 16, 101);
  DdpTrainer trainer(tiny_ddnet_factory, cfg);  // clean weight broadcast
  reg.configure(failpoints);
  Rng rng(102);
  try {
    const EpochStats stats = trainer.train_epoch(4, toy_loss(data), rng);
    out.kind = Outcome::Kind::kCompleted;
    out.digest = fnv1a64(&stats.mean_loss, sizeof(stats.mean_loss));
  } catch (const StageError& e) {
    out.kind = Outcome::Kind::kStageError;
    out.stage = e.stage();
    out.digest = fnv1a64(out.stage.data(), out.stage.size());
  } catch (const CommError& e) {
    out.kind = Outcome::Kind::kCommError;
    out.comm_kind = static_cast<int>(e.kind());
    out.digest = fnv1a64(&out.comm_kind, sizeof(out.comm_kind));
  }
  for (int r = 0; r < cfg.world_size; ++r) {
    out.rank_params.push_back(params_digest(trainer.model(r)));
    out.digest = fnv1a64(&out.rank_params.back(),
                         sizeof(out.rank_params.back()), out.digest);
  }
  out.lock_step = true;
  for (int r = 1; r < cfg.world_size; ++r) {
    out.lock_step = out.lock_step && out.rank_params[static_cast<std::size_t>(
                                         r)] == out.rank_params[0];
  }
  for (const char* name : {"dist.rank.straggler", "dist.grad.corrupt"}) {
    const std::uint64_t fires = reg.handle(name).fires();
    out.fault_digest = fnv1a64(name, std::strlen(name), out.fault_digest);
    out.fault_digest = fnv1a64(&fires, sizeof(fires), out.fault_digest);
  }
  reg.reset();
  return out;
}

DdpConfig overlap_config(bool overlap) {
  DdpConfig cfg;
  cfg.world_size = 2;
  cfg.per_worker_batch = 1;
  cfg.lr = 1e-3;
  cfg.overlap = overlap;
  // Small bucket budget => several buckets in flight per step, so a
  // mid-step fault genuinely lands between bucket reductions.
  cfg.bucket_bytes = 4096;
  return cfg;
}

class ChaosOverlap : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

// Schedule 1: rank 1 straggles mid-epoch while rank 0's buckets are
// already on the wire. Both modes must complete lock-step, land on the
// SAME bits as each other, and replay bitwise.
TEST_F(ChaosOverlap, StragglerKeepsModesBitwiseEquivalent) {
  const std::string fp = "dist.rank.straggler=thread(1)*every(2)*delay(5ms)";
  const Outcome ov = run_overlap_scenario(fp, 21, overlap_config(true));
  ASSERT_EQ(ov.kind, Outcome::Kind::kCompleted);
  EXPECT_TRUE(ov.lock_step);
  const Outcome seq = run_overlap_scenario(fp, 21, overlap_config(false));
  ASSERT_EQ(seq.kind, Outcome::Kind::kCompleted);
  EXPECT_TRUE(seq.lock_step);
  EXPECT_EQ(ov.digest, seq.digest)
      << "overlapped and sequential gradient sync diverged under a "
         "straggler";
  const Outcome replay = run_overlap_scenario(fp, 21, overlap_config(true));
  EXPECT_EQ(ov.digest, replay.digest) << "overlapped run must replay bitwise";
}

// Schedule 2: a NaN-poisoned gradient reaches the bucketed allreduce
// mid-overlap. The sum spreads the poison, so with check_finite_grads
// EVERY rank throws the SAME typed StageError at the same bucket — no
// hang, no rank left waiting on a collective the other rank abandoned.
TEST_F(ChaosOverlap, PoisonedBucketRaisesSameTypedErrorInBothModes) {
  auto mk = [](bool overlap) {
    auto cfg = overlap_config(overlap);
    cfg.check_finite_grads = true;
    return cfg;
  };
  const std::string fp = "dist.grad.corrupt=thread(0)*once*nan(4)";
  const Outcome ov = run_overlap_scenario(fp, 23, mk(true));
  ASSERT_EQ(ov.kind, Outcome::Kind::kStageError);
  EXPECT_EQ(ov.stage, "dist.grad.allreduce");
  const Outcome seq = run_overlap_scenario(fp, 23, mk(false));
  ASSERT_EQ(seq.kind, Outcome::Kind::kStageError);
  EXPECT_EQ(seq.stage, ov.stage)
      << "modes must surface the fault as the same typed stage";
  const Outcome replay = run_overlap_scenario(fp, 23, mk(true));
  EXPECT_EQ(replay.kind, Outcome::Kind::kStageError);
  EXPECT_EQ(replay.digest, ov.digest);
}

// A fault that aborts the step mid-overlap must leave NO trace of that
// step in the weights: some buckets were already allreduced when the
// poison surfaced, but the optimizer gates on ALL buckets + backward
// completion, so every rank still holds the weights of the last clean
// step — here the initial broadcast state, bitwise.
TEST_F(ChaosOverlap, FaultedStepIsNeverHalfApplied) {
  auto cfg = overlap_config(true);
  cfg.check_finite_grads = true;
  // Poison the FIRST step: the pre-step weights are then exactly the
  // fresh broadcast state, which a clean trainer reproduces.
  const std::string fp = "dist.grad.corrupt=thread(0)*nth(1)*nan(4)";
  const Outcome faulted = run_overlap_scenario(fp, 29, cfg);
  ASSERT_EQ(faulted.kind, Outcome::Kind::kStageError);
  EXPECT_TRUE(faulted.lock_step)
      << "a half-applied step would desynchronize the replicas";

  fault::Registry::instance().reset();
  nn::seed_init_rng(100);
  DdpTrainer pristine(tiny_ddnet_factory, cfg);
  for (int r = 0; r < cfg.world_size; ++r) {
    EXPECT_EQ(faulted.rank_params[static_cast<std::size_t>(r)],
              params_digest(pristine.model(r)))
        << "rank " << r
        << " weights moved despite the step never completing";
  }
}

// The step-level fault schedule itself must be mode-invariant: at the
// same registry seed, the straggler and corrupt failpoints fire the
// same number of times whether gradient sync overlaps backward or runs
// after it (both modes evaluate them once per step, on the rank
// thread). Run WITHOUT the finite check so the corrupt path completes
// and the full schedule plays out in both modes.
TEST_F(ChaosOverlap, FaultTraceDigestIsEqualAcrossModes) {
  const std::string fp =
      "dist.rank.straggler=thread(1)*every(2)*delay(1ms);"
      "dist.grad.corrupt=thread(0)*every(2)*corrupt(2)";
  const Outcome ov = run_overlap_scenario(fp, 31, overlap_config(true));
  const Outcome seq = run_overlap_scenario(fp, 31, overlap_config(false));
  ASSERT_EQ(ov.kind, Outcome::Kind::kCompleted);
  ASSERT_EQ(seq.kind, Outcome::Kind::kCompleted);
  EXPECT_EQ(ov.fault_digest, seq.fault_digest)
      << "step-level failpoints fired differently between overlap modes";
  // The corrupted BITS differ between modes by design — corrupt_bytes
  // picks offsets from the target buffer, and overlap poisons bucket
  // 0's segment where sequential poisons the whole flat gradient. What
  // must hold in both: the corruption still reaches every rank through
  // the sum, keeping the replicas lock-step rather than silently split.
  EXPECT_TRUE(ov.lock_step);
  EXPECT_TRUE(seq.lock_step);
  const Outcome replay = run_overlap_scenario(fp, 31, overlap_config(true));
  EXPECT_EQ(ov.digest, replay.digest)
      << "the corrupted run itself must replay bitwise";
}

// Trace evidence under fire: with level-2 tracing on, an overlapped
// epoch with a straggler armed records the step phases — ddp.compute
// and ddp.apply on every rank lane, plus one ddp.allreduce.bucket span
// per bucket per step nested under ddp.allreduce. The bucket count
// pins that gradient sync really ran bucket-wise (the sequential mode
// reduces once and records no bucket spans).
TEST_F(ChaosOverlap, TraceRecordsBucketedAllreducePhases) {
  auto cfg = overlap_config(true);
  trace::clear();
  trace::set_level(2);
  const Outcome ov = run_overlap_scenario(
      "dist.rank.straggler=thread(1)*once*delay(2ms)", 37, cfg);
  trace::set_level(0);
  ASSERT_EQ(ov.kind, Outcome::Kind::kCompleted);

  nn::seed_init_rng(100);
  DdpTrainer probe(tiny_ddnet_factory, cfg);
  const std::size_t n_buckets = probe.buckets().size();
  ASSERT_GT(n_buckets, 1u) << "bucket budget must split the tiny model";

  const trace::Snapshot snap = trace::snapshot();
  std::size_t compute = 0, apply = 0, bucket_spans = 0, engine_nodes = 0;
  std::set<std::uint64_t> lanes;  // correlation ids of the rank threads
  for (const trace::Event& e : snap.events) {
    const std::string name = e.name ? e.name : "";
    if (name == "ddp.compute") {
      ++compute;
      lanes.insert(e.id);
    } else if (name == "ddp.apply") {
      ++apply;
    } else if (name == "ddp.allreduce.bucket") {
      ++bucket_spans;
    } else if (name == "autograd.node") {
      ++engine_nodes;
    }
  }
  // 4 samples, world 2, batch 1 => 2 steps per rank.
  const std::size_t steps_per_rank = 2, world = 2;
  EXPECT_EQ(compute, steps_per_rank * world);
  EXPECT_EQ(apply, steps_per_rank * world);
  EXPECT_EQ(bucket_spans, n_buckets * steps_per_rank * world)
      << "every bucket's allreduce must be its own traced span";
  EXPECT_GT(engine_nodes, 0u)
      << "level-2 tracing must record the async engine's node spans";
  EXPECT_EQ(lanes, (std::set<std::uint64_t>{1, 2}))
      << "each rank's step phases must land on its own correlation lane";
  trace::clear();
}

}  // namespace
}  // namespace ccovid
