// Serve-runtime chaos suite: runs the full InferenceServer loop under
// seeded failpoint schedules and asserts the invariants that matter —
// every admitted request gets exactly one response (none lost), faults
// surface as typed statuses (never hangs), shutdown always drains, and
// fault-free requests still complete. Five of the scenarios are
// value-deterministic: single worker, serialized submission, and
// seed-driven schedules make the full (status, degraded, retries,
// probability) trace bitwise-reproducible, which each test checks by
// running its scenario twice and comparing FNV-1a trace digests.
//
// The ctest TIMEOUT on this binary is the deadlock backstop: a hung
// drain or lost promise fails the suite instead of wedging CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/digest.h"
#include "data/phantom.h"
#include "fault/failpoint.h"
#include "nn/layers.h"
#include "serve/server.h"
#include "trace/trace.h"

namespace ccovid {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> tiny_pipeline() {
  nn::seed_init_rng(3);
  auto enh = std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

std::vector<data::PhantomVolume> tiny_volumes(std::size_t n) {
  Rng rng(11);
  std::vector<data::PhantomVolume> vols;
  for (std::size_t i = 0; i < n; ++i) {
    vols.push_back(data::make_volume(2, 8, i % 2 == 1, rng));
  }
  return vols;
}

struct ScenarioResult {
  std::vector<serve::DiagnoseResponse> responses;
  std::string stats_json;
  /// FNV-1a over the per-request (status, degraded, retries,
  /// probability-bits) trace — the bitwise-reproducibility witness.
  std::uint64_t trace_digest = kFnv1aOffset;
};

// Submits `n` requests strictly one-at-a-time (wait for each response
// before the next submit): with workers=1 and max_batch=1 every
// failpoint evaluation happens in a deterministic order, so seeded
// schedules replay identically. Responses must arrive within 30s each —
// a miss means a lost or wedged request.
ScenarioResult run_serialized(const std::string& failpoints,
                              std::uint64_t seed, serve::ServerOptions opt,
                              std::size_t n, bool use_enhancement = true) {
  fault::Registry::instance().reset();
  fault::Registry::instance().set_seed(seed);
  ScenarioResult out;
  const auto vols = tiny_volumes(n);
  {
    serve::InferenceServer server(tiny_pipeline(), opt);
    fault::Registry::instance().configure(failpoints);
    for (std::size_t i = 0; i < n; ++i) {
      serve::ServeOptions so;
      so.use_enhancement = use_enhancement;
      auto fut = server.submit(vols[i].hu, so);
      if (fut.wait_for(30s) != std::future_status::ready) {
        ADD_FAILURE() << "request " << i << " never resolved (lost/wedged)";
        fault::Registry::instance().reset();
        return out;
      }
      out.responses.push_back(fut.get());
    }
    out.stats_json = server.stats_json();
    server.shutdown();
  }
  for (const auto& r : out.responses) {
    const unsigned char status = static_cast<unsigned char>(r.status);
    const unsigned char degraded = r.degraded ? 1 : 0;
    out.trace_digest = fnv1a64(&status, 1, out.trace_digest);
    out.trace_digest = fnv1a64(&degraded, 1, out.trace_digest);
    out.trace_digest = fnv1a64(&r.retries, sizeof(r.retries),
                               out.trace_digest);
    if (r.status == serve::RequestStatus::kOk) {
      const double p = r.diagnosis.probability;
      out.trace_digest = fnv1a64(&p, sizeof(p), out.trace_digest);
    }
  }
  fault::Registry::instance().reset();
  return out;
}

serve::ServerOptions serialized_options() {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 1;
  opt.batch_delay = std::chrono::microseconds(100);
  return opt;
}

class ChaosServe : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

// Schedule 1: probabilistic admission rejections. Every request still
// resolves (rejected OR completed), and the seeded reject pattern is
// identical across runs.
TEST_F(ChaosServe, AdmissionRejectionStormIsSeedDeterministic) {
  const std::string fp = "serve.queue.admit=prob(0.4)*error";
  const auto a = run_serialized(fp, 2024, serialized_options(), 12);
  ASSERT_EQ(a.responses.size(), 12u);
  std::size_t rejected = 0, completed = 0;
  for (const auto& r : a.responses) {
    ASSERT_TRUE(r.status == serve::RequestStatus::kRejected ||
                r.status == serve::RequestStatus::kOk)
        << "unexpected status " << serve::to_string(r.status);
    (r.status == serve::RequestStatus::kRejected ? rejected : completed)++;
  }
  EXPECT_GT(rejected, 0u);  // p=0.4 over 12 submissions
  EXPECT_GT(completed, 0u);
  EXPECT_NE(a.stats_json.find("\"serve.queue.admit\""), std::string::npos)
      << "injected faults must be attributable in stats: " << a.stats_json;

  const auto b = run_serialized(fp, 2024, serialized_options(), 12);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  const auto c = run_serialized(fp, 77, serialized_options(), 12);
  EXPECT_NE(a.trace_digest, c.trace_digest) << "seed must steer the storm";
}

// Schedule 2: one transient execution fault absorbed by retry — clients
// never see it, stats do.
TEST_F(ChaosServe, TransientExecFaultAbsorbedByRetry) {
  auto opt = serialized_options();
  opt.max_retries = 2;
  opt.retry_backoff = std::chrono::milliseconds(1);
  const std::string fp = "serve.worker.exec=nth(2)*error";
  const auto a = run_serialized(fp, 5, opt, 4);
  ASSERT_EQ(a.responses.size(), 4u);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
    EXPECT_FALSE(r.degraded);
  }
  // Exactly one batch needed exactly one retry.
  EXPECT_NE(a.stats_json.find("\"retried\":1"), std::string::npos)
      << a.stats_json;
  EXPECT_NE(a.stats_json.find("\"completed\":4"), std::string::npos);

  const auto b = run_serialized(fp, 5, opt, 4);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Schedule 3: sticky NaN injection after the enhancement stage — the
// finite_check guard turns it into StageError, retries keep failing,
// and graceful degradation reruns without enhancement. Clients get
// valid (finite) but degraded=true responses.
TEST_F(ChaosServe, EnhanceNanTriggersGracefulDegradation) {
  auto opt = serialized_options();
  opt.max_retries = 1;
  opt.retry_backoff = std::chrono::milliseconds(1);
  opt.degrade_on_failure = true;
  const std::string fp = "pipeline.enhance.output=every(1)*nan(4)";
  const auto a = run_serialized(fp, 9, opt, 3);
  ASSERT_EQ(a.responses.size(), 3u);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
    EXPECT_TRUE(r.degraded);
    EXPECT_GE(r.retries, 1);
    EXPECT_TRUE(std::isfinite(r.diagnosis.probability));
  }
  EXPECT_NE(a.stats_json.find("\"degraded\":3"), std::string::npos)
      << a.stats_json;

  const auto b = run_serialized(fp, 9, opt, 3);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Schedule 4: sticky execution fault with retries exhausted and no
// degradation — every request fails TYPED (kError with the injected
// message), none lost, the server survives.
TEST_F(ChaosServe, ExhaustedRetriesFailTyped) {
  auto opt = serialized_options();
  opt.max_retries = 1;
  opt.retry_backoff = std::chrono::milliseconds(1);
  const std::string fp = "serve.worker.exec=error";
  const auto a = run_serialized(fp, 31, opt, 3);
  ASSERT_EQ(a.responses.size(), 3u);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kError);
    EXPECT_NE(r.error.find("injected execution fault"), std::string::npos);
  }
  EXPECT_NE(a.stats_json.find("\"failed\":3"), std::string::npos)
      << a.stats_json;

  const auto b = run_serialized(fp, 31, opt, 3);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Schedule 5: mixed probabilistic admission + execution faults with
// retry enabled — the compound seeded trace still replays bitwise.
TEST_F(ChaosServe, CompoundFaultScheduleIsSeedDeterministic) {
  auto opt = serialized_options();
  opt.max_retries = 3;
  opt.retry_backoff = std::chrono::milliseconds(1);
  const std::string fp =
      "serve.queue.admit=prob(0.25)*error;serve.worker.exec=prob(0.5)*error";
  const auto a = run_serialized(fp, 4242, opt, 10);
  ASSERT_EQ(a.responses.size(), 10u);
  for (const auto& r : a.responses) {
    ASSERT_TRUE(r.status == serve::RequestStatus::kRejected ||
                r.status == serve::RequestStatus::kOk ||
                r.status == serve::RequestStatus::kError)
        << serve::to_string(r.status);
  }
  const auto b = run_serialized(fp, 4242, opt, 10);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Schedule 6 (timing-sensitive — invariants only, no digest): the
// batcher sits on every formed batch longer than the request deadline.
// Worker-side triage must time the requests out; nothing may hang or
// get lost, and shutdown must still drain.
TEST_F(ChaosServe, BatcherFlushDelayDeadlineStorm) {
  fault::Registry::instance().set_seed(1);
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 2;
  opt.batch_delay = std::chrono::microseconds(200);
  opt.default_deadline = std::chrono::milliseconds(10);
  const auto vols = tiny_volumes(8);
  std::vector<std::future<serve::DiagnoseResponse>> futs;
  std::size_t timed_out = 0, completed = 0;
  {
    serve::InferenceServer server(tiny_pipeline(), opt);
    fault::Registry::instance().configure(
        "serve.batcher.flush=every(1)*delay(40ms)");
    for (std::size_t i = 0; i < 8; ++i) futs.push_back(server.submit(vols[i].hu));
    server.shutdown();  // must drain: every promise resolves below
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0ms), std::future_status::ready)
        << "request lost across shutdown drain";
    const auto r = f.get();
    ASSERT_TRUE(r.status == serve::RequestStatus::kTimedOut ||
                r.status == serve::RequestStatus::kOk)
        << serve::to_string(r.status);
    (r.status == serve::RequestStatus::kTimedOut ? timed_out : completed)++;
  }
  EXPECT_GT(timed_out, 0u) << "40ms flush stall vs 10ms deadline";
}

// Schedule 7 (timing-sensitive): a stalling worker plus the timed
// try_pop_for starvation probe — the probe reports kTimeout while the
// producer stalls instead of hanging, then delivers, then reports
// kClosed after close.
TEST_F(ChaosServe, TryPopForDetectsStarvationWithoutHanging) {
  fault::Registry::instance().set_seed(1);
  serve::BoundedQueue<int> q(4);
  // Starved queue: nothing arrives -> kTimeout, bounded wait.
  int item = 0;
  EXPECT_EQ(q.try_pop_for(item, 20ms), serve::PopState::kTimeout);

  fault::Registry::instance().configure(
      "serve.worker.stall=once*delay(30ms)");
  std::thread producer([&q] {
    fault::ScopedThreadOrdinal ordinal(0);
    CCOVID_FAILPOINT("serve.worker.stall");  // armed: 30ms stall
    int v = 7;
    q.push(std::move(v));
  });
  // Bounded polling loop: tolerates the stall without unbounded block.
  serve::PopState st = serve::PopState::kTimeout;
  for (int tries = 0; tries < 100 && st == serve::PopState::kTimeout;
       ++tries) {
    st = q.try_pop_for(item, 10ms);
  }
  producer.join();
  EXPECT_EQ(st, serve::PopState::kItem);
  EXPECT_EQ(item, 7);
  q.close();
  EXPECT_EQ(q.try_pop_for(item, 1ms), serve::PopState::kClosed);
}

// Schedule 8: tracing x fault injection. Every fired failpoint must
// surface in the trace as an instant named after its site and stamped
// with the per-fire seed (fault/failpoint.cpp emits it on fire), and
// the worker's resilience decisions emit serve.retry / serve.degraded
// events. The (site, seed) multiset replays bitwise under the same
// schedule seed.
TEST_F(ChaosServe, FiredFailpointsAppearInTraceWithSiteAndSeed) {
  auto opt = serialized_options();
  opt.max_retries = 1;
  opt.retry_backoff = std::chrono::milliseconds(1);
  opt.degrade_on_failure = true;
  const std::string fp = "pipeline.enhance.output=every(1)*nan(4)";

  struct TraceCounts {
    std::multiset<std::uint64_t> fire_seeds;
    std::size_t retries = 0;
    std::size_t degrades = 0;
  };
  auto traced_run = [&](ScenarioResult& res) {
    trace::set_level(1);
    trace::clear();
    res = run_serialized(fp, 9, opt, 3);
    const trace::Snapshot snap = trace::snapshot();
    trace::set_level(0);
    TraceCounts tc;
    for (const auto& e : snap.events) {
      if (e.name == nullptr) continue;
      if (std::strcmp(e.name, "pipeline.enhance.output") == 0) {
        EXPECT_EQ(e.kind, trace::Kind::kInstant);
        EXPECT_NE(e.id, 0u) << "fire must carry its per-fire seed";
        tc.fire_seeds.insert(e.id);
      } else if (std::strcmp(e.name, "serve.retry") == 0) {
        ++tc.retries;
      } else if (std::strcmp(e.name, "serve.degraded") == 0) {
        ++tc.degrades;
      }
    }
    return tc;
  };

  ScenarioResult a;
  const TraceCounts ta = traced_run(a);
  ASSERT_EQ(a.responses.size(), 3u);
  for (const auto& r : a.responses) {
    ASSERT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
    EXPECT_TRUE(r.degraded);
  }
  // Per request: attempt 1 fires, the retry fires again, the degraded
  // rerun skips enhancement entirely — two fires, one retry event, one
  // degraded event each.
  EXPECT_EQ(ta.fire_seeds.size(), 6u);
  EXPECT_EQ(ta.retries, 3u);
  EXPECT_EQ(ta.degrades, 3u);

  ScenarioResult b;
  const TraceCounts tb = traced_run(b);
  EXPECT_EQ(ta.fire_seeds, tb.fire_seeds)
      << "per-fire seeds must replay under the same schedule seed";
  EXPECT_EQ(tb.retries, 3u);
  EXPECT_EQ(tb.degrades, 3u);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// Fault counters must disappear from stats when nothing was armed —
// organic runs stay organic.
TEST_F(ChaosServe, NoFailpointsMeansNoFailpointStats) {
  const auto a = run_serialized("", 1, serialized_options(), 2);
  EXPECT_EQ(a.stats_json.find("failpoints"), std::string::npos);
  for (const auto& r : a.responses) {
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
    EXPECT_EQ(r.retries, 0);
  }
}

}  // namespace
}  // namespace ccovid
