// Sharded-serving chaos suite: the front door + worker-process runtime
// (serve/shard.h) under real process-level faults. Workers here are the
// actual ccovid_serve binary (CCOVID_SERVE_BIN, injected by CMake) in
// --role worker, so worker-kill is a genuine SIGKILL of a separate
// process and corrupt-response injection crosses a real Unix socket.
//
// Invariants under test:
//   - zero lost requests: every submitted future resolves, kOk when any
//     shard survives (failover), typed otherwise
//   - bitwise determinism: a failed-over diagnosis carries the same
//     probability bits the single-process server produces
//   - front-door restart: a worker whose front door vanishes without a
//     shutdown handshake re-accepts the next incarnation
//
// The ctest TIMEOUT is the deadlock backstop, as in the other chaos
// suites.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/digest.h"
#include "data/phantom.h"
#include "fault/failpoint.h"
#include "net/socket.h"
#include "net/transport.h"
#include "nn/layers.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "serve/shard_proto.h"
#include "serve/shard_spawn.h"

#ifndef CCOVID_SERVE_BIN
#error "chaos_shard must be built with CCOVID_SERVE_BIN=<path>"
#endif

namespace ccovid {
namespace {

constexpr std::uint64_t kSeed = 3;

/// Same architecture + seed as the worker binary's default pipeline
/// (tools/ccovid_serve.cpp build_pipeline), so in-process baselines are
/// bitwise-comparable with worker-process results.
std::shared_ptr<const pipeline::ComputeCovid19Pipeline> worker_twin_pipeline() {
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  nn::seed_init_rng(kSeed);
  auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

std::vector<data::PhantomVolume> tiny_volumes(std::size_t n) {
  Rng rng(11);
  std::vector<data::PhantomVolume> vols;
  for (std::size_t i = 0; i < n; ++i) {
    vols.push_back(data::make_volume(2, 8, i % 2 == 1, rng));
  }
  return vols;
}

struct SpawnedWorker {
  int pid = 0;
  std::string path;
};

SpawnedWorker spawn_worker(int shard, const std::string& tag,
                           const std::string& failpoints = "",
                           double stall_ms = 0.0,
                           double accept_timeout_s = 20.0) {
  SpawnedWorker w;
  w.path = "/tmp/ccovid_chaos_" + tag + "_" + std::to_string(::getpid()) +
           "_" + std::to_string(shard) + ".sock";
  std::vector<std::string> argv = {
      CCOVID_SERVE_BIN, "--role", "worker",
      "--listen", "unix:" + w.path,
      "--shard-id", std::to_string(shard),
      "--seed", std::to_string(kSeed),
      "--workers", "1", "--batch", "2",
      "--recv-timeout", "2",
      "--accept-timeout", std::to_string(accept_timeout_s),
  };
  if (stall_ms > 0) {
    argv.push_back("--stall-ms");
    argv.push_back(std::to_string(stall_ms));
  }
  if (!failpoints.empty()) {
    argv.push_back("--failpoints");
    argv.push_back(failpoints);
    argv.push_back("--fault-seed");
    argv.push_back("9");
  }
  w.pid = serve::spawn_process(argv);
  return w;
}

std::unique_ptr<net::Transport> connect_worker(const SpawnedWorker& w,
                                               int shard) {
  return net::connect_endpoint(net::Endpoint::parse("unix:" + w.path), 15.0,
                               0, shard);
}

void reap(const SpawnedWorker& w, double timeout_s = 10.0) {
  if (serve::wait_process(w.pid, timeout_s) == -1) {
    serve::kill_process(w.pid, SIGKILL);
    serve::wait_process(w.pid, 5.0);
  }
  ::unlink(w.path.c_str());
}

/// Single-process baseline probabilities for the same volumes (bitwise
/// reference for every sharded scenario).
std::vector<double> baseline_probs(
    const std::vector<data::PhantomVolume>& vols) {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 2;
  serve::InferenceServer local(worker_twin_pipeline(), opt);
  std::vector<std::future<serve::DiagnoseResponse>> fs;
  for (const auto& v : vols) fs.push_back(local.submit(v.hu, {}));
  std::vector<double> probs;
  for (auto& f : fs) {
    const auto r = f.get();
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
    probs.push_back(r.diagnosis.probability);
  }
  local.shutdown();
  return probs;
}

}  // namespace

// Seeded worker-kill: SIGKILL one of two real worker processes while
// its requests are in flight. Everything must complete via failover,
// bitwise-identical to the single-process path.
TEST(ChaosShard, WorkerKillFailsOverWithZeroLoss) {
  const auto vols = tiny_volumes(12);
  const auto expected = baseline_probs(vols);

  // --stall-ms keeps work in flight long enough that the kill lands
  // mid-batch deterministically-ish (the invariants hold either way).
  SpawnedWorker w0 = spawn_worker(0, "kill", "", 20.0);
  SpawnedWorker w1 = spawn_worker(1, "kill", "", 20.0);
  {
    std::vector<std::unique_ptr<net::Transport>> ts;
    ts.push_back(connect_worker(w0, 0));
    ts.push_back(connect_worker(w1, 1));
    serve::FrontDoorOptions fopt;
    fopt.recv_timeout_s = 5.0;
    fopt.heartbeat_interval_s = 0.05;
    fopt.heartbeat_miss_limit = 10;
    serve::FrontDoor front(std::move(ts), fopt);
    EXPECT_EQ(front.worker_pid(0), static_cast<std::uint32_t>(w0.pid));

    std::vector<std::future<serve::DiagnoseResponse>> fs;
    for (std::size_t i = 0; i < vols.size(); ++i) {
      fs.push_back(front.submit(i, vols[i].hu, {}));
    }
    // Kill shard 0's worker with its queue full.
    ASSERT_TRUE(serve::kill_process(w0.pid, SIGKILL));

    int lost = 0;
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const auto r = fs[i].get();
      if (r.status != serve::RequestStatus::kOk) {
        ++lost;
        continue;
      }
      EXPECT_EQ(0, std::memcmp(&expected[i], &r.diagnosis.probability,
                               sizeof(double)))
          << "probability bits diverged at volume " << i;
    }
    EXPECT_EQ(lost, 0);
    EXPECT_GE(front.failed_over(), 1u) << "kill landed after the drain?";
    EXPECT_EQ(front.alive_shards(), 1);
    front.shutdown();
  }
  reap(w0);
  reap(w1);
}

// Front-door restart: incarnation 1 vanishes without a shutdown
// handshake (crash); the worker must re-accept incarnation 2 and serve
// it. Worker-side state is rebuilt per connection, results stay
// bitwise-stable because the model seed is the process argv.
TEST(ChaosShard, FrontDoorRestartReacceptsAndServes) {
  const auto vols = tiny_volumes(4);
  const auto expected = baseline_probs(vols);

  SpawnedWorker w = spawn_worker(0, "restart");
  {
    // Incarnation 1: handshake + one request by hand, then die rudely.
    auto t = connect_worker(w, 0);
    serve::HelloMsg hello;
    hello.shard_id = 0;
    hello.shard_count = 1;
    t->send(net::FrameType::kHello, serve::encode(hello));
    net::Frame ack = t->recv(10.0);
    ASSERT_EQ(ack.type, net::FrameType::kHelloAck);
    const auto req =
        serve::ShardRequest::from_volume(1, 7, vols[0].hu, serve::ServeOptions{});
    t->send(net::FrameType::kRequest, serve::encode(req));
    net::Frame resp = t->recv(30.0);
    ASSERT_EQ(resp.type, net::FrameType::kResponse);
    const auto sr = serve::decode_response(resp.payload);
    EXPECT_EQ(sr.status, serve::RequestStatus::kOk);
    EXPECT_EQ(0, std::memcmp(&expected[0], &sr.probability, sizeof(double)));
    t->close();  // crash: no kShutdown, connection just drops
  }
  {
    // Incarnation 2: a real FrontDoor against the same worker.
    std::vector<std::unique_ptr<net::Transport>> ts;
    ts.push_back(connect_worker(w, 0));
    serve::FrontDoorOptions fopt;
    fopt.recv_timeout_s = 10.0;
    serve::FrontDoor front(std::move(ts), fopt);
    std::vector<std::future<serve::DiagnoseResponse>> fs;
    for (std::size_t i = 0; i < vols.size(); ++i) {
      fs.push_back(front.submit(100 + i, vols[i].hu, {}));
    }
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const auto r = fs[i].get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk) << r.error;
      EXPECT_EQ(0, std::memcmp(&expected[i], &r.diagnosis.probability,
                               sizeof(double)));
    }
    front.shutdown();  // graceful this time -> worker exits
  }
  const int status = serve::wait_process(w.pid, 10.0);
  EXPECT_NE(status, -1) << "worker did not exit after kShutdown";
  ::unlink(w.path.c_str());
}

// Cross-process fault schedule: worker 0 is armed (via its own CLI)
// with net.frame.corrupt, so a response it sends arrives damaged at the
// front door over the real socket. The typed kCorrupt must trigger
// failover to worker 1 with zero loss.
TEST(ChaosShard, CorruptResponseAcrossProcessTriggersFailover) {
  const auto vols = tiny_volumes(8);
  const auto expected = baseline_probs(vols);

  // Worker frame #1 is the hello ack; #3 is the second data frame it
  // sends — a response (heartbeats are effectively off below).
  SpawnedWorker w0 = spawn_worker(0, "corrupt", "net.frame.corrupt=nth(3)");
  SpawnedWorker w1 = spawn_worker(1, "corrupt", "", 0.0, 5.0);
  {
    std::vector<std::unique_ptr<net::Transport>> ts;
    ts.push_back(connect_worker(w0, 0));
    ts.push_back(connect_worker(w1, 1));
    serve::FrontDoorOptions fopt;
    fopt.recv_timeout_s = 5.0;
    fopt.heartbeat_interval_s = 30.0;  // keep the frame count deterministic
    serve::FrontDoor front(std::move(ts), fopt);

    std::vector<std::future<serve::DiagnoseResponse>> fs;
    for (std::size_t i = 0; i < vols.size(); ++i) {
      fs.push_back(front.submit(i, vols[i].hu, {}));
    }
    int lost = 0;
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const auto r = fs[i].get();
      if (r.status != serve::RequestStatus::kOk) {
        ++lost;
        continue;
      }
      EXPECT_EQ(0, std::memcmp(&expected[i], &r.diagnosis.probability,
                               sizeof(double)));
    }
    EXPECT_EQ(lost, 0);
    EXPECT_GE(front.failed_over(), 1u);
    front.shutdown();
  }
  // Worker 0 was abandoned (not shut down): it re-accepts until its 20 s
  // window lapses — don't wait for that, just kill and reap.
  serve::kill_process(w0.pid, SIGKILL);
  reap(w0, 5.0);
  reap(w1);
}

// In-process sharded determinism: the same FrontDoor/worker protocol
// over InprocTransport pairs (worker loops on threads, one shared
// immutable pipeline). Two identical runs must produce identical
// probability-bit digests, and match the single-process baseline.
TEST(ChaosShard, InprocShardedRunsAreBitwiseDeterministic) {
  const auto vols = tiny_volumes(8);
  const auto expected = baseline_probs(vols);
  auto pipe = worker_twin_pipeline();

  auto run_once = [&]() -> std::uint64_t {
    auto [fa, wa] = net::InprocTransport::make_pair(0, 100);
    auto [fb, wb] = net::InprocTransport::make_pair(0, 101);
    serve::ShardWorkerOptions wopt;
    wopt.server.workers = 1;
    wopt.server.max_batch = 2;
    std::thread t1([&, w = std::move(wa)]() mutable {
      serve::run_shard_worker(*w, pipe, wopt);
    });
    std::thread t2([&, w = std::move(wb)]() mutable {
      serve::run_shard_worker(*w, pipe, wopt);
    });

    std::uint64_t digest = kFnv1aOffset;
    {
      std::vector<std::unique_ptr<net::Transport>> ts;
      ts.push_back(std::move(fa));
      ts.push_back(std::move(fb));
      serve::FrontDoorOptions fopt;
      fopt.recv_timeout_s = 10.0;
      serve::FrontDoor front(std::move(ts), fopt);
      std::vector<std::future<serve::DiagnoseResponse>> fs;
      for (std::size_t i = 0; i < vols.size(); ++i) {
        fs.push_back(front.submit(i, vols[i].hu, {}));
      }
      for (std::size_t i = 0; i < fs.size(); ++i) {
        const auto r = fs[i].get();
        EXPECT_EQ(r.status, serve::RequestStatus::kOk);
        EXPECT_EQ(0, std::memcmp(&expected[i], &r.diagnosis.probability,
                                 sizeof(double)));
        digest = fnv1a64(&r.diagnosis.probability, sizeof(double), digest);
      }
      front.shutdown();
    }
    t1.join();
    t2.join();
    return digest;
  };

  const std::uint64_t first = run_once();
  const std::uint64_t second = run_once();
  EXPECT_EQ(first, second);
}

}  // namespace ccovid
