// Compiled as part of test_fault with the failpoint hooks forced OFF in
// this translation unit only — proving that CCOVID_DISABLE_FAILPOINTS
// compiles the macros out entirely: a hook inside this TU never fires
// (and never even consults the registry), no matter what is armed.
#define CCOVID_DISABLE_FAILPOINTS 1
#include "fault/failpoint.h"

namespace ccovid::fault_test {

bool disabled_tu_compiled_in() { return ccovid::fault::kCompiledIn; }

// Same failpoint name the enabled-TU tests arm; returns whether the
// hook fired (it must not — the macro expands to an empty Fired).
bool disabled_tu_hook_fires() {
  auto f = CCOVID_FAILPOINT_FIRED("test.disabled.site");
  return static_cast<bool>(f);
}

}  // namespace ccovid::fault_test
