// Zero-allocation steady-state suite: the allocation-counting hook
// (core/alloc_cache.h) asserts that after warm-up, inference — from a
// single conv2d up to full ccovid_serve request handling — performs no
// fresh system-heap allocations. Recycled cache hits are free to happen;
// what must stay flat is the count of allocations that reach the OS.
//
// Under ASan/TSan (or CCOVID_DISABLE_ALLOC_CACHE=1) the cache is
// inactive and these tests skip: the property is then unmeasurable, and
// sanitizer runs are about finding bugs, not allocation counts.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/alloc_cache.h"
#include "core/arena.h"
#include "core/parallel.h"
#include "core/random.h"
#include "core/tensor.h"
#include "data/phantom.h"
#include "nn/ddnet.h"
#include "nn/layers.h"
#include "ops/gemm.h"
#include "serve/server.h"

namespace ccovid {
namespace {

// ------------------------------------------------------------- arena

TEST(Arena, ScopeRewindsAndChunksAreRetained) {
  ScratchArena& arena = this_thread_arena();
  {
    ArenaScope scope;
    real_t* a = scope.alloc_floats(1000);
    ASSERT_NE(a, nullptr);
    a[0] = 1.0f;
    a[999] = 2.0f;
  }
  const std::size_t cap_after_first = arena.capacity();
  EXPECT_GT(cap_after_first, 0u);
  for (int i = 0; i < 16; ++i) {
    ArenaScope scope;
    real_t* a = scope.alloc_floats(1000);
    double* d = scope.alloc_doubles(500);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(d, nullptr);
  }
  // Same-footprint scopes must reuse the warmed chunk, not grow.
  EXPECT_EQ(arena.capacity(), cap_after_first);
}

TEST(Arena, NestedScopesAreLifo) {
  ArenaScope outer;
  real_t* a = outer.alloc_floats(64);
  a[0] = 7.0f;
  {
    ArenaScope inner;
    real_t* b = inner.alloc_floats(64);
    b[0] = 9.0f;  // lives in the region above `a`
  }
  // After the inner scope rewound, the outer allocation is intact and
  // the next outer allocation reuses the rewound region.
  real_t* c = outer.alloc_floats(64);
  EXPECT_EQ(a[0], 7.0f);
  EXPECT_NE(a, c);
}

TEST(Arena, AlignmentIs64Bytes) {
  ArenaScope scope;
  for (int i = 0; i < 8; ++i) {
    void* p = scope.alloc(40);  // deliberately not a multiple of 64
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

// ------------------------------------------------------- block pools

TEST(AllocCache, TensorStorageIsRecycled) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  const real_t* first;
  {
    Tensor t({64, 64});
    t.at(0, 0) = 5.0f;
    first = t.data();
  }
  Tensor again({64, 64});
  // Exact-size pool: the freed block comes straight back...
  EXPECT_EQ(again.data(), first);
  // ...and the constructor's zero-init contract still holds.
  EXPECT_EQ(again.at(0, 0), 0.0f);
  EXPECT_EQ(again.abs_max(), 0.0f);
}

TEST(AllocCache, StatsMoveWhenCacheIsExercised) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  const AllocCacheStats before = alloc_cache_stats();
  for (int i = 0; i < 4; ++i) {
    Tensor t({33, 17});
    t.fill(1.0f);
  }
  const AllocCacheStats after = alloc_cache_stats();
  EXPECT_GT(after.cached_frees, before.cached_frees);
  EXPECT_GT(after.cached_allocs + after.fresh_system_allocs,
            before.cached_allocs + before.fresh_system_allocs);
}

// ------------------------------------------- steady-state: kernels

// Runs `iters` iterations of `body` after `warmup` warm-up iterations
// and returns how many fresh system allocations the measured window
// performed.
template <typename Body>
std::uint64_t fresh_allocs_steady_state(int warmup, int iters,
                                        Body&& body) {
  for (int i = 0; i < warmup; ++i) body();
  const std::uint64_t before = fresh_system_allocs();
  for (int i = 0; i < iters; ++i) body();
  return fresh_system_allocs() - before;
}

TEST(AllocCache, MatmulSteadyStateIsAllocationFree) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  ParallelPin pin(1);  // deterministic single-thread arena usage
  Rng rng(3);
  Tensor a({48, 96}), b({96, 32});
  rng.fill_uniform(a, -1.0, 1.0);
  rng.fill_uniform(b, -1.0, 1.0);
  const std::uint64_t fresh = fresh_allocs_steady_state(
      3, 8, [&] { Tensor c = ops::matmul(a, b); });
  EXPECT_EQ(fresh, 0u) << "matmul allocated from the system heap in "
                          "steady state";
}

TEST(AllocCache, Conv2dGemmSteadyStateIsAllocationFree) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  ParallelPin pin(1);
  Rng rng(5);
  Tensor x({1, 4, 24, 24}), w({8, 4, 3, 3}), bias({8});
  rng.fill_uniform(x, 0.0, 1.0);
  rng.fill_uniform(w, -0.3, 0.3);
  const std::uint64_t fresh = fresh_allocs_steady_state(3, 8, [&] {
    Tensor y = ops::conv2d_gemm(x, w, bias, {1, 1});
  });
  EXPECT_EQ(fresh, 0u) << "conv2d_gemm allocated from the system heap "
                          "in steady state";
}

TEST(AllocCache, DdnetEnhanceSteadyStateIsAllocationFree) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  ParallelPin pin(1);
  nn::seed_init_rng(3);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  Tensor x({16, 16});
  Rng rng(5);
  rng.fill_uniform(x, 0.0, 1.0);
  const std::uint64_t fresh =
      fresh_allocs_steady_state(3, 8, [&] { Tensor y = net.enhance(x); });
  EXPECT_EQ(fresh, 0u) << "DDnet forward allocated from the system heap "
                          "in steady state";
}

// --------------------------------------------- steady-state: serving

TEST(AllocCache, ServeRequestHandlingSteadyStateIsAllocationFree) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  nn::seed_init_rng(3);
  auto enh =
      std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  auto pipe = std::make_shared<const pipeline::ComputeCovid19Pipeline>(
      enh, seg, cls);

  Rng rng(11);
  const data::PhantomVolume vol = data::make_volume(2, 8, true, rng);

  // One worker with serial kernels: every measured allocation happens on
  // the same two long-lived threads (batcher + worker), whose arenas and
  // pools the warm-up below fills. max_batch 1 keeps the micro-batch
  // shape (and so every container size on the hot path) independent of
  // scheduling timing — with larger batches, a batch composition the
  // warm-up never produced would show up as a fresh allocation.
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.inner_threads = 1;
  opt.max_batch = 1;
  serve::InferenceServer server(pipe, opt);

  // Closed loop with one request in flight: a burst would let the
  // admission queue's depth (and with it deque block allocations) vary
  // with scheduling timing, so a loaded machine could grow it past
  // anything the warm-up ever saw.
  const auto drive = [&](int n) {
    for (int i = 0; i < n; ++i) {
      if (server.submit(vol.hu).get().status != serve::RequestStatus::kOk) {
        return false;
      }
    }
    return true;
  };

  ASSERT_TRUE(drive(8));  // warm-up: arenas, pools, queue nodes
  ASSERT_TRUE(drive(8));
  const std::uint64_t before = fresh_system_allocs();
  ASSERT_TRUE(drive(8));
  const std::uint64_t fresh = fresh_system_allocs() - before;
  server.shutdown();
  EXPECT_EQ(fresh, 0u)
      << "steady-state request handling reached the system heap";
}

}  // namespace
}  // namespace ccovid
