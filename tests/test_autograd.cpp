// Autograd engine: every differentiable op is checked against central
// finite differences; graph mechanics (shared nodes, grad accumulation,
// no-grad mode) and the Adam optimizer are exercised.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/functions.h"
#include "autograd/gradcheck.h"
#include "autograd/optim.h"
#include "core/random.h"

namespace ccovid::autograd {
namespace {

Tensor random_tensor(Shape s, std::uint64_t seed, double stddev = 1.0) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, stddev);
  return t;
}

// Generic scalar-output gradcheck harness: builds loss = mean(op(x)) and
// compares x's analytic gradient with finite differences.
template <typename Fn>
void check_unary_grad(Shape shape, Fn&& op, std::uint64_t seed,
                      double tol = 2e-2) {
  Tensor x_val = random_tensor(shape, seed, 0.5);
  auto scalar_fn = [&]() {
    Var x(x_val.clone());
    Var x_req(x_val, true);
    (void)x;
    Var y = op(x_req);
    return static_cast<double>(mean(y).value().at(0));
  };
  const Tensor num = numerical_gradient(scalar_fn, x_val, 1e-3);

  Var x(x_val, true);
  Var loss = mean(op(x));
  loss.backward();
  ASSERT_TRUE(x.has_grad());
  EXPECT_LT(gradient_error(x.grad(), num), tol);
}

TEST(Autograd, LeafRequiresGradFlag) {
  Var a(Tensor::ones({2}), true);
  Var b(Tensor::ones({2}), false);
  EXPECT_TRUE(a.requires_grad());
  EXPECT_FALSE(b.requires_grad());
  Var c = add(a, b);
  EXPECT_TRUE(c.requires_grad());
  Var d = add(b, b);
  EXPECT_FALSE(d.requires_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Var a(Tensor::ones({2, 2}), true);
  EXPECT_THROW(a.backward(), std::runtime_error);
}

TEST(Autograd, SimpleChainGradient) {
  // loss = mean((2x + 1)^2); dloss/dx = 4(2x+1)/N.
  Tensor x_val = Tensor::from_vector({2}, {0.5f, -1.0f});
  Var x(x_val, true);
  Var y = add_scalar(mul_scalar(x, 2.0f), 1.0f);
  Var loss = mean(mul(y, y));
  loss.backward();
  EXPECT_NEAR(x.grad().at(0), 4.0 * 2.0 / 2.0, 1e-5);
  EXPECT_NEAR(x.grad().at(1), 4.0 * -1.0 / 2.0, 1e-5);
}

TEST(Autograd, SharedNodeAccumulatesBothPaths) {
  // loss = mean(x*x + x) — x used twice; grad = (2x + 1)/N.
  Tensor x_val = Tensor::from_vector({1}, {3.0f});
  Var x(x_val, true);
  Var loss = mean(add(mul(x, x), x));
  loss.backward();
  EXPECT_NEAR(x.grad().at(0), 7.0, 1e-5);
}

TEST(Autograd, NoGradGuardSkipsGraph) {
  Var x(Tensor::ones({2}), true);
  {
    NoGradGuard guard;
    Var y = mul(x, x);
    EXPECT_FALSE(y.requires_grad());
  }
  Var z = mul(x, x);
  EXPECT_TRUE(z.requires_grad());
}

TEST(Autograd, ZeroGradClears) {
  Var x(Tensor::ones({2}), true);
  Var loss = mean(x);
  loss.backward();
  EXPECT_TRUE(x.has_grad());
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad().abs_max(), 0.0f);
}

TEST(Autograd, DetachCutsHistory) {
  Var x(Tensor::ones({2}), true);
  Var y = mul_scalar(x, 3.0f).detach();
  EXPECT_FALSE(y.requires_grad());
}

// ------------------------------------------------------ elementwise ops
TEST(AutogradGrad, Add) {
  check_unary_grad({2, 3}, [](const Var& x) { return add(x, x); }, 1);
}

TEST(AutogradGrad, SubAndMulScalar) {
  check_unary_grad(
      {2, 3},
      [](const Var& x) { return sub(mul_scalar(x, 2.0f), x); }, 2);
}

TEST(AutogradGrad, MulElementwise) {
  check_unary_grad({2, 3}, [](const Var& x) { return mul(x, x); }, 3);
}

TEST(AutogradGrad, Div) {
  check_unary_grad(
      {2, 3},
      [](const Var& x) {
        return div(x, add_scalar(mul(x, x), 2.0f));
      },
      4);
}

TEST(AutogradGrad, PowScalar) {
  // Keep inputs positive: pow over clamp.
  check_unary_grad(
      {2, 3},
      [](const Var& x) {
        return pow_scalar(add_scalar(clamp_min(x, 0.0f), 0.5f), 0.3f);
      },
      5);
}

TEST(AutogradGrad, ClampMin) {
  check_unary_grad({3, 3}, [](const Var& x) { return clamp_min(x, 0.1f); },
                   6);
}

TEST(AutogradGrad, SumReduction) {
  Tensor x_val = random_tensor({4}, 7);
  Var x(x_val, true);
  Var s = sum(x);
  s.backward();
  for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad().at(i), 1.0f);
}

// --------------------------------------------------------- activations
TEST(AutogradGrad, Relu) {
  check_unary_grad({3, 4}, [](const Var& x) { return relu(x); }, 8);
}

TEST(AutogradGrad, LeakyRelu) {
  check_unary_grad({3, 4},
                   [](const Var& x) { return leaky_relu(x, 0.01f); }, 9);
}

TEST(AutogradGrad, Sigmoid) {
  check_unary_grad({3, 4}, [](const Var& x) { return sigmoid(x); }, 10,
                   3e-2);
}

// -------------------------------------------------------- conv / linear
TEST(AutogradGrad, Conv2dInputAndWeight) {
  Tensor x_val = random_tensor({1, 2, 5, 5}, 11, 0.5);
  Tensor w_val = random_tensor({3, 2, 3, 3}, 12, 0.5);
  Tensor b_val = random_tensor({3}, 13, 0.5);

  auto loss_value = [&]() {
    Var x(x_val);
    Var w(w_val);
    Var b(b_val);
    return static_cast<double>(
        mean(conv2d(x, w, b, ops::Conv2dParams::same(3))).value().at(0));
  };
  const Tensor num_x = numerical_gradient(loss_value, x_val, 1e-3);
  const Tensor num_w = numerical_gradient(loss_value, w_val, 1e-3);
  const Tensor num_b = numerical_gradient(loss_value, b_val, 1e-3);

  Var x(x_val, true), w(w_val, true), b(b_val, true);
  Var loss = mean(conv2d(x, w, b, ops::Conv2dParams::same(3)));
  loss.backward();
  EXPECT_LT(gradient_error(x.grad(), num_x), 2e-2);
  EXPECT_LT(gradient_error(w.grad(), num_w), 2e-2);
  EXPECT_LT(gradient_error(b.grad(), num_b), 2e-2);
}

TEST(AutogradGrad, Deconv2dInputAndWeight) {
  Tensor x_val = random_tensor({1, 2, 4, 4}, 14, 0.5);
  Tensor w_val = random_tensor({2, 3, 3, 3}, 15, 0.5);

  auto loss_value = [&]() {
    Var x(x_val);
    Var w(w_val);
    return static_cast<double>(
        mean(deconv2d(x, w, Var(), ops::Deconv2dParams::same(3)))
            .value()
            .at(0));
  };
  const Tensor num_x = numerical_gradient(loss_value, x_val, 1e-3);
  const Tensor num_w = numerical_gradient(loss_value, w_val, 1e-3);

  Var x(x_val, true), w(w_val, true);
  Var loss = mean(deconv2d(x, w, Var(), ops::Deconv2dParams::same(3)));
  loss.backward();
  EXPECT_LT(gradient_error(x.grad(), num_x), 2e-2);
  EXPECT_LT(gradient_error(w.grad(), num_w), 2e-2);
}

TEST(AutogradGrad, Conv3d) {
  Tensor x_val = random_tensor({1, 1, 3, 3, 3}, 16, 0.5);
  Tensor w_val = random_tensor({2, 1, 2, 2, 2}, 17, 0.5);
  auto loss_value = [&]() {
    Var x(x_val);
    Var w(w_val);
    return static_cast<double>(
        mean(conv3d(x, w, Var(), ops::Conv3dParams{1, 0})).value().at(0));
  };
  const Tensor num_x = numerical_gradient(loss_value, x_val, 1e-3);
  const Tensor num_w = numerical_gradient(loss_value, w_val, 1e-3);
  Var x(x_val, true), w(w_val, true);
  Var loss = mean(conv3d(x, w, Var(), ops::Conv3dParams{1, 0}));
  loss.backward();
  EXPECT_LT(gradient_error(x.grad(), num_x), 2e-2);
  EXPECT_LT(gradient_error(w.grad(), num_w), 2e-2);
}

TEST(AutogradGrad, Linear) {
  Tensor x_val = random_tensor({2, 3}, 18);
  Tensor w_val = random_tensor({4, 3}, 19);
  auto loss_value = [&]() {
    Var x(x_val);
    Var w(w_val);
    return static_cast<double>(mean(linear(x, w, Var())).value().at(0));
  };
  const Tensor num_w = numerical_gradient(loss_value, w_val, 1e-3);
  Var x(x_val, true), w(w_val, true);
  Var loss = mean(linear(x, w, Var()));
  loss.backward();
  EXPECT_LT(gradient_error(w.grad(), num_w), 2e-2);
}

// -------------------------------------------------- pooling / resampling
TEST(AutogradGrad, MaxPool2d) {
  check_unary_grad(
      {1, 1, 6, 6},
      [](const Var& x) { return max_pool2d(x, ops::Pool2dParams{2, 2, 0}); },
      20);
}

TEST(AutogradGrad, AvgPool2d) {
  check_unary_grad(
      {1, 2, 6, 6},
      [](const Var& x) { return avg_pool2d(x, ops::Pool2dParams{2, 2, 0}); },
      21);
}

TEST(AutogradGrad, Unpool2d) {
  check_unary_grad({1, 1, 4, 4},
                   [](const Var& x) { return unpool2d(x, 2); }, 22);
}

TEST(AutogradGrad, MaxPool3d) {
  check_unary_grad(
      {1, 1, 4, 4, 4},
      [](const Var& x) { return max_pool3d(x, ops::Pool3dParams{2, 2, 0}); },
      23);
}

TEST(AutogradGrad, AvgPool3d) {
  // DenseNet-3D's transition layers use strided avg_pool3d; this was
  // the only pooling op without its own gradcheck.
  check_unary_grad(
      {1, 2, 4, 4, 4},
      [](const Var& x) { return avg_pool3d(x, ops::Pool3dParams{2, 2, 0}); },
      30);
}

TEST(AutogradGrad, AvgPool3dOddExtentWithPadding) {
  // Padded windows hang over the volume edge, so the averaging divisor
  // differs between interior and border cells — the backward must
  // scatter with the matching per-window weights.
  check_unary_grad(
      {1, 1, 5, 5, 5},
      [](const Var& x) { return avg_pool3d(x, ops::Pool3dParams{3, 2, 1}); },
      31);
}

// ------------------------------------------------------------ structure
TEST(AutogradGrad, Concat) {
  Tensor a_val = random_tensor({1, 2, 3, 3}, 25);
  Tensor b_val = random_tensor({1, 3, 3, 3}, 26);
  auto loss_value = [&]() {
    Var a(a_val), b(b_val);
    return static_cast<double>(mean(concat({a, b})).value().at(0));
  };
  const Tensor num_a = numerical_gradient(loss_value, a_val, 1e-3);
  Var a(a_val, true), b(b_val, true);
  Var loss = mean(concat({a, b}));
  loss.backward();
  EXPECT_LT(gradient_error(a.grad(), num_a), 2e-2);
  EXPECT_TRUE(b.has_grad());
}

TEST(AutogradGrad, ConcatChecksEveryInputGradient) {
  // Three inputs of distinct channel widths; the slice-backward must
  // route each input's share of the upstream gradient to the right
  // offsets. Every input is finite-difference checked (the test above
  // only validates input `a` numerically).
  Tensor vals[3] = {random_tensor({1, 1, 3, 3}, 32),
                    random_tensor({1, 2, 3, 3}, 33),
                    random_tensor({1, 3, 3, 3}, 34)};
  auto loss_value = [&]() {
    Var a(vals[0]), b(vals[1]), c(vals[2]);
    // The squared term makes each input's gradient depend on its own
    // values, so a cross-wired slice boundary cannot cancel out.
    Var y = concat({a, b, c});
    return static_cast<double>(mean(mul(y, y)).value().at(0));
  };
  Var a(vals[0], true), b(vals[1], true), c(vals[2], true);
  Var y = concat({a, b, c});
  Var loss = mean(mul(y, y));
  loss.backward();
  const Var* grads[3] = {&a, &b, &c};
  for (int i = 0; i < 3; ++i) {
    const Tensor num = numerical_gradient(loss_value, vals[i], 1e-3);
    ASSERT_TRUE(grads[i]->has_grad()) << "concat input " << i;
    EXPECT_LT(gradient_error(grads[i]->grad(), num), 2e-2)
        << "concat input " << i;
  }
}

TEST(AutogradGrad, Reshape) {
  check_unary_grad({2, 6}, [](const Var& x) {
    return reshape(x, Shape{3, 4});
  }, 27);
}

TEST(AutogradGrad, BatchNormTraining) {
  Tensor x_val = random_tensor({2, 2, 3, 3}, 28);
  Tensor gamma_val = Tensor::from_vector({2}, {1.3f, 0.6f});
  Tensor beta_val = Tensor::from_vector({2}, {0.1f, -0.4f});

  auto loss_value = [&]() {
    Var x(x_val);
    Var g(gamma_val);
    Var b(beta_val);
    Tensor rm({2}), rv = Tensor::ones({2});
    // Weight the output so the loss is not trivially mean-invariant.
    Var y = batch_norm(x, g, b, rm, rv, true);
    return static_cast<double>(mean(mul(y, y)).value().at(0));
  };
  const Tensor num_x = numerical_gradient(loss_value, x_val, 1e-3);
  const Tensor num_g = numerical_gradient(loss_value, gamma_val, 1e-3);

  Var x(x_val, true), g(gamma_val, true), b(beta_val, true);
  Tensor rm({2}), rv = Tensor::ones({2});
  Var y = batch_norm(x, g, b, rm, rv, true);
  Var loss = mean(mul(y, y));
  loss.backward();
  EXPECT_LT(gradient_error(x.grad(), num_x), 5e-2);
  EXPECT_LT(gradient_error(g.grad(), num_g), 5e-2);
}

TEST(AutogradGrad, BatchNormEvalMode) {
  Tensor x_val = random_tensor({1, 2, 3, 3}, 29);
  Tensor gamma_val = Tensor::from_vector({2}, {2.0f, 0.5f});
  Tensor beta_val = Tensor::zeros({2});
  Tensor rm = Tensor::from_vector({2}, {0.1f, -0.2f});
  Tensor rv = Tensor::from_vector({2}, {1.5f, 0.7f});

  auto loss_value = [&]() {
    Var x(x_val);
    Var g(gamma_val);
    Var b(beta_val);
    Tensor rm2 = rm.clone(), rv2 = rv.clone();
    Var y = batch_norm(x, g, b, rm2, rv2, false);
    return static_cast<double>(mean(mul(y, y)).value().at(0));
  };
  const Tensor num_x = numerical_gradient(loss_value, x_val, 1e-3);

  Var x(x_val, true), g(gamma_val, true), b(beta_val, true);
  Tensor rm2 = rm.clone(), rv2 = rv.clone();
  Var y = batch_norm(x, g, b, rm2, rv2, false);
  Var loss = mean(mul(y, y));
  loss.backward();
  EXPECT_LT(gradient_error(x.grad(), num_x), 3e-2);
}

TEST(AutogradGrad, BatchNormUpdatesRunningStats) {
  Tensor x_val = random_tensor({4, 1, 4, 4}, 30, 2.0);
  Var x(x_val), g(Tensor::ones({1})), b(Tensor::zeros({1}));
  Tensor rm({1}), rv = Tensor::ones({1});
  batch_norm(x, g, b, rm, rv, true, 1.0f);  // momentum 1: adopt batch stats
  EXPECT_NEAR(rm.at(0), x_val.mean(), 1e-4);
  EXPECT_GT(rv.at(0), 1.0f);  // stddev-2 data -> variance ~4
}

// -------------------------------------------------------------- optimizer
TEST(Adam, MinimizesQuadratic) {
  // minimize mean((x - 3)^2).
  Var x(Tensor::zeros({4}), true);
  Adam opt({x}, 0.1);
  for (int i = 0; i < 300; ++i) {
    Var loss = mean(mul(add_scalar(x, -3.0f), add_scalar(x, -3.0f)));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  for (index_t i = 0; i < 4; ++i) EXPECT_NEAR(x.value().at(i), 3.0f, 0.05);
}

TEST(Adam, SkipsParamsWithoutGrad) {
  Var used(Tensor::zeros({1}), true);
  Var unused(Tensor::full({1}, 5.0f), true);
  Adam opt({used, unused}, 0.1);
  Var loss = mean(mul(used, used));
  opt.zero_grad();
  loss.backward();
  opt.step();
  EXPECT_FLOAT_EQ(unused.value().at(0), 5.0f);
}

TEST(Adam, ExponentialDecaySchedule) {
  Var x(Tensor::zeros({1}), true);
  Adam opt({x}, 1e-4);  // the paper's Enhancement-AI learning rate
  ExponentialLR sched(opt, 0.8);
  sched.step();
  EXPECT_NEAR(opt.lr(), 8e-5, 1e-12);
  sched.step();
  EXPECT_NEAR(opt.lr(), 6.4e-5, 1e-12);
}

}  // namespace
}  // namespace ccovid::autograd
