// Async-backward engine suite (`ctest -L fast`): a randomized
// backward-graph fuzzer pins the engine's one contract — gradients
// bitwise-equal to the sequential reverse-topological walk — across
// task-engine widths 1/2/8 and SIMD backends scalar/sse2/avx2, over
// seeded DAGs with shared subexpressions, duplicate-operand edges,
// fan-in/fan-out chains, non-differentiable constants recorded as
// parents, and dead branches never reaching the root. Mechanics
// (mode guard, finalize hooks, pre-defined leaf grads, zero steady-state
// allocations) are covered alongside.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "autograd/engine.h"
#include "autograd/functions.h"
#include "core/alloc_cache.h"
#include "core/parallel.h"
#include "core/random.h"
#include "core/simd.h"

namespace ccovid::autograd {
namespace {

constexpr index_t kRows = 4, kCols = 5;

Tensor random_tensor(Rng& rng, double stddev = 0.5) {
  Tensor t({kRows, kCols});
  rng.fill_gaussian(t, 0.0, stddev);
  return t;
}

/// Builds one seeded random DAG over `n_leaves` gradient leaves plus a
/// couple of constant (requires_grad=false) leaves, and returns the
/// scalar root. The same seed rebuilds the identical graph — closures
/// are single-use, so every run gets a fresh tape.
Var build_random_graph(std::uint64_t seed, std::vector<Var>& leaves) {
  Rng rng(seed);
  leaves.clear();
  const int n_leaves = 3 + static_cast<int>(rng.uniform_int(0, 2));
  std::vector<Var> pool;
  for (int i = 0; i < n_leaves; ++i) {
    leaves.emplace_back(random_tensor(rng), /*requires_grad=*/true);
    pool.push_back(leaves.back());
  }
  // Constants: recorded as parents (make_node keeps every defined
  // parent once any operand requires grad) but never receive a
  // gradient — the engine must finalize them without a contribution.
  for (int i = 0; i < 2; ++i) pool.emplace_back(random_tensor(rng), false);

  const int n_ops = 12 + static_cast<int>(rng.uniform_int(0, 15));
  for (int i = 0; i < n_ops; ++i) {
    const auto pick = [&] {
      return pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<index_t>(pool.size()) - 1))];
    };
    Var a = pick();
    Var node;
    switch (rng.uniform_int(0, 7)) {
      case 0:
        node = add(a, pick());
        break;
      case 1:
        node = sub(a, pick());
        break;
      case 2:
        node = mul(a, pick());
        break;
      case 3:
        // Duplicate-operand edge: one closure accumulates twice into
        // the same parent (two intra-closure tags).
        node = mul(a, a);
        break;
      case 4:
        node = sigmoid(a);
        break;
      case 5:
        node = clamp_min(a, -0.25f);
        break;
      case 6:
        node = mul_scalar(add_scalar(a, 0.125f), 0.75f);
        break;
      default:
        // Fan-out through a reshape chain, back to the pool shape.
        node = reshape(reshape(a, Shape{kRows * kCols}),
                       Shape{kRows, kCols});
        break;
    }
    pool.push_back(node);
    // Dead branch: a consumer that never reaches the root. It shares
    // parents with live nodes but is dropped here — the DFS from the
    // root must never see it and its parents' dependency counts must
    // not include it.
    if (rng.uniform_int(0, 3) == 0) {
      Var dead = sigmoid(node);
      (void)dead;
    }
  }
  // Root: fold the newest few nodes so late fan-in exists, then reduce
  // to a scalar.
  Var total = pool.back();
  for (int i = 2; i <= 4 && static_cast<int>(pool.size()) - i >= 0; ++i) {
    total = add(total, pool[pool.size() - static_cast<std::size_t>(i)]);
  }
  return mean(mul(total, total));
}

/// Runs backward over the seed's graph in the given mode and returns
/// every leaf gradient (cloned; undefined grads stay undefined).
std::vector<Tensor> run_backward(std::uint64_t seed, BackwardMode mode) {
  BackwardModeGuard guard(mode);
  std::vector<Var> leaves;
  Var root = build_random_graph(seed, leaves);
  root.backward();
  std::vector<Tensor> grads;
  for (Var& l : leaves) {
    grads.push_back(l.has_grad() ? l.grad().clone() : Tensor());
  }
  return grads;
}

void expect_bitwise_equal(const std::vector<Tensor>& ref,
                          const std::vector<Tensor>& got,
                          const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i].defined(), got[i].defined()) << what << " leaf " << i;
    if (!ref[i].defined()) continue;
    ASSERT_EQ(ref[i].numel(), got[i].numel()) << what << " leaf " << i;
    EXPECT_EQ(std::memcmp(ref[i].data(), got[i].data(),
                          static_cast<std::size_t>(ref[i].numel()) *
                              sizeof(real_t)),
              0)
        << what << ": leaf " << i << " gradient bits diverged";
  }
}

// Steady state must not touch the system heap: after warm-up, building
// and draining the same-shaped graph recycles every allocation (tape
// nodes, staged clones, engine state) through the alloc cache. Declared
// FIRST: the fuzzer's sweep of graph sizes would otherwise saturate the
// cache's fixed-cap exact-size bins and manufacture churn this test
// isn't about (test_alloc measures the same way — in a clean process).
TEST(AutogradEngine, SteadyStateMakesNoFreshSystemAllocs) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache compiled out (sanitizer build)";
  }
  ParallelPin pin(8);
  BackwardModeGuard guard(BackwardMode::kAsync);
  // A compact fixed graph, not a fuzzer draw: the contract under test is
  // that the ENGINE recycles (tape nodes, staged clones, run state), so
  // the per-iteration tensor population must stay comfortably inside the
  // alloc cache's fixed per-bin caps — a graph-size stress of those caps
  // belongs to test_alloc, not here.
  auto iterate = [] {
    Rng rng(9);
    std::vector<Var> leaves;
    for (int i = 0; i < 4; ++i) {
      leaves.emplace_back(random_tensor(rng), /*requires_grad=*/true);
    }
    Var total = leaves[0];
    for (int i = 1; i < 4; ++i) {
      total = add(mul(total, leaves[static_cast<std::size_t>(i)]),
                  leaves[static_cast<std::size_t>(i)]);
    }
    Var shared = sigmoid(total);
    Var root = mean(add(mul(shared, shared), total));
    root.backward();
  };
  // Concurrent staging means the peak number of simultaneously-live
  // blocks per size class depends on scheduling, so a late iteration can
  // legitimately grow the pools once more. Warm until a whole window of
  // iterations runs clean; only a cache that never settles fails.
  std::uint64_t delta = ~0ull;
  for (int attempt = 0; attempt < 6 && delta != 0; ++attempt) {
    for (int i = 0; i < 16; ++i) iterate();  // warm the pools
    const std::uint64_t before = fresh_system_allocs();
    for (int i = 0; i < 12; ++i) iterate();
    delta = fresh_system_allocs() - before;
  }
  EXPECT_EQ(delta, 0u)
      << "async backward allocated from the system heap in steady state";
}

// The fuzzer: >= 12 seeded DAGs, async == sequential bitwise at widths
// 1/2/8 under every available SIMD backend. The sequential reference is
// taken once per seed at scalar/width-1; lane determinism (PR 5's
// contract) makes it the reference for every backend cell.
TEST(AutogradEngineFuzz, AsyncBitwiseEqualsSequentialAcrossWidthsAndBackends) {
  const simd::Backend prev = simd::active_backend();
  for (std::uint64_t seed = 1; seed <= 14; ++seed) {
    simd::set_backend(simd::Backend::kScalar);
    ParallelPin pin(1);
    const std::vector<Tensor> ref = run_backward(seed, BackwardMode::kSequential);
    for (const simd::Backend be :
         {simd::Backend::kScalar, simd::Backend::kSse2,
          simd::Backend::kAvx2}) {
      if (!simd::backend_available(be)) continue;
      simd::set_backend(be);
      for (const int width : {1, 2, 8}) {
        ParallelPin wpin(width);
        const std::vector<Tensor> got =
            run_backward(seed, BackwardMode::kAsync);
        expect_bitwise_equal(
            ref, got,
            "seed " + std::to_string(seed) + " backend " +
                simd::backend_name(be) + " width " + std::to_string(width));
      }
    }
  }
  simd::set_backend(prev);
}

// Pre-defined gradient buffers (a leaf after Adam::zero_grad) must take
// the add_-into-zeros path in the same order as the sequential walk.
TEST(AutogradEngine, AccumulatesIntoPredefinedGradBitwise) {
  for (const std::uint64_t seed : {3u, 7u}) {
    std::vector<Tensor> grads[2];
    int m = 0;
    for (const BackwardMode mode :
         {BackwardMode::kSequential, BackwardMode::kAsync}) {
      BackwardModeGuard guard(mode);
      ParallelPin pin(mode == BackwardMode::kAsync ? 8 : 1);
      std::vector<Var> leaves;
      {
        // First pass defines every leaf's grad buffer...
        Var root = build_random_graph(seed, leaves);
        root.backward();
      }
      std::vector<Var> leaves2;
      Var root2 = build_random_graph(seed, leaves2);
      for (std::size_t i = 0; i < leaves2.size(); ++i) {
        // ...which we transplant, zeroed, onto a fresh graph's leaves.
        if (leaves[i].has_grad()) {
          leaves2[i].grad() = leaves[i].grad().clone();
          leaves2[i].zero_grad();
        }
      }
      root2.backward();
      for (Var& l : leaves2) {
        grads[m].push_back(l.has_grad() ? l.grad().clone() : Tensor());
      }
      ++m;
    }
    expect_bitwise_equal(grads[0], grads[1],
                         "predefined-grad seed " + std::to_string(seed));
  }
}

TEST(AutogradEngine, ModeGuardNestsAndRestores) {
  const BackwardMode base = backward_mode();
  {
    BackwardModeGuard a(BackwardMode::kSequential);
    EXPECT_EQ(backward_mode(), BackwardMode::kSequential);
    {
      BackwardModeGuard b(BackwardMode::kAsync);
      EXPECT_EQ(backward_mode(), BackwardMode::kAsync);
    }
    EXPECT_EQ(backward_mode(), BackwardMode::kSequential);
  }
  EXPECT_EQ(backward_mode(), base);
}

/// Every node reachable from `root` through recorded parent edges.
std::set<const detail::VarImpl*> reachable_nodes(const Var& root) {
  std::set<const detail::VarImpl*> seen;
  std::vector<const detail::VarImpl*> stack{root.impl().get()};
  while (!stack.empty()) {
    const detail::VarImpl* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (const auto& p : n->parents) stack.push_back(p.get());
  }
  return seen;
}

// The finalize hook must fire exactly once per REACHABLE graph node —
// the DDP bucket bookkeeping depends on it — and never for dead
// branches (or pool leaves the random graph left unconnected).
TEST(AutogradEngine, FinalizeHookFiresOncePerReachableNode) {
  for (const int width : {1, 8}) {
    ParallelPin pin(width);
    std::vector<Var> leaves;
    Var root = build_random_graph(5, leaves);
    const std::set<const detail::VarImpl*> expect = reachable_nodes(root);
    std::mutex mu;
    std::multiset<const detail::VarImpl*> seen;
    BackwardOptions opts;
    opts.on_node_finalized = [&](const detail::VarImpl* n) {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(n);
    };
    BackwardRun run =
        backward_start(root.impl(), Tensor::ones(root.shape()), opts);
    run.wait();
    ASSERT_TRUE(run.finished());
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(seen.size(), expect.size()) << "width " << width;
    for (const detail::VarImpl* n : expect) {
      EXPECT_EQ(seen.count(n), 1u)
          << "reachable node finalized != once at width " << width;
    }
  }
}

}  // namespace
}  // namespace ccovid::autograd
