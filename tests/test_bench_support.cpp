// Benchmark-harness support: flag parsing, hh:mm:ss formatting, and the
// measured-DDnet timing walk (whose per-class totals feed Tables 4/5/7),
// plus structural fidelity of the paper-scale DDnet against Table 2.
#include <gtest/gtest.h>

#include "../bench/bench_common.h"
#include "../bench/ddnet_timing.h"
#include "nn/ddnet.h"

namespace ccovid {
namespace {

TEST(BenchArgs, DefaultsAndFlags) {
  const char* argv1[] = {"prog"};
  const auto a = bench::Args::parse(1, const_cast<char**>(argv1));
  EXPECT_FALSE(a.paper_scale);
  EXPECT_FALSE(a.quick);
  EXPECT_EQ(a.out_dir, ".");

  const char* argv2[] = {"prog", "--quick", "--out-dir", "/tmp/x",
                         "--paper-scale"};
  const auto b = bench::Args::parse(5, const_cast<char**>(argv2));
  EXPECT_TRUE(b.paper_scale);
  EXPECT_TRUE(b.quick);
  EXPECT_EQ(b.out_dir, "/tmp/x");
}

TEST(BenchFormat, HmsMatchesPaperStyle) {
  // The paper prints Table 3 runtimes as hh:mm:ss.
  EXPECT_EQ(bench::format_hms(0.0), "0:00:00");
  EXPECT_EQ(bench::format_hms(61.0), "0:01:01");
  EXPECT_EQ(bench::format_hms(3661.4), "1:01:01");
  EXPECT_EQ(bench::format_hms(15.0 * 3600 + 14 * 60 + 46), "15:14:46");
}

TEST(DdnetTiming, BreakdownCoversAllKernelClasses) {
  nn::DDnetConfig cfg = nn::DDnetConfig::tiny();
  const auto m =
      bench::measure_ddnet_cpu(cfg, 16, 16, ops::KernelOptions::all());
  EXPECT_GT(m.conv_s, 0.0);
  EXPECT_GT(m.deconv_s, 0.0);
  EXPECT_GT(m.other_s, 0.0);
  EXPECT_NEAR(m.total(), m.conv_s + m.deconv_s + m.other_s, 1e-12);
}

TEST(DdnetTiming, RefactoredNotSlowerThanBaselineDeconv) {
  // On any machine the gather deconvolution should not lose to the
  // volatile-reload scatter baseline by more than measurement noise.
  nn::DDnetConfig cfg;
  cfg.base_channels = 8;
  cfg.growth = 8;
  cfg.levels = 2;
  cfg.dense_layers = 2;
  const auto base =
      bench::measure_ddnet_cpu(cfg, 64, 64, ops::KernelOptions::baseline());
  const auto full =
      bench::measure_ddnet_cpu(cfg, 64, 64, ops::KernelOptions::all());
  EXPECT_LT(full.deconv_s, base.deconv_s * 1.25);
  EXPECT_LT(full.total(), base.total() * 1.25);
}

// --------------------------------------------------- Table 2 structure
TEST(Table2, PaperDDnetParameterShapes) {
  nn::seed_init_rng(1);
  nn::DDnet net(nn::DDnetConfig::paper());
  std::map<std::string, Shape> shapes;
  for (const auto& [name, v] : net.named_parameters()) {
    shapes.emplace(name, v.shape());
  }
  // Convolution 1: 7x7 stem, 1 -> 16 channels.
  EXPECT_EQ(shapes.at("stem.weight"), Shape({16, 1, 7, 7}));
  // Dense layers: 1x1 bottleneck to 64, then 5x5 to growth 16.
  EXPECT_EQ(shapes.at("enc0.block.layer0.conv1.weight"),
            Shape({64, 16, 1, 1}));
  EXPECT_EQ(shapes.at("enc0.block.layer0.conv5.weight"),
            Shape({16, 64, 5, 5}));
  // Last dense layer input: 16 + 3*16 = 64 channels.
  EXPECT_EQ(shapes.at("enc0.block.layer3.conv1.weight"),
            Shape({64, 64, 1, 1}));
  // Transition ("Convolution 2"): 80 -> 16, 1x1 (Table 2's 256x256x80 ->
  // 256x256x16).
  EXPECT_EQ(shapes.at("enc0.transition.weight"), Shape({16, 80, 1, 1}));
  // Decoder: 5x5 deconv at 32 channels, 1x1 deconv back to 16; the
  // output stage's 1x1 emits a single channel (Table 2's 512x512x1).
  EXPECT_EQ(shapes.at("dec0.deconv5.weight"), Shape({32, 32, 5, 5}));
  EXPECT_EQ(shapes.at("dec0.deconv1.weight"), Shape({32, 16, 1, 1}));
  EXPECT_EQ(shapes.at("dec3.deconv1.weight"), Shape({32, 1, 1, 1}));
}

TEST(Table2, PoolingChainHalvesFiveOctaves) {
  // 512 -> 256 -> 128 -> 64 -> 32, the Table 2 spatial ladder.
  index_t e = 512;
  for (int level = 0; level < 4; ++level) {
    e = ops::conv_out_extent(e, 3, 2, 1);  // DDnet 3x3/s2/p1 pooling
  }
  EXPECT_EQ(e, 32);
}

}  // namespace
}  // namespace ccovid
