// Core substrate tests: shapes, tensors, RNG statistics, parallel_for,
// counters, image/CSV IO, serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/counters.h"
#include "core/image_io.h"
#include "core/parallel.h"
#include "core/random.h"
#include "core/serialize.h"
#include "core/tensor.h"
#include "core/timer.h"

namespace ccovid {
namespace {

// ---------------------------------------------------------------- Shape
TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(0), 12);
}

TEST(Shape, OffsetIsRowMajor) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.offset(0, 0, 0), 0);
  EXPECT_EQ(s.offset(0, 0, 1), 1);
  EXPECT_EQ(s.offset(0, 1, 0), 4);
  EXPECT_EQ(s.offset(1, 0, 0), 12);
  EXPECT_EQ(s.offset(1, 2, 3), 23);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, RejectsNegativeExtent) {
  EXPECT_THROW(Shape({-1, 2}), std::invalid_argument);
}

TEST(Shape, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, StrPrintsDims) { EXPECT_EQ(Shape({5, 7}).str(), "[5, 7]"); }

// --------------------------------------------------------------- Tensor
TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  for (index_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(Tensor, FullAndOnes) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(t.at(1, 1), 3.5f);
  EXPECT_EQ(Tensor::ones({4}).sum(), 4.0f);
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a({2, 2});
  Tensor b = a;          // shallow
  Tensor c = a.clone();  // deep
  a.at(0, 0) = 7.0f;
  EXPECT_EQ(b.at(0, 0), 7.0f);
  EXPECT_EQ(c.at(0, 0), 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.reshape({3, 2});
  EXPECT_EQ(b.at(2, 1), 6.0f);
  EXPECT_THROW(a.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ArithmeticOps) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {4, 5, 6});
  EXPECT_EQ(a.add(b).sum(), 21.0f);
  EXPECT_EQ(b.sub(a).sum(), 9.0f);
  EXPECT_EQ(a.mul(b).sum(), 4.0f + 10.0f + 18.0f);
  a.add_(b, 2.0f);
  EXPECT_EQ(a.at(0), 9.0f);
}

TEST(Tensor, Reductions) {
  Tensor a = Tensor::from_vector({4}, {-3, 1, 2, 0});
  EXPECT_EQ(a.min(), -3.0f);
  EXPECT_EQ(a.max(), 2.0f);
  EXPECT_EQ(a.mean(), 0.0f);
  EXPECT_EQ(a.abs_max(), 3.0f);
}

TEST(Tensor, SumUsesDoubleAccumulation) {
  // 1e7 values of 0.1 in float accumulation drifts badly; double is fine.
  Tensor a = Tensor::full({1000, 1000}, 0.1f);
  EXPECT_NEAR(a.sum(), 1e5, 10.0);
}

TEST(Tensor, AllcloseAndMaxDiff) {
  Tensor a = Tensor::full({4}, 1.0f);
  Tensor b = Tensor::full({4}, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  b.at(2) = 2.0f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_NEAR(max_abs_diff(a, b), 1.0f, 1e-5);
}

TEST(Tensor, FromVectorSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ Rng
TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(2);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform_int(0, 4)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, GaussianMoments) {
  Rng rng(3);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonSmallLambdaMoments) {
  Rng rng(4);
  const double lambda = 5.0;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double p = static_cast<double>(rng.poisson(lambda));
    sum += p;
    sum_sq += p * p;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.1);
  EXPECT_NEAR(var, lambda, 0.2);
}

TEST(Rng, PoissonLargeLambdaMoments) {
  Rng rng(5);
  const double lambda = 1e6;  // the paper's blank-scan photon count
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double p = static_cast<double>(rng.poisson(lambda));
    sum += p;
    sum_sq += p * p;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean / lambda, 1.0, 1e-3);
  EXPECT_NEAR(var / lambda, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.75) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.75, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(7);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, FillGaussianMatchesRequestedStdDev) {
  Rng rng(8);
  Tensor t({10000});
  rng.fill_gaussian(t, 0.0, 0.01);  // the paper's filter init
  double sum_sq = 0.0;
  for (index_t i = 0; i < t.numel(); ++i) {
    sum_sq += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  EXPECT_NEAR(std::sqrt(sum_sq / t.numel()), 0.01, 0.001);
}

// ------------------------------------------------------------- parallel
TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  parallel_for(0, 257, [&](index_t i) { hits[i]++; }, /*grain=*/16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, BlockedCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  parallel_for_blocked(0, 1000, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ThreadCountOverride) {
  const int original = num_threads();
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);
  EXPECT_EQ(num_threads(), original);
}

// ------------------------------------------------------------- counters
TEST(Counters, AccumulateAndReset) {
  reset_tls_counters();
  tls_counters().global_loads += 10;
  tls_counters().flops += 5;
  EXPECT_EQ(tls_counters().global_loads, 10u);
  OpCounters other;
  other.global_stores = 3;
  tls_counters() += other;
  EXPECT_EQ(tls_counters().global_stores, 3u);
  reset_tls_counters();
  EXPECT_EQ(tls_counters().global_loads, 0u);
}

// ---------------------------------------------------------------- timer
TEST(Timer, KernelProfileAccumulates) {
  KernelProfile prof;
  prof.add("convolution", 1.5);
  prof.add("convolution", 0.5);
  prof.add("other", 0.25);
  EXPECT_DOUBLE_EQ(prof.total("convolution"), 2.0);
  EXPECT_DOUBLE_EQ(prof.grand_total(), 2.25);
  prof.reset();
  EXPECT_DOUBLE_EQ(prof.grand_total(), 0.0);
}

TEST(Timer, ScopedTimerRecordsNonNegative) {
  KernelProfile prof;
  { ScopedKernelTimer t(prof, "k"); }
  EXPECT_GE(prof.total("k"), 0.0);
}

// ------------------------------------------------------------------- IO
TEST(ImageIO, PgmRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "ccovid_test_roundtrip.pgm";
  Tensor img({8, 16});
  for (index_t y = 0; y < 8; ++y) {
    for (index_t x = 0; x < 16; ++x) {
      img.at(y, x) = static_cast<real_t>(x) / 15.0f;
    }
  }
  write_pgm(path, img, 0.0f, 1.0f);
  Tensor back = read_pgm(path);
  EXPECT_EQ(back.shape(), img.shape());
  EXPECT_LT(max_abs_diff(back, img), 1.0f / 255.0f + 1e-5f);
  std::remove(path.c_str());
}

TEST(ImageIO, PgmRejectsNon2d) {
  Tensor t({2, 2, 2});
  EXPECT_THROW(write_pgm("/tmp/x.pgm", t), std::invalid_argument);
}

TEST(ImageIO, CsvWritesHeaderAndRows) {
  const std::string path =
      std::filesystem::temp_directory_path() / "ccovid_test.csv";
  write_csv(path, {"a", "b"}, {{1.0, 2.0}, {3.0, 4.5}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ serialize
TEST(Serialize, TensorMapRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "ccovid_test.tnsr";
  TensorMap m;
  m["a"] = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  m["b.weight"] = Tensor::full({3}, -0.5f);
  save_tensor_map(path, m);
  TensorMap back = load_tensor_map(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(allclose(back["a"], m["a"]));
  EXPECT_TRUE(allclose(back["b.weight"], m["b.weight"]));
  std::remove(path.c_str());
}

TEST(Serialize, SingleTensorRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "ccovid_single.tnsr";
  Tensor t = Tensor::from_vector({5}, {5, 4, 3, 2, 1});
  save_tensor(path, t);
  EXPECT_TRUE(allclose(load_tensor(path), t));
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicThrows) {
  const std::string path =
      std::filesystem::temp_directory_path() / "ccovid_bad.tnsr";
  std::ofstream(path) << "not a tensor file at all";
  EXPECT_THROW(load_tensor_map(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccovid
