// CT substrate (§3.1.2's simulation chain): FFT identities, Siddon line
// integrals, Beer's-law Poisson statistics, FBP reconstruction fidelity,
// HU conversions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"
#include "ct/fbp.h"
#include "ct/fft.h"
#include "ct/geometry.h"
#include "ct/hu.h"
#include "ct/noise.h"
#include "ct/siddon.h"

namespace ccovid::ct {
namespace {

// ------------------------------------------------------------------ FFT
TEST(Fft, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(768));
  EXPECT_EQ(next_pow2(1000), 1024);
  EXPECT_EQ(next_pow2(1024), 1024);
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<cplx> data(256);
  std::vector<cplx> orig(256);
  for (auto& x : data) x = cplx(rng.gaussian(), rng.gaussian());
  orig = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<cplx> data(64, cplx(0, 0));
  data[0] = cplx(1, 0);
  fft(data, false);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(2);
  std::vector<cplx> data(128);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = cplx(rng.gaussian(), 0.0);
    time_energy += std::norm(x);
  }
  fft(data, false);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / data.size(), time_energy, 1e-6 * time_energy);
}

TEST(Fft, RejectsNonPow2) {
  std::vector<cplx> data(100);
  EXPECT_THROW(fft(data, false), std::invalid_argument);
}

TEST(Fft, CircularConvolutionMatchesDirect) {
  const std::vector<double> a = {1, 2, 3, 4, 0, 0, 0, 0};
  const std::vector<double> b = {0.5, 0.25, 0, 0, 0, 0, 0, 0};
  const auto c = fft_convolve_circular(a, b);
  // Direct circular convolution.
  for (std::size_t n = 0; n < a.size(); ++n) {
    double expect = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      expect += a[k] * b[(n - k + a.size()) % a.size()];
    }
    EXPECT_NEAR(c[n], expect, 1e-9);
  }
}

// ------------------------------------------------------------- geometry
TEST(Geometry, PaperDefaults) {
  const FanBeamGeometry g = paper_geometry();
  EXPECT_DOUBLE_EQ(g.sdd_mm, 1500.0);   // §3.1.2
  EXPECT_DOUBLE_EQ(g.sod_mm, 1000.0);
  EXPECT_EQ(g.num_views, 720);
  EXPECT_EQ(g.num_dets, 1024);
  EXPECT_EQ(g.image_px, 512);
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, DetectorCoordsCentered) {
  const FanBeamGeometry g = paper_geometry();
  EXPECT_NEAR(g.det_coord(0) + g.det_coord(g.num_dets - 1), 0.0, 1e-9);
  EXPECT_LT(g.det_coord(0), 0.0);
}

TEST(Geometry, ScaledKeepsValidity) {
  const FanBeamGeometry g = paper_geometry().scaled(64);
  EXPECT_EQ(g.image_px, 64);
  EXPECT_TRUE(g.valid());
  EXPECT_LT(g.num_views, 720);
}

// --------------------------------------------------------------- Siddon
TEST(Siddon, RayThroughUniformDiscMatchesChordLength) {
  FanBeamGeometry g = paper_geometry().scaled(64);
  const index_t n = g.image_px;
  const double mu0 = 0.02;
  // Uniform disc of radius r_mm at the center.
  const double r_frac = 0.3;
  Tensor mu({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) / n - 0.5;
      const double y = (iy + 0.5) / n - 0.5;
      if (x * x + y * y <= r_frac * r_frac) {
        mu.at(iy, ix) = static_cast<real_t>(mu0);
      }
    }
  }
  // A ray through the center crosses a full diameter.
  const double sx = g.sod_mm, sy = 0.0;
  const double ex = g.sod_mm - g.sdd_mm, ey = 0.0;
  const double integral = siddon_line_integral(mu, g, sx, sy, ex, ey);
  const double expect = 2.0 * r_frac * g.fov_mm * mu0;
  EXPECT_NEAR(integral, expect, expect * 0.03);
}

TEST(Siddon, EmptyImageIntegratesToZero) {
  FanBeamGeometry g = paper_geometry().scaled(32);
  Tensor mu({32, 32});
  EXPECT_DOUBLE_EQ(
      siddon_line_integral(mu, g, g.sod_mm, 0, -g.sdd_mm + g.sod_mm, 0),
      0.0);
}

TEST(Siddon, RayMissingGridIsZero) {
  FanBeamGeometry g = paper_geometry().scaled(32);
  Tensor mu = Tensor::full({32, 32}, 1.0f);
  // A ray far outside the FOV.
  const double integral =
      siddon_line_integral(mu, g, g.sod_mm, 500.0, -500.0, 500.0);
  EXPECT_DOUBLE_EQ(integral, 0.0);
}

TEST(Siddon, SinogramSymmetricForCenteredDisc) {
  // A centered disc looks identical from every view angle.
  FanBeamGeometry g = paper_geometry().scaled(32);
  const index_t n = g.image_px;
  Tensor mu({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) / n - 0.5;
      const double y = (iy + 0.5) / n - 0.5;
      if (x * x + y * y <= 0.09) mu.at(iy, ix) = 0.02f;
    }
  }
  const Tensor sino = forward_project(mu, g);
  // Compare view 0 with a quarter-turn view.
  const index_t v2 = g.num_views / 4;
  double max_diff = 0.0;
  for (index_t d = 0; d < g.num_dets; ++d) {
    max_diff = std::max(max_diff,
                        std::fabs(double(sino.at(index_t(0), d)) -
                                  sino.at(v2, d)));
  }
  EXPECT_LT(max_diff, 0.08 * sino.max());
}

// ---------------------------------------------------------------- noise
TEST(Noise, ZeroIntegralGivesNearZeroNoise) {
  // exp(0) = b counts; relative Poisson error ~ 1/sqrt(1e6) = 0.1%.
  Tensor sino = Tensor::zeros({16, 16});
  Rng rng(3);
  const Tensor noisy = apply_poisson_noise(sino, NoiseModel{1e6}, rng);
  EXPECT_LT(noisy.abs_max(), 0.01);
}

TEST(Noise, VarianceScalesInverselyWithPhotons) {
  // Projection-domain noise variance ~ e^l / b.
  Tensor sino = Tensor::full({64, 64}, 2.0f);
  Rng rng1(4), rng2(4);
  const Tensor noisy_low = apply_poisson_noise(sino, NoiseModel{1e4}, rng1);
  const Tensor noisy_high = apply_poisson_noise(sino, NoiseModel{1e6}, rng2);
  double var_low = 0.0, var_high = 0.0;
  for (index_t i = 0; i < sino.numel(); ++i) {
    var_low += std::pow(noisy_low.data()[i] - 2.0, 2);
    var_high += std::pow(noisy_high.data()[i] - 2.0, 2);
  }
  EXPECT_GT(var_low, 20.0 * var_high);
}

TEST(Noise, UnbiasedInMeanForModerateAttenuation) {
  Tensor sino = Tensor::full({128, 128}, 1.5f);
  Rng rng(5);
  const Tensor noisy = apply_poisson_noise(sino, NoiseModel{1e6}, rng);
  EXPECT_NEAR(noisy.mean(), 1.5, 0.005);
}

TEST(Noise, ExpectedCountsBeerLaw) {
  Tensor sino = Tensor::from_vector({1, 2}, {0.0f, std::log(2.0f)});
  const Tensor counts = expected_counts(sino, NoiseModel{1000.0});
  EXPECT_NEAR(counts.at(0, 0), 1000.0, 1e-3);
  EXPECT_NEAR(counts.at(0, 1), 500.0, 1e-1);
}

TEST(Noise, RejectsNonPositivePhotons) {
  Tensor sino({2, 2});
  Rng rng(6);
  EXPECT_THROW(apply_poisson_noise(sino, NoiseModel{0.0}, rng),
               std::invalid_argument);
}

// ------------------------------------------------------------------ FBP
TEST(Fbp, ReconstructsUniformDisc) {
  FanBeamGeometry g = paper_geometry().scaled(64);
  const index_t n = g.image_px;
  const double mu0 = 0.02;
  Tensor mu({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) / n - 0.5;
      const double y = (iy + 0.5) / n - 0.5;
      if (x * x + y * y <= 0.09) mu.at(iy, ix) = static_cast<real_t>(mu0);
    }
  }
  const Tensor sino = forward_project(mu, g);
  const Tensor recon = fbp_reconstruct(sino, g);

  // Interior value should recover mu0 within a few percent; RMSE over
  // the disc interior should be small.
  double center_mean = 0.0;
  index_t count = 0;
  for (index_t iy = n / 2 - 4; iy < n / 2 + 4; ++iy) {
    for (index_t ix = n / 2 - 4; ix < n / 2 + 4; ++ix) {
      center_mean += recon.at(iy, ix);
      ++count;
    }
  }
  center_mean /= count;
  EXPECT_NEAR(center_mean, mu0, 0.15 * mu0);
  // Air outside stays near zero.
  EXPECT_NEAR(recon.at(2, 2), 0.0, 0.1 * mu0);
}

TEST(Fbp, SheppLoganFilterAlsoReconstructs) {
  FanBeamGeometry g = paper_geometry().scaled(48);
  const index_t n = g.image_px;
  Tensor mu({n, n});
  for (index_t iy = n / 3; iy < 2 * n / 3; ++iy) {
    for (index_t ix = n / 3; ix < 2 * n / 3; ++ix) {
      mu.at(iy, ix) = 0.02f;
    }
  }
  const Tensor sino = forward_project(mu, g);
  const Tensor recon = fbp_reconstruct(sino, g, RampFilter::kSheppLogan);
  EXPECT_NEAR(recon.at(n / 2, n / 2), 0.02, 0.005);
}

TEST(Fbp, NoisyReconstructionWorseThanNoiseless) {
  FanBeamGeometry g = paper_geometry().scaled(48);
  const index_t n = g.image_px;
  Tensor mu({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) / n - 0.5;
      const double y = (iy + 0.5) / n - 0.5;
      if (x * x + y * y <= 0.12) mu.at(iy, ix) = 0.02f;
    }
  }
  const Tensor sino = forward_project(mu, g);
  Rng rng(7);
  const Tensor noisy = apply_poisson_noise(sino, NoiseModel{5e3}, rng);
  const Tensor recon_clean = fbp_reconstruct(sino, g);
  const Tensor recon_noisy = fbp_reconstruct(noisy, g);
  double err_clean = 0.0, err_noisy = 0.0;
  for (index_t i = 0; i < mu.numel(); ++i) {
    err_clean += std::pow(double(recon_clean.data()[i]) - mu.data()[i], 2);
    err_noisy += std::pow(double(recon_noisy.data()[i]) - mu.data()[i], 2);
  }
  EXPECT_GT(err_noisy, 1.5 * err_clean);
}

TEST(Fbp, SinogramGeometryMismatchThrows) {
  FanBeamGeometry g = paper_geometry().scaled(32);
  Tensor bad({10, 10});
  EXPECT_THROW(filter_sinogram(bad, g), std::invalid_argument);
}

// ------------------------------------------------------------------- HU
TEST(Hu, WaterIsZeroHu) {
  Tensor mu = Tensor::full({2, 2}, static_cast<real_t>(kMuWater60KeV));
  const Tensor hu = mu_to_hu(mu);
  EXPECT_NEAR(hu.at(0, 0), 0.0, 1e-3);
}

TEST(Hu, AirIsMinus1000) {
  Tensor mu = Tensor::zeros({1, 1});
  EXPECT_NEAR(mu_to_hu(mu).at(0, 0), -1000.0, 1e-3);
}

TEST(Hu, RoundTripMuHuMu) {
  Rng rng(8);
  Tensor mu({8, 8});
  rng.fill_uniform(mu, 0.0, 0.04);
  const Tensor back = hu_to_mu(mu_to_hu(mu));
  EXPECT_LT(max_abs_diff(back, mu), 1e-5f);
}

TEST(Hu, NormalizeClampsAndScales) {
  const Tensor hu = Tensor::from_vector({4}, {-2000, -1024, 0, 2000});
  const Tensor unit = normalize_hu(hu);
  EXPECT_FLOAT_EQ(unit.at(0), 0.0f);  // clamped
  EXPECT_FLOAT_EQ(unit.at(1), 0.0f);
  EXPECT_NEAR(unit.at(2), 0.5f, 0.01);
  EXPECT_FLOAT_EQ(unit.at(3), 1.0f);  // clamped
}

TEST(Hu, NormalizeDenormalizeRoundTrip) {
  const Tensor hu = Tensor::from_vector({3}, {-500, 0, 500});
  const Tensor back = denormalize_hu(normalize_hu(hu));
  EXPECT_LT(max_abs_diff(back, hu), 0.5f);
}

}  // namespace
}  // namespace ccovid::ct
