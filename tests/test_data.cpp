// Synthetic data substrate: phantom anatomy and lesions, circular-FOV
// preparation, the low-dose physics chain, dataset factories and the
// §3.3.1 augmentations.
#include <gtest/gtest.h>

#include <cmath>

#include "ct/hu.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "data/lowdose.h"
#include "data/phantom.h"
#include "metrics/image_quality.h"

namespace ccovid::data {
namespace {

// -------------------------------------------------------------- phantom
TEST(Phantom, HuValuesWithinCtRange) {
  Rng rng(1);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(64, anatomy, {}, 0.5);
  EXPECT_GE(s.hu.min(), -1024.0f);
  EXPECT_LE(s.hu.max(), 1023.0f);
}

TEST(Phantom, BackgroundIsAir) {
  Rng rng(2);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(64, anatomy, {}, 0.5);
  EXPECT_NEAR(s.hu.at(0, 0), -1000.0f, 1.0f);
  EXPECT_NEAR(s.hu.at(63, 63), -1000.0f, 1.0f);
}

TEST(Phantom, MidSliceHasTwoLungs) {
  Rng rng(3);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(64, anatomy, {}, 0.5);
  // Mask is binary and non-trivial.
  double area = 0.0;
  for (index_t i = 0; i < s.lung_mask.numel(); ++i) {
    const real_t v = s.lung_mask.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
    area += v;
  }
  const double frac = area / s.lung_mask.numel();
  EXPECT_GT(frac, 0.05);
  EXPECT_LT(frac, 0.5);
  // Both sides populated.
  double left = 0.0, right = 0.0;
  for (index_t y = 0; y < 64; ++y) {
    for (index_t x = 0; x < 32; ++x) left += s.lung_mask.at(y, x);
    for (index_t x = 32; x < 64; ++x) right += s.lung_mask.at(y, x);
  }
  EXPECT_GT(left, 0.0);
  EXPECT_GT(right, 0.0);
}

TEST(Phantom, LungsTaperTowardApex) {
  Rng rng(4);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice mid = render_slice(64, anatomy, {}, 0.5);
  const PhantomSlice apex = render_slice(64, anatomy, {}, 0.05);
  EXPECT_GT(mid.lung_mask.sum(), apex.lung_mask.sum());
}

TEST(Phantom, CovidLesionsRaiseLungDensity) {
  Rng rng(5);
  const Anatomy anatomy = Anatomy::sample(rng);
  Rng lrng(6);
  const auto lesions = sample_covid_lesions(lrng);
  ASSERT_FALSE(lesions.empty());
  // Render at a lesion's own z so it is guaranteed visible.
  const double z = lesions.front().cz;
  const PhantomSlice healthy = render_slice(64, anatomy, {}, z);
  const PhantomSlice sick = render_slice(64, anatomy, lesions, z);
  // Mean HU inside the lung mask should rise (GGO/consolidation).
  double mean_h = 0.0, mean_s = 0.0, count = 0.0;
  for (index_t i = 0; i < healthy.hu.numel(); ++i) {
    if (healthy.lung_mask.data()[i] > 0.5f) {
      mean_h += healthy.hu.data()[i];
      mean_s += sick.hu.data()[i];
      count += 1.0;
    }
  }
  ASSERT_GT(count, 0.0);
  EXPECT_GT(mean_s / count, mean_h / count);
}

TEST(Phantom, LesionsAreMostlyPeripheralAndBounded) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    for (const Lesion& l : sample_covid_lesions(rng)) {
      EXPECT_GT(l.r, 0.0);
      EXPECT_LT(l.r, 0.2);
      EXPECT_GE(l.cz, 0.0);
      EXPECT_LE(l.cz, 1.0);
      EXPECT_GT(l.delta_hu, 0.0);
    }
  }
}

TEST(Phantom, VolumeSlicesAreCoherent) {
  Rng rng(8);
  const PhantomVolume vol = make_volume(8, 32, false, rng);
  EXPECT_EQ(vol.hu.shape(), Shape({8, 32, 32}));
  EXPECT_EQ(vol.label, 0);
  // Adjacent mid-volume slices should be highly similar (same anatomy).
  Tensor a({32, 32}), b({32, 32});
  std::copy(vol.hu.data() + 3 * 1024, vol.hu.data() + 4 * 1024, a.data());
  std::copy(vol.hu.data() + 4 * 1024, vol.hu.data() + 5 * 1024, b.data());
  index_t same_sign = 0;
  for (index_t i = 0; i < 1024; ++i) {
    same_sign += ((a.data()[i] > -500.0f) == (b.data()[i] > -500.0f));
  }
  EXPECT_GT(same_sign, 900);
}

TEST(Phantom, PositiveVolumeLabeled) {
  Rng rng(9);
  const PhantomVolume vol = make_volume(4, 32, true, rng);
  EXPECT_EQ(vol.label, 1);
}

TEST(Phantom, CircularArtifactAddAndRemove) {
  Rng rng(10);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(64, anatomy, {}, 0.5);
  const Tensor with_artifact = add_circular_fov_artifact(s.hu, -2000.0);
  EXPECT_FLOAT_EQ(with_artifact.at(0, 0), -2000.0f);  // corner outside
  EXPECT_FLOAT_EQ(with_artifact.at(32, 32), s.hu.at(32, 32));  // center kept
  const Tensor cleaned = remove_circular_fov_artifact(with_artifact);
  EXPECT_FLOAT_EQ(cleaned.at(0, 0), -1000.0f);  // padding -> air (Fig. 5)
  EXPECT_FLOAT_EQ(cleaned.at(32, 32), s.hu.at(32, 32));
}

// -------------------------------------------------------------- lowdose
class LowDoseTest : public ::testing::Test {
 protected:
  LowDoseConfig small_config() const {
    LowDoseConfig cfg;
    cfg.geometry = ct::paper_geometry().scaled(32);
    return cfg;
  }
};

TEST_F(LowDoseTest, PairInUnitRangeAndShaped) {
  Rng rng(11);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(32, anatomy, {}, 0.5);
  const LowDosePair pair = make_lowdose_pair(s.hu, small_config(), rng);
  EXPECT_EQ(pair.low.shape(), Shape({32, 32}));
  EXPECT_EQ(pair.full.shape(), Shape({32, 32}));
  EXPECT_GE(pair.low.min(), 0.0f);
  EXPECT_LE(pair.low.max(), 1.0f);
  EXPECT_GE(pair.full.min(), 0.0f);
  EXPECT_LE(pair.full.max(), 1.0f);
}

TEST_F(LowDoseTest, LowDoseIsDegradedButCorrelated) {
  Rng rng(12);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(32, anatomy, {}, 0.5);
  LowDoseConfig cfg = small_config();
  cfg.photons_per_ray = 2e4;  // strong noise
  const LowDosePair pair = make_lowdose_pair(s.hu, cfg, rng);
  const double m = metrics::mse(pair.full, pair.low);
  EXPECT_GT(m, 1e-5);  // visibly degraded
  EXPECT_LT(m, 0.2);   // but still the same image
}

TEST_F(LowDoseTest, FewerPhotonsMeansWorseImage) {
  Rng rng(13);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(32, anatomy, {}, 0.5);
  LowDoseConfig high = small_config();
  high.photons_per_ray = 1e6;  // paper's b
  LowDoseConfig low = small_config();
  low.photons_per_ray = 5e3;
  Rng r1(14), r2(14);
  const LowDosePair p_high = make_lowdose_pair(s.hu, high, r1);
  const LowDosePair p_low = make_lowdose_pair(s.hu, low, r2);
  EXPECT_GT(metrics::mse(p_low.full, p_low.low),
            metrics::mse(p_high.full, p_high.low));
}

TEST_F(LowDoseTest, NoiselessFbpIsUpperBound) {
  Rng rng(15);
  const Anatomy anatomy = Anatomy::sample(rng);
  const PhantomSlice s = render_slice(32, anatomy, {}, 0.5);
  LowDoseConfig cfg = small_config();
  cfg.photons_per_ray = 1e4;
  const Tensor clean_hu = noiseless_fbp(s.hu, cfg);
  const LowDosePair noisy = make_lowdose_pair(s.hu, cfg, rng);
  const Tensor clean_norm = ct::normalize_hu(clean_hu);
  EXPECT_LE(metrics::mse(noisy.full, clean_norm),
            metrics::mse(noisy.full, noisy.low) + 1e-6);
}

// -------------------------------------------------------------- datasets
TEST(Datasets, EnhancementSplitSizes) {
  Rng rng(16);
  EnhancementDatasetConfig cfg;
  cfg.image_px = 32;
  cfg.num_train = 3;
  cfg.num_val = 2;
  cfg.num_test = 1;
  const EnhancementDataset ds = make_enhancement_dataset(cfg, rng);
  EXPECT_EQ(ds.train.size(), 3u);
  EXPECT_EQ(ds.val.size(), 2u);
  EXPECT_EQ(ds.test.size(), 1u);
}

TEST(Datasets, ClassificationLabelsMixed) {
  Rng rng(17);
  ClassificationDatasetConfig cfg;
  cfg.depth = 4;
  cfg.image_px = 16;
  cfg.num_train = 12;
  cfg.num_test = 8;
  cfg.positive_fraction = 0.5;
  const ClassificationDataset ds = make_classification_dataset(cfg, rng);
  EXPECT_EQ(ds.train.size(), 12u);
  EXPECT_EQ(ds.test.size(), 8u);
  int positives = 0;
  for (const auto& s : ds.train) positives += s.label;
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, 12);
}

TEST(Datasets, SliceCountFilter) {
  // §2.1: keep scans with at least 128 slices.
  Tensor big({128, 4, 4});
  Tensor small({100, 4, 4});
  EXPECT_TRUE(passes_slice_count_filter(big));
  EXPECT_FALSE(passes_slice_count_filter(small));
  EXPECT_TRUE(passes_slice_count_filter(small, 50));
}

TEST(Datasets, RemoveCircularFovVolumeCleansEverySlice) {
  Rng rng(18);
  PhantomVolume vol = make_volume(3, 32, false, rng);
  // Inject the artifact.
  Tensor corrupted(vol.hu.shape());
  for (index_t z = 0; z < 3; ++z) {
    Tensor slice({32, 32});
    std::copy(vol.hu.data() + z * 1024, vol.hu.data() + (z + 1) * 1024,
              slice.data());
    const Tensor bad = add_circular_fov_artifact(slice, -2000.0);
    std::copy(bad.data(), bad.data() + 1024, corrupted.data() + z * 1024);
  }
  const Tensor cleaned = remove_circular_fov_volume(corrupted);
  for (index_t z = 0; z < 3; ++z) {
    EXPECT_FLOAT_EQ(cleaned.at(z, index_t(0), index_t(0)), -1000.0f);
  }
}

// ---------------------------------------------------------- augmentation
TEST(Augment, NoiseAppliedWithConfiguredProbability) {
  Rng rng(19);
  AugmentConfig cfg;
  cfg.noise_prob = 1.0;  // always
  cfg.contrast_prob = 0.0;
  cfg.intensity_magnitude = 0.0;
  const Tensor vol = Tensor::full({4, 8, 8}, 0.5f);
  const Tensor aug = augment_volume(vol, cfg, rng);
  EXPECT_GT(max_abs_diff(aug, vol), 0.01f);
}

TEST(Augment, NoAugmentationWhenDisabled) {
  Rng rng(20);
  AugmentConfig cfg;
  cfg.noise_prob = 0.0;
  cfg.contrast_prob = 0.0;
  cfg.intensity_magnitude = 0.0;
  const Tensor vol = Tensor::full({2, 4, 4}, 0.3f);
  const Tensor aug = augment_volume(vol, cfg, rng);
  EXPECT_LT(max_abs_diff(aug, vol), 1e-6f);
}

TEST(Augment, NoiseVarianceMatchesConfig) {
  Rng rng(21);
  AugmentConfig cfg;
  cfg.noise_prob = 1.0;
  cfg.contrast_prob = 0.0;
  cfg.intensity_magnitude = 0.0;
  cfg.noise_variance = 0.1;  // §3.3.1
  const Tensor vol = Tensor::zeros({16, 16, 16});
  const Tensor aug = augment_volume(vol, cfg, rng);
  double var = 0.0;
  for (index_t i = 0; i < aug.numel(); ++i) {
    var += static_cast<double>(aug.data()[i]) * aug.data()[i];
  }
  var /= aug.numel();
  EXPECT_NEAR(var, 0.1, 0.01);
}

TEST(Augment, IntensityScaleBounded) {
  Rng rng(22);
  AugmentConfig cfg;
  cfg.noise_prob = 0.0;
  cfg.contrast_prob = 0.0;
  cfg.intensity_magnitude = 0.1;  // §3.3.1
  const Tensor vol = Tensor::full({2, 4, 4}, 1.0f);
  const Tensor aug = augment_volume(vol, cfg, rng);
  EXPECT_GE(aug.min(), 0.9f - 1e-5f);
  EXPECT_LE(aug.max(), 1.1f + 1e-5f);
}

TEST(Augment, InputIsNotMutated) {
  Rng rng(23);
  AugmentConfig cfg;
  const Tensor vol = Tensor::full({2, 4, 4}, 0.5f);
  const Tensor copy = vol.clone();
  (void)augment_volume(vol, cfg, rng);
  EXPECT_TRUE(allclose(vol, copy));
}

}  // namespace
}  // namespace ccovid::data
