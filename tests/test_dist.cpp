// Message-passing runtime and distributed data-parallel trainer:
// point-to-point channels, barrier, ring all-reduce correctness across
// world sizes and payload lengths, DDP replica consistency and its
// equivalence to large-batch single-worker training.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "autograd/losses.h"
#include "dist/channel.h"
#include "dist/comm.h"
#include "dist/ddp.h"
#include "dist/interconnect.h"
#include "nn/ddnet.h"

namespace ccovid::dist {
namespace {

TEST(Channel, FifoOrder) {
  Channel ch;
  ch.send({1.0f});
  ch.send({2.0f});
  EXPECT_FLOAT_EQ(ch.recv()[0], 1.0f);
  EXPECT_FLOAT_EQ(ch.recv()[0], 2.0f);
}

TEST(Channel, BlocksUntilMessage) {
  Channel ch;
  std::thread producer([&] { ch.send({42.0f}); });
  const Message m = ch.recv();
  producer.join();
  EXPECT_FLOAT_EQ(m[0], 42.0f);
}

TEST(World, PointToPoint) {
  World w(2);
  w.send(0, 1, {3.5f, 4.5f});
  const Message m = w.recv(1, 0);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_FLOAT_EQ(m[1], 4.5f);
}

TEST(World, BarrierSynchronizesAllRanks) {
  World w(4);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      (void)r;
      before.fetch_add(1);
      w.barrier();
      EXPECT_EQ(before.load(), 4);  // nobody passes until all arrived
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), 4);
}

struct AllReduceCase {
  int world;
  index_t length;
};

class AllReduceSweep : public ::testing::TestWithParam<AllReduceCase> {};

TEST_P(AllReduceSweep, SumsAcrossRanks) {
  const auto c = GetParam();
  World w(c.world);
  std::vector<std::vector<real_t>> buffers(c.world);
  // buffer[r][i] = r + i; expected sum over r = W*(W-1)/2 + W*i.
  for (int r = 0; r < c.world; ++r) {
    buffers[r].resize(static_cast<std::size_t>(c.length));
    for (index_t i = 0; i < c.length; ++i) {
      buffers[r][i] = static_cast<real_t>(r + i);
    }
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < c.world; ++r) {
    threads.emplace_back(
        [&w, &buffers, r] { w.all_reduce_sum(r, buffers[r]); });
  }
  for (auto& t : threads) t.join();
  const double base = c.world * (c.world - 1) / 2.0;
  for (int r = 0; r < c.world; ++r) {
    for (index_t i = 0; i < c.length; ++i) {
      EXPECT_NEAR(buffers[r][i], base + c.world * i, 1e-3)
          << "rank " << r << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AllReduceSweep,
    ::testing::Values(AllReduceCase{1, 16}, AllReduceCase{2, 10},
                      AllReduceCase{3, 7},   // length not divisible
                      AllReduceCase{4, 64}, AllReduceCase{8, 33},
                      AllReduceCase{5, 4},   // world > chunks? (len < n ok)
                      AllReduceCase{2, 1}));

TEST(World, AllReduceTracksBytes) {
  World w(2);
  std::vector<real_t> a(100, 1.0f), b(100, 2.0f);
  std::thread t0([&] { w.all_reduce_sum(0, a); });
  std::thread t1([&] { w.all_reduce_sum(1, b); });
  t0.join();
  t1.join();
  // Ring: 2*(world-1) = 2 sends of ~half the buffer each = ~100 floats.
  EXPECT_NEAR(static_cast<double>(w.bytes_sent(0)), 100 * sizeof(real_t),
              8 * sizeof(real_t));
}

TEST(World, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    World w(3);
    std::vector<std::vector<real_t>> bufs(3, std::vector<real_t>(5, 0.0f));
    for (std::size_t i = 0; i < 5; ++i) {
      bufs[static_cast<std::size_t>(root)][i] =
          static_cast<real_t>(10 * root + static_cast<int>(i));
    }
    std::vector<std::thread> threads;
    for (int r = 0; r < 3; ++r) {
      threads.emplace_back(
          [&w, &bufs, r, root] { w.broadcast(r, root, bufs[r]); });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < 3; ++r) {
      for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_FLOAT_EQ(bufs[r][i],
                        static_cast<real_t>(10 * root + static_cast<int>(i)));
      }
    }
  }
}

TEST(World, ReduceSumToRoot) {
  World w(4);
  std::vector<std::vector<real_t>> bufs(4);
  for (int r = 0; r < 4; ++r) bufs[r] = {real_t(r), real_t(2 * r)};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&w, &bufs, r] { w.reduce_sum(r, 2, bufs[r]); });
  }
  for (auto& t : threads) t.join();
  EXPECT_FLOAT_EQ(bufs[2][0], 0 + 1 + 2 + 3);
  EXPECT_FLOAT_EQ(bufs[2][1], 2 * (0 + 1 + 2 + 3));
  // Non-roots untouched.
  EXPECT_FLOAT_EQ(bufs[0][0], 0.0f);
  EXPECT_FLOAT_EQ(bufs[3][1], 6.0f);
}

TEST(World, AllGatherOrdersChunksByRank) {
  const int n = 4;
  World w(n);
  std::vector<std::vector<real_t>> outs(n);
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&w, &outs, r] {
      const std::vector<real_t> mine = {real_t(r), real_t(r) + 0.5f};
      w.all_gather(r, mine, outs[r]);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(outs[r].size(), 8u);
    for (int c = 0; c < n; ++c) {
      EXPECT_FLOAT_EQ(outs[r][2 * c], real_t(c)) << "rank " << r;
      EXPECT_FLOAT_EQ(outs[r][2 * c + 1], real_t(c) + 0.5f);
    }
  }
}

TEST(World, BroadcastSingleRankNoop) {
  World w(1);
  std::vector<real_t> buf = {1.0f, 2.0f};
  w.broadcast(0, 0, buf);
  EXPECT_FLOAT_EQ(buf[1], 2.0f);
}

// ---------------------------------------------------------- interconnect
TEST(Interconnect, SingleNodeIsFree) {
  InterconnectModel net;
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(1 << 20, 1), 0.0);
}

TEST(Interconnect, CostGrowsWithWorldAndBytes) {
  InterconnectModel net;
  const double t4 = net.allreduce_seconds(1 << 20, 4);
  const double t8 = net.allreduce_seconds(1 << 20, 8);
  EXPECT_GT(t8, t4);
  EXPECT_GT(net.allreduce_seconds(1 << 22, 4), t4);
}

TEST(Interconnect, BandwidthTermDominatesLargeMessages) {
  InterconnectModel net;
  // 100 MB over 10 GbE: ~2*(N-1)/N * 0.08 s — latency negligible.
  const double t = net.allreduce_seconds(100'000'000, 4);
  const double bw_only = 2.0 * 3 * (100'000'000.0 / 4) / net.bandwidth_Bps;
  EXPECT_NEAR(t, bw_only, 0.01 * bw_only + 6 * net.latency_s);
}

// ------------------------------------------------------------------ DDP
std::shared_ptr<nn::Module> tiny_ddnet_factory() {
  // NOTE: callers seed nn::seed_init_rng first for determinism.
  return std::make_shared<nn::DDnet>(nn::DDnetConfig::tiny());
}

struct ToyData {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;
};

ToyData make_toy_data(index_t count, index_t hw, std::uint64_t seed) {
  Rng rng(seed);
  ToyData d;
  for (index_t i = 0; i < count; ++i) {
    Tensor target({1, 1, hw, hw});
    rng.fill_uniform(target, 0.2, 0.8);
    Tensor input = target.clone();
    for (index_t j = 0; j < input.numel(); ++j) {
      input.data()[j] += static_cast<real_t>(rng.gaussian(0, 0.1));
    }
    d.inputs.push_back(std::move(input));
    d.targets.push_back(std::move(target));
  }
  return d;
}

DdpTrainer::LossFn toy_loss(const ToyData& data) {
  return [&data](nn::Module& model, int /*rank*/,
                 const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var total;
    for (index_t s : samples) {
      autograd::Var x(data.inputs[s].clone());
      autograd::Var pred = net.forward(x);
      autograd::Var loss =
          autograd::enhancement_loss(pred, data.targets[s], 0.1f, 11, 1);
      total = total.defined() ? autograd::add(total, loss) : loss;
    }
    return autograd::mul_scalar(
        total, 1.0f / static_cast<real_t>(samples.size()));
  };
}

TEST(Ddp, ReplicasStayInLockStep) {
  nn::seed_init_rng(100);
  DdpConfig cfg;
  cfg.world_size = 2;
  cfg.per_worker_batch = 1;
  cfg.lr = 1e-3;
  DdpTrainer trainer(tiny_ddnet_factory, cfg);
  const ToyData data = make_toy_data(4, 16, 101);
  Rng rng(102);
  trainer.train_epoch(4, toy_loss(data), rng);
  // After synchronized updates, replica parameters must be identical.
  const auto p0 = trainer.model(0).parameters();
  const auto p1 = trainer.model(1).parameters();
  ASSERT_EQ(p0.size(), p1.size());
  for (std::size_t i = 0; i < p0.size(); ++i) {
    EXPECT_LT(max_abs_diff(p0[i].value(), p1[i].value()), 1e-5f);
  }
}

TEST(Ddp, LossDecreasesOverEpochs) {
  nn::seed_init_rng(103);
  DdpConfig cfg;
  cfg.world_size = 2;
  cfg.per_worker_batch = 1;
  cfg.lr = 2e-3;
  DdpTrainer trainer(tiny_ddnet_factory, cfg);
  const ToyData data = make_toy_data(4, 16, 104);
  Rng rng(105);
  const EpochStats first = trainer.train_epoch(4, toy_loss(data), rng);
  EpochStats last{};
  for (int e = 0; e < 4; ++e) {
    last = trainer.train_epoch(4, toy_loss(data), rng);
  }
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(Ddp, MatchesSingleWorkerLargeBatch) {
  // 2 workers x batch 1 with averaged gradients == 1 worker x batch 2:
  // the defining semantics of synchronous data parallelism.
  const ToyData data = make_toy_data(4, 16, 106);
  Rng rng_a(1), rng_b(1);

  nn::seed_init_rng(107);
  DdpConfig multi;
  multi.world_size = 2;
  multi.per_worker_batch = 1;
  multi.lr = 1e-3;
  DdpTrainer t_multi(tiny_ddnet_factory, multi);

  nn::seed_init_rng(107);  // identical initial weights
  DdpConfig single;
  single.world_size = 1;
  single.per_worker_batch = 2;
  single.lr = 1e-3;
  DdpTrainer t_single(tiny_ddnet_factory, single);

  t_multi.train_epoch(4, toy_loss(data), rng_a);
  t_single.train_epoch(4, toy_loss(data), rng_b);

  const auto pm = t_multi.model(0).parameters();
  const auto ps = t_single.model(0).parameters();
  ASSERT_EQ(pm.size(), ps.size());
  for (std::size_t i = 0; i < pm.size(); ++i) {
    EXPECT_LT(max_abs_diff(pm[i].value(), ps[i].value()), 5e-4f)
        << "parameter " << i;
  }
}

TEST(Ddp, ModeledTimeIncludesCommunication) {
  nn::seed_init_rng(108);
  DdpConfig cfg;
  cfg.world_size = 4;
  cfg.per_worker_batch = 1;
  DdpTrainer trainer(tiny_ddnet_factory, cfg);
  const ToyData data = make_toy_data(4, 16, 109);
  Rng rng(110);
  const EpochStats stats = trainer.train_epoch(4, toy_loss(data), rng);
  EXPECT_GT(stats.modeled_seconds, 0.0);
  EXPECT_GT(stats.allreduce_bytes_per_rank, 0u);
  EXPECT_EQ(stats.steps, 1);  // 4 samples / (4 ranks * batch 1)
}

TEST(Ddp, LrDecayAppliesToAllReplicas) {
  nn::seed_init_rng(111);
  DdpConfig cfg;
  cfg.world_size = 2;
  cfg.lr = 1e-4;
  cfg.lr_decay = 0.8;  // the paper's schedule
  DdpTrainer trainer(tiny_ddnet_factory, cfg);
  trainer.decay_lr();
  trainer.decay_lr();
  // No direct accessor for optimizer lr per rank; train one epoch to
  // ensure the machinery still works after decay.
  const ToyData data = make_toy_data(2, 16, 112);
  Rng rng(113);
  EXPECT_NO_THROW(trainer.train_epoch(2, toy_loss(data), rng));
}

TEST(Ddp, RejectsDatasetSmallerThanGlobalBatch) {
  nn::seed_init_rng(114);
  DdpConfig cfg;
  cfg.world_size = 4;
  cfg.per_worker_batch = 2;
  DdpTrainer trainer(tiny_ddnet_factory, cfg);
  const ToyData data = make_toy_data(4, 16, 115);
  Rng rng(116);
  EXPECT_THROW(trainer.train_epoch(4, toy_loss(data), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccovid::dist
