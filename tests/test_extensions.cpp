// Extension substrates: the SIRT iterative reconstructor with its exact
// Siddon adjoint, and the U-Net comparator denoiser.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/losses.h"
#include "autograd/optim.h"
#include "core/random.h"
#include "ct/iterative.h"
#include "ct/fbp.h"
#include "ct/sparse_view.h"
#include "ct/siddon.h"
#include "metrics/image_quality.h"
#include "nn/unet.h"

namespace ccovid {
namespace {

Tensor disc_phantom(index_t n, double radius_frac, real_t value) {
  Tensor mu({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) / n - 0.5;
      const double y = (iy + 0.5) / n - 0.5;
      if (x * x + y * y <= radius_frac * radius_frac) {
        mu.at(iy, ix) = value;
      }
    }
  }
  return mu;
}

// ------------------------------------------------------------- adjoint
TEST(SiddonAdjoint, InnerProductIdentity) {
  // <A x, y> == <x, A^T y>: the defining property of the adjoint, and
  // what SIRT's convergence relies on.
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(24);
  Rng rng(1);
  Tensor x({g.image_px, g.image_px});
  rng.fill_uniform(x, 0.0, 0.05);
  Tensor y({g.num_views, g.num_dets});
  rng.fill_uniform(y, 0.0, 1.0);

  const Tensor ax = ct::forward_project(x, g);
  const Tensor aty = ct::back_project_adjoint(y, g);

  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < ax.numel(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
  }
  for (index_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * aty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4 * std::fabs(lhs));
}

TEST(SiddonAdjoint, ZeroSinogramGivesZeroImage) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  const Tensor zero({g.num_views, g.num_dets});
  EXPECT_FLOAT_EQ(ct::back_project_adjoint(zero, g).abs_max(), 0.0f);
}

TEST(SiddonAdjoint, ShapeMismatchThrows) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  Tensor bad({3, 3});
  EXPECT_THROW(ct::back_project_adjoint(bad, g), std::invalid_argument);
}

// ---------------------------------------------------------------- SIRT
TEST(Sirt, ResidualDecreasesMonotonically) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(24);
  const Tensor mu = disc_phantom(24, 0.3, 0.02f);
  const Tensor sino = ct::forward_project(mu, g);
  ct::SirtConfig cfg;
  cfg.iterations = 8;
  const auto result = ct::sirt_reconstruct(sino, g, cfg);
  ASSERT_EQ(result.residuals.size(), 8u);
  for (std::size_t i = 1; i < result.residuals.size(); ++i) {
    EXPECT_LE(result.residuals[i], result.residuals[i - 1] * 1.001)
        << "iteration " << i;
  }
}

TEST(Sirt, ReconstructsDiscInterior) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(32);
  const Tensor mu = disc_phantom(32, 0.3, 0.02f);
  const Tensor sino = ct::forward_project(mu, g);
  ct::SirtConfig cfg;
  cfg.iterations = 30;
  const auto result = ct::sirt_reconstruct(sino, g, cfg);
  double center = 0.0;
  for (index_t iy = 14; iy < 18; ++iy) {
    for (index_t ix = 14; ix < 18; ++ix) {
      center += result.image.at(iy, ix);
    }
  }
  EXPECT_NEAR(center / 16.0, 0.02, 0.004);
}

TEST(Sirt, WarmStartFromFbpConvergesFaster) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(24);
  const Tensor mu = disc_phantom(24, 0.25, 0.02f);
  const Tensor sino = ct::forward_project(mu, g);
  ct::SirtConfig cfg;
  cfg.iterations = 3;
  const auto cold = ct::sirt_reconstruct(sino, g, cfg);
  const auto warm = ct::sirt_reconstruct(sino, g, cfg, mu /* oracle */);
  EXPECT_LT(warm.residuals.front(), cold.residuals.front());
}

TEST(Sirt, NonnegativityClamp) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  const Tensor mu = disc_phantom(16, 0.3, 0.02f);
  Tensor sino = ct::forward_project(mu, g);
  // Corrupt with strong negative noise so unclamped SIRT would go
  // negative.
  Rng rng(2);
  for (index_t i = 0; i < sino.numel(); ++i) {
    sino.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.2));
  }
  ct::SirtConfig cfg;
  cfg.iterations = 5;
  cfg.nonnegativity = true;
  const auto result = ct::sirt_reconstruct(sino, g, cfg);
  EXPECT_GE(result.image.min(), 0.0f);
}

TEST(Sirt, RejectsBadConfig) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  Tensor sino({g.num_views, g.num_dets});
  ct::SirtConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(ct::sirt_reconstruct(sino, g, cfg), std::invalid_argument);
}

TEST(Sirt, HandlesNoisyDataBetterThanRawBackprojection) {
  // A smoke property: SIRT image correlates with the phantom.
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(24);
  const Tensor mu = disc_phantom(24, 0.3, 0.02f);
  Tensor sino = ct::forward_project(mu, g);
  Rng rng(3);
  for (index_t i = 0; i < sino.numel(); ++i) {
    sino.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.05));
  }
  ct::SirtConfig cfg;
  cfg.iterations = 15;
  const auto result = ct::sirt_reconstruct(sino, g, cfg);
  EXPECT_LT(metrics::mse(result.image, mu), 1e-4);
}

// --------------------------------------------------------- sparse view
TEST(SparseView, DecimationKeepsEveryNthView) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  g.num_views = 64;
  Tensor sino({64, g.num_dets});
  for (index_t v = 0; v < 64; ++v) {
    for (index_t d = 0; d < g.num_dets; ++d) {
      sino.at(v, d) = static_cast<real_t>(v);
    }
  }
  ct::FanBeamGeometry gs;
  const Tensor sparse = ct::decimate_views(sino, g, 4, &gs);
  EXPECT_EQ(gs.num_views, 16);
  EXPECT_EQ(sparse.dim(0), 16);
  EXPECT_FLOAT_EQ(sparse.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(sparse.at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(sparse.at(15, 0), 60.0f);
}

TEST(SparseView, DecimationRejectsNonDivisor) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  g.num_views = 64;
  Tensor sino({64, g.num_dets});
  EXPECT_THROW(ct::decimate_views(sino, g, 5, nullptr),
               std::invalid_argument);
}

TEST(SparseView, InpaintingInterpolatesLinearly) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  g.num_views = 8;
  Tensor sparse({2, g.num_dets});
  for (index_t d = 0; d < g.num_dets; ++d) {
    sparse.at(0, d) = 0.0f;
    sparse.at(1, d) = 4.0f;
  }
  const Tensor full = ct::inpaint_views(sparse, g, 4);
  EXPECT_EQ(full.dim(0), 8);
  EXPECT_FLOAT_EQ(full.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(full.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(full.at(3, 0), 3.0f);
  EXPECT_FLOAT_EQ(full.at(4, 0), 4.0f);
  // Circular wrap: views between index 4 (value 4) and index 0 (value 0).
  EXPECT_FLOAT_EQ(full.at(6, 0), 2.0f);
}

TEST(SparseView, RoundTripIdentityAtFactorOne) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  g.num_views = 16;
  Rng rng(20);
  Tensor sino({16, g.num_dets});
  rng.fill_uniform(sino, 0.0, 1.0);
  ct::FanBeamGeometry gs;
  const Tensor sparse = ct::decimate_views(sino, g, 1, &gs);
  EXPECT_TRUE(allclose(sparse, sino));
  EXPECT_TRUE(allclose(ct::inpaint_views(sparse, g, 1), sino));
}

TEST(SparseView, SparseReconstructionIsWorseThanFull) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(32);
  g.num_views = 128;
  const Tensor mu = disc_phantom(32, 0.3, 0.02f);
  const Tensor sino = ct::forward_project(mu, g);
  ct::FanBeamGeometry gs;
  const Tensor sparse = ct::decimate_views(sino, g, 8, &gs);
  const Tensor full_recon = ct::fbp_reconstruct(sino, g);
  const Tensor sparse_recon = ct::fbp_reconstruct(sparse, gs);
  EXPECT_GT(metrics::mse(sparse_recon, mu), metrics::mse(full_recon, mu));
}

TEST(SparseView, InpaintingBeatsPlainSparse) {
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(32);
  g.num_views = 128;
  const Tensor mu = disc_phantom(32, 0.3, 0.02f);
  const Tensor sino = ct::forward_project(mu, g);
  ct::FanBeamGeometry gs;
  const Tensor sparse = ct::decimate_views(sino, g, 8, &gs);
  const Tensor recon_sparse = ct::fbp_reconstruct(sparse, gs);
  const Tensor recon_inpaint =
      ct::fbp_reconstruct(ct::inpaint_views(sparse, g, 8), g);
  EXPECT_LT(metrics::mse(recon_inpaint, mu), metrics::mse(recon_sparse, mu));
}

// ---------------------------------------------------------------- UNet
TEST(UNet, PreservesShape) {
  nn::seed_init_rng(4);
  nn::UNetDenoiser net;
  net.set_training(false);
  Rng rng(5);
  Tensor img({16, 24});
  rng.fill_uniform(img, 0.0, 1.0);
  const Tensor out = net.enhance(img);
  EXPECT_EQ(out.shape(), img.shape());
}

TEST(UNet, ResidualInitNearIdentity) {
  nn::seed_init_rng(6);
  nn::UNetDenoiser net;  // residual=true, N(0, 0.01) weights
  net.set_training(false);
  Rng rng(7);
  Tensor img({16, 16});
  rng.fill_uniform(img, 0.3, 0.7);
  EXPECT_LT(max_abs_diff(net.enhance(img), img), 0.5f);
}

TEST(UNet, RejectsIndivisibleExtent) {
  nn::seed_init_rng(8);
  nn::UNetDenoiser net;
  Rng rng(9);
  Tensor img({10, 10});
  EXPECT_THROW(net.enhance(img), std::invalid_argument);
}

TEST(UNet, TrainsToDenoise) {
  nn::seed_init_rng(10);
  nn::UNetDenoiser net;
  Rng rng(11);
  Tensor target({1, 1, 16, 16});
  rng.fill_uniform(target, 0.2, 0.8);
  Tensor noisy = target.clone();
  for (index_t i = 0; i < noisy.numel(); ++i) {
    noisy.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.15));
  }
  autograd::Adam opt(net.parameters(), 2e-3);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 12; ++step) {
    autograd::Var pred = net.forward(autograd::Var(noisy.clone()));
    autograd::Var loss = autograd::mse_loss(pred, target);
    if (step == 0) first = loss.value().at(0);
    last = loss.value().at(0);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last, first);
}

TEST(UNet, StateDictRoundTrip) {
  nn::seed_init_rng(12);
  nn::UNetDenoiser a;
  nn::seed_init_rng(999);
  nn::UNetDenoiser b;
  b.load_state_dict(a.state_dict());
  Rng rng(13);
  Tensor img({16, 16});
  rng.fill_uniform(img, 0.0, 1.0);
  a.set_training(false);
  b.set_training(false);
  EXPECT_TRUE(allclose(a.enhance(img), b.enhance(img), 1e-5f, 1e-5f));
}

}  // namespace
}  // namespace ccovid
