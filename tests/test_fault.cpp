// Failpoint-registry suite: schedule-grammar parsing, every trigger
// type, thread-scoped filters, seed-driven determinism across reruns,
// the injection utilities, and the compile-out path (fault_disabled_tu
// builds the same hooks with CCOVID_DISABLE_FAILPOINTS).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/tensor.h"
#include "fault/failpoint.h"

namespace ccovid::fault_test {
bool disabled_tu_compiled_in();
bool disabled_tu_hook_fires();
}  // namespace ccovid::fault_test

namespace ccovid::fault {
namespace {

// The registry is process-global: every test starts and ends disarmed.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

// Tests that exercise hook macros need them compiled in; with a global
// -DCCOVID_DISABLE_FAILPOINTS=ON build they skip (the registry, parser,
// and injection-utility tests still run — only the macros vanish).
#define REQUIRE_HOOKS_COMPILED_IN()                                     \
  do {                                                                  \
    if (!kCompiledIn)                                                   \
      GTEST_SKIP() << "failpoint macros compiled out "                  \
                      "(CCOVID_DISABLE_FAILPOINTS)";                    \
  } while (0)

// ------------------------------------------------------------- parsing

TEST_F(FaultTest, ParsesFullGrammar) {
  Schedule s = parse_schedule("nth(3)*thread(1)*delay(50ms)");
  EXPECT_EQ(s.trigger, Schedule::Trigger::kNth);
  EXPECT_EQ(s.k, 3u);
  EXPECT_EQ(s.thread, 1);
  EXPECT_EQ(s.action, Action::kDelay);
  EXPECT_DOUBLE_EQ(s.delay_s, 0.05);

  s = parse_schedule("prob(0.25)*corrupt(8)");
  EXPECT_EQ(s.trigger, Schedule::Trigger::kProb);
  EXPECT_DOUBLE_EQ(s.p, 0.25);
  EXPECT_EQ(s.action, Action::kCorrupt);
  EXPECT_EQ(s.count, 8u);

  // Defaults: always-trigger, error action, any thread.
  s = parse_schedule("error");
  EXPECT_EQ(s.trigger, Schedule::Trigger::kAlways);
  EXPECT_EQ(s.action, Action::kError);
  EXPECT_EQ(s.thread, -1);

  s = parse_schedule("once");
  EXPECT_EQ(s.trigger, Schedule::Trigger::kOnce);
  EXPECT_EQ(s.action, Action::kError);
  EXPECT_TRUE(s.one_shot());

  // Delay units.
  EXPECT_DOUBLE_EQ(parse_schedule("delay(2s)").delay_s, 2.0);
  EXPECT_DOUBLE_EQ(parse_schedule("delay(100us)").delay_s, 1e-4);
  EXPECT_EQ(parse_schedule("nan(4)").action, Action::kNan);
  EXPECT_EQ(parse_schedule("off").action, Action::kNone);
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
  EXPECT_THROW(parse_schedule("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("nth(0)"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("nth(x)"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("prob(1.5)"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("once*nth(2)"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("error*delay(1ms)"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("thread(-1)"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("delay(5kg)"), std::invalid_argument);
  EXPECT_THROW(Registry::instance().configure("noequalsign"),
               std::invalid_argument);
}

// ------------------------------------------------------------ triggers

TEST_F(FaultTest, DisarmedHookNeverFires) {
  EXPECT_FALSE(Registry::any_armed());
  EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
}

TEST_F(FaultTest, AlwaysTriggerFiresEveryHit) {
  REQUIRE_HOOKS_COMPILED_IN();
  Registry::instance().arm("test.fault.site", "error");
  EXPECT_TRUE(Registry::any_armed());
  for (int i = 0; i < 5; ++i) {
    auto f = CCOVID_FAILPOINT_FIRED("test.fault.site");
    ASSERT_TRUE(f);
    EXPECT_EQ(f.action, Action::kError);
  }
  auto& fp = Registry::instance().handle("test.fault.site");
  EXPECT_EQ(fp.fires(), 5u);
  EXPECT_GE(fp.hits(), 5u);
}

TEST_F(FaultTest, OnceIsOneShot) {
  REQUIRE_HOOKS_COMPILED_IN();
  Registry::instance().arm("test.fault.site", "once*error");
  EXPECT_TRUE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
  // Disarmed after the single fire — the global fast path goes quiet.
  EXPECT_FALSE(Registry::any_armed());
  EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
}

TEST_F(FaultTest, NthFiresExactlyOnKthHit) {
  REQUIRE_HOOKS_COMPILED_IN();
  Registry::instance().arm("test.fault.site", "nth(3)");
  EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
  EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
  EXPECT_TRUE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
  EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
  EXPECT_EQ(Registry::instance().handle("test.fault.site").fires(), 1u);
}

TEST_F(FaultTest, EveryAndAfterAndTimes) {
  REQUIRE_HOOKS_COMPILED_IN();
  Registry::instance().arm("test.fault.site", "every(2)");
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    if (CCOVID_FAILPOINT_FIRED("test.fault.site")) ++fired;
  }
  EXPECT_EQ(fired, 3);  // hits 2, 4, 6

  Registry::instance().arm("test.fault.site", "after(2)");
  fired = 0;
  for (int i = 0; i < 5; ++i) {
    if (CCOVID_FAILPOINT_FIRED("test.fault.site")) ++fired;
  }
  EXPECT_EQ(fired, 3);  // hits 3, 4, 5 (counters restart on re-arm)

  Registry::instance().arm("test.fault.site", "times(2)");
  fired = 0;
  for (int i = 0; i < 5; ++i) {
    if (CCOVID_FAILPOINT_FIRED("test.fault.site")) ++fired;
  }
  EXPECT_EQ(fired, 2);  // first two hits, then auto-disarm
  EXPECT_FALSE(Registry::any_armed());
}

TEST_F(FaultTest, ThreadFilterUsesScopedOrdinal) {
  REQUIRE_HOOKS_COMPILED_IN();
  Registry::instance().arm("test.fault.site", "thread(2)*error");
  EXPECT_EQ(thread_ordinal(), -1);
  EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));  // no ordinal
  {
    ScopedThreadOrdinal o(1);
    EXPECT_FALSE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
    {
      ScopedThreadOrdinal inner(2);  // nests and restores
      EXPECT_TRUE(CCOVID_FAILPOINT_FIRED("test.fault.site"));
    }
    EXPECT_EQ(thread_ordinal(), 1);
  }
  // Ordinals are thread-local: another thread's ordinal is independent.
  bool other_fired = true;
  std::thread t([&] {
    ScopedThreadOrdinal o(3);
    other_fired = static_cast<bool>(CCOVID_FAILPOINT_FIRED("test.fault.site"));
  });
  t.join();
  EXPECT_FALSE(other_fired);
}

TEST_F(FaultTest, DelayActionStallsTheCaller) {
  REQUIRE_HOOKS_COMPILED_IN();
  Registry::instance().arm("test.fault.site", "once*delay(30ms)");
  const auto t0 = std::chrono::steady_clock::now();
  auto f = CCOVID_FAILPOINT_FIRED("test.fault.site");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(f);
  EXPECT_EQ(f.action, Action::kDelay);
  EXPECT_GE(elapsed, 0.03);
}

// --------------------------------------------------------- determinism

// Replays `hits` evaluations of a prob schedule and returns the fire
// pattern as a bitmask (hit i -> bit i).
std::uint64_t prob_pattern(std::uint64_t seed, int hits) {
  Registry::instance().set_seed(seed);
  Registry::instance().arm("test.fault.prob", "prob(0.4)");
  std::uint64_t pattern = 0;
  for (int i = 0; i < hits; ++i) {
    if (CCOVID_FAILPOINT_FIRED("test.fault.prob")) {
      pattern |= std::uint64_t{1} << i;
    }
  }
  Registry::instance().disarm("test.fault.prob");
  return pattern;
}

TEST_F(FaultTest, ProbScheduleIsSeedDeterministic) {
  REQUIRE_HOOKS_COMPILED_IN();
  const std::uint64_t a1 = prob_pattern(1234, 60);
  const std::uint64_t a2 = prob_pattern(1234, 60);
  EXPECT_EQ(a1, a2);  // same seed -> identical fire sequence
  EXPECT_NE(a1, 0u);                            // p=0.4 over 60 hits:
  EXPECT_NE(a1, (std::uint64_t{1} << 60) - 1);  // some fire, some don't

  const std::uint64_t b = prob_pattern(99, 60);
  EXPECT_NE(a1, b);  // different seed -> different sequence
}

TEST_F(FaultTest, PerFireSeedsAreStableAndDistinct) {
  REQUIRE_HOOKS_COMPILED_IN();
  auto collect = [] {
    Registry::instance().set_seed(777);
    Registry::instance().arm("test.fault.site", "nan(2)");
    std::vector<std::uint64_t> seeds;
    for (int i = 0; i < 4; ++i) {
      auto f = CCOVID_FAILPOINT_FIRED("test.fault.site");
      seeds.push_back(f.seed);
    }
    Registry::instance().disarm("test.fault.site");
    return seeds;
  };
  const auto s1 = collect();
  const auto s2 = collect();
  EXPECT_EQ(s1, s2);  // reproducible run-to-run
  for (std::size_t i = 1; i < s1.size(); ++i) {
    EXPECT_NE(s1[i], s1[i - 1]);  // but distinct per fire
  }
}

TEST_F(FaultTest, CorruptBytesIsDeterministic) {
  std::vector<unsigned char> a(64, 0), b(64, 0), c(64, 0);
  corrupt_bytes(a.data(), a.size(), 42, 4);
  corrupt_bytes(b.data(), b.size(), 42, 4);
  corrupt_bytes(c.data(), c.size(), 43, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  int flipped = 0;
  for (unsigned char x : a) {
    if (x != 0) ++flipped;
  }
  EXPECT_GE(flipped, 1);  // n draws may collide, but at least one bit flips
  EXPECT_LE(flipped, 4);
}

TEST_F(FaultTest, InjectNonfinitePoisonsRequestedCount) {
  Tensor t = Tensor::zeros({8, 8});
  inject_nonfinite(t, /*seed=*/7, /*n=*/5);
  int bad = 0;
  for (index_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(t.data()[i])) ++bad;
  }
  EXPECT_GE(bad, 1);
  EXPECT_LE(bad, 5);
}

// ------------------------------------------------- registry bookkeeping

TEST_F(FaultTest, ConfigureArmsMultipleAndJsonReports) {
  REQUIRE_HOOKS_COMPILED_IN();
  EXPECT_EQ(Registry::instance().configure(
                "test.fault.a=once*error;test.fault.b=every(2)*delay(1us)"),
            2);
  EXPECT_TRUE(Registry::any_armed());
  (void)CCOVID_FAILPOINT_FIRED("test.fault.a");
  const std::string js = Registry::instance().json();
  EXPECT_NE(js.find("\"test.fault.a\""), std::string::npos);
  EXPECT_NE(js.find("\"fires\":1"), std::string::npos);
  EXPECT_NE(js.find("\"test.fault.b\""), std::string::npos);

  Registry::instance().reset();
  EXPECT_FALSE(Registry::any_armed());
  EXPECT_EQ(Registry::instance().json(), "{}");
}

TEST_F(FaultTest, HandleReferencesAreStableAcrossRearm) {
  auto& fp1 = Registry::instance().handle("test.fault.site");
  Registry::instance().arm("test.fault.site", "error");
  Registry::instance().reset();
  Registry::instance().arm("test.fault.site", "once");
  auto& fp2 = Registry::instance().handle("test.fault.site");
  EXPECT_EQ(&fp1, &fp2);  // call-site caching stays valid forever
}

// --------------------------------------------------------- compile-out

TEST_F(FaultTest, DisabledTranslationUnitNeverFires) {
  EXPECT_FALSE(ccovid::fault_test::disabled_tu_compiled_in());
#ifndef CCOVID_DISABLE_FAILPOINTS
  EXPECT_TRUE(kCompiledIn);
#endif
  // Arm the exact name the disabled TU's hook uses — it still cannot
  // fire there, because the macro compiled to nothing.
  Registry::instance().arm("test.disabled.site", "error");
  EXPECT_FALSE(ccovid::fault_test::disabled_tu_hook_fires());
  // The same name from THIS TU does fire — when its hooks compiled in.
  if (kCompiledIn) {
    EXPECT_TRUE(CCOVID_FAILPOINT_FIRED("test.disabled.site"));
  }
}

}  // namespace
}  // namespace ccovid::fault
