// Blocked GEMM and the im2col convolution path: correctness against
// naive matrix multiply and the direct convolution kernels, including
// the awkward remainder shapes the register tiling must handle.
#include <gtest/gtest.h>

#include "core/random.h"
#include "ops/gemm.h"

namespace ccovid::ops {
namespace {

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 1.0);
  return t;
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const index_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      c.at(i, j) = static_cast<real_t>(acc);
    }
  }
  return c;
}

struct GemmCase {
  index_t m, k, n;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesNaive) {
  const GemmCase c = GetParam();
  const Tensor a = random_tensor({c.m, c.k}, 1);
  const Tensor b = random_tensor({c.k, c.n}, 2);
  const Tensor fast = matmul(a, b);
  const Tensor ref = naive_matmul(a, b);
  EXPECT_TRUE(allclose(fast, ref, 1e-3f, 1e-3f))
      << "m=" << c.m << " k=" << c.k << " n=" << c.n
      << " diff=" << max_abs_diff(fast, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1},      // degenerate
                      GemmCase{4, 8, 8},      // exactly one micro tile
                      GemmCase{5, 7, 9},      // all-remainder edges
                      GemmCase{16, 16, 16},   // tile-aligned
                      GemmCase{3, 300, 11},   // k crosses kKc
                      GemmCase{70, 20, 260},  // m crosses kMc, n crosses kNc
                      GemmCase{64, 256, 256},  // exact block boundaries
                      GemmCase{65, 257, 257}));  // one past each boundary

TEST(Gemm, IdentityMatrix) {
  const index_t n = 12;
  Tensor eye({n, n});
  for (index_t i = 0; i < n; ++i) eye.at(i, i) = 1.0f;
  const Tensor x = random_tensor({n, n}, 3);
  EXPECT_TRUE(allclose(matmul(eye, x), x, 1e-6f, 1e-6f));
  EXPECT_TRUE(allclose(matmul(x, eye), x, 1e-6f, 1e-6f));
}

TEST(Gemm, ShapeMismatchThrows) {
  const Tensor a = Tensor::zeros({2, 3});
  const Tensor b = Tensor::zeros({4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

// ----------------------------------------------------------- im2col
TEST(Im2col, PatchLayout) {
  // 1x1x3x3 image, k=2, stride 1, no pad -> 4 patches of 4 values.
  const Tensor img = Tensor::from_vector({1, 1, 3, 3},
                                         {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor cols = im2col(img, 2, Conv2dParams{1, 0});
  EXPECT_EQ(cols.shape(), Shape({1, 4, 4}));
  // Row 0 is tap (ky=0,kx=0) over the 2x2 output grid: {1,2,4,5}.
  EXPECT_FLOAT_EQ(cols.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 0, 2), 4.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 0, 3), 5.0f);
  // Row 3 is tap (1,1): {5,6,8,9}.
  EXPECT_FLOAT_EQ(cols.at(0, 3, 0), 5.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 3, 3), 9.0f);
}

TEST(Im2col, PaddingContributesZeros) {
  const Tensor img = Tensor::ones({1, 1, 2, 2});
  const Tensor cols = im2col(img, 3, Conv2dParams{1, 1});
  // Corner output (0,0): only taps over in-bounds pixels are 1.
  double total = 0.0;
  for (index_t r = 0; r < 9; ++r) total += cols.at(0, r, 0);
  EXPECT_DOUBLE_EQ(total, 4.0);  // 2x2 of the 3x3 window in bounds
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)>.
  Rng rng(4);
  const Tensor x = random_tensor({1, 2, 5, 5}, 5);
  const Conv2dParams p{2, 1};
  const Tensor cx = im2col(x, 3, p);
  Tensor y(cx.shape());
  rng.fill_gaussian(y, 0.0, 1.0);
  const Tensor xty = col2im(y, 2, 5, 5, 3, p);
  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < cx.numel(); ++i) {
    lhs += static_cast<double>(cx.data()[i]) * y.data()[i];
  }
  for (index_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * xty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

struct ConvCase {
  index_t n, cin, h, w, cout, k, stride, pad;
};

class GemmConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(GemmConvSweep, MatchesDirectConvolution) {
  const ConvCase c = GetParam();
  const Tensor input = random_tensor({c.n, c.cin, c.h, c.w}, 6);
  const Tensor weight = random_tensor({c.cout, c.cin, c.k, c.k}, 7);
  const Tensor bias = random_tensor({c.cout}, 8);
  const Conv2dParams p{c.stride, c.pad};
  const Tensor direct = conv2d(input, weight, bias, p);
  const Tensor gemm = conv2d_gemm(input, weight, bias, p);
  EXPECT_TRUE(allclose(gemm, direct, 1e-3f, 1e-3f))
      << "diff=" << max_abs_diff(gemm, direct);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmConvSweep,
    ::testing::Values(ConvCase{1, 1, 8, 8, 1, 3, 1, 1},
                      ConvCase{1, 3, 12, 12, 8, 5, 1, 2},  // DDnet 5x5
                      ConvCase{2, 2, 9, 7, 4, 3, 2, 1},
                      ConvCase{1, 4, 16, 16, 16, 1, 1, 0},  // pointwise
                      ConvCase{1, 1, 20, 20, 2, 7, 1, 3})); // stem 7x7

}  // namespace
}  // namespace ccovid::ops
