// Golden-trace harness: FNV-1a digests of per-stage outputs for fixed
// seeds. Every case recomputes its digest at kernel widths 1, 2 and 8
// and requires all three to agree before comparing against the stored
// value: the task engine partitions ranges as a pure function of
// (range, grain), so thread count must never move a bit. A digest
// mismatch means a refactor changed the numerics — intentionally or
// not.
//
// Regenerating after an INTENTIONAL numeric change:
//   ./tests/test_golden --update-golden
// rewrites tests/golden/digests.txt in the source tree (the path is
// baked in at configure time); commit the updated file together with
// the change that moved the numbers.
//
// This binary defines its own main() (gtest_main's archive member is
// not pulled in) to host the --update-golden flag.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "autograd/losses.h"
#include "core/digest.h"
#include "core/precision.h"
#include "core/parallel.h"
#include "core/random.h"
#include "core/tensor.h"
#include "ct/fbp.h"
#include "ct/geometry.h"
#include "ct/siddon.h"
#include "data/phantom.h"
#include "dist/ddp.h"
#include "graph/graph.h"
#include "nn/ddnet.h"
#include "nn/layers.h"
#include "pipeline/framework.h"
#include "trace/trace.h"

namespace ccovid {
namespace {

#ifndef CCOVID_GOLDEN_FILE
#error "CCOVID_GOLDEN_FILE must point at tests/golden/digests.txt"
#endif

bool g_update = false;
std::map<std::string, std::uint64_t> g_computed;

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const std::map<std::string, std::uint64_t>& stored_digests() {
  static const auto* stored = [] {
    auto* m = new std::map<std::string, std::uint64_t>();
    std::ifstream in(CCOVID_GOLDEN_FILE);
    std::string name, hex;
    while (in >> name >> hex) {
      (*m)[name] = std::stoull(hex, nullptr, 16);
    }
    return m;
  }();
  return *stored;
}

void check_golden(const std::string& name, std::uint64_t digest) {
  g_computed[name] = digest;
  if (g_update) {
    SUCCEED() << name << " recomputed: " << hex64(digest);
    return;
  }
  const auto& stored = stored_digests();
  const auto it = stored.find(name);
  ASSERT_NE(it, stored.end())
      << "no golden digest recorded for '" << name
      << "'.\nRun `./tests/test_golden --update-golden` and commit "
      << CCOVID_GOLDEN_FILE;
  EXPECT_EQ(hex64(digest), hex64(it->second))
      << "'" << name << "' output changed bitwise. If the numeric change "
      << "is intentional, regenerate with `./tests/test_golden "
      << "--update-golden` and commit " << CCOVID_GOLDEN_FILE
      << "; otherwise this is a regression.";
}

// Computes `body()`'s digest under graph fusion on AND off, at kernel
// widths 1, 2 and 8 — each combination once with tracing off and once
// fully enabled (level 2, which also records task-engine scheduling
// events) — asserts all twelve agree bitwise, and returns the shared
// value for the golden comparison. Width independence is the engine's
// partition contract; fusion independence is the graph compiler's
// bitwise contract (graph/graph.h: the fused executor replays the
// op-by-op interpreter exactly); trace independence is the tracing
// subsystem's only-reads-clocks contract (spans must never perturb
// numerics).
template <typename Body>
std::uint64_t digest_across_widths(Body&& body) {
  std::uint64_t at1 = 0;
  bool have_reference = false;
  for (const bool fusion : {true, false}) {
    graph::FusionGuard guard(fusion);
    for (const int width : {1, 2, 8}) {
      ParallelPin pin(width);
      for (const int trace_level : {0, 2}) {
        trace::set_level(trace_level);
        const std::uint64_t h = body();
        trace::set_level(0);
        if (!have_reference) {
          at1 = h;
          have_reference = true;
        } else {
          EXPECT_EQ(hex64(h), hex64(at1))
              << "digest moved at fusion " << (fusion ? "on" : "off")
              << ", width " << width << ", trace level " << trace_level
              << ": either the fused graph diverged from the op-by-op "
                 "interpreter, the chunk partition leaked thread count "
                 "into the numerics, or tracing perturbed a kernel";
        }
      }
    }
  }
  trace::clear();  // drop the bulk events before the next case
  return at1;
}

TEST(Golden, DdnetForward) {
  nn::seed_init_rng(3);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  Tensor x({16, 16});
  Rng rng(5);
  rng.fill_uniform(x, 0.0, 1.0);
  const std::uint64_t h =
      digest_across_widths([&] { return fnv1a64(net.enhance(x)); });
  check_golden("ddnet_forward_tiny_s3_in16", h);
}

// Per-precision digests of the SAME tiny DDnet forward on the
// compiled-graph path: the low-precision formats have no fp32 history
// to match, so these digests ARE their numeric contract — across task
// widths, trace levels and (via the CI backend sweep) SIMD backends.
// Unlike fp32, a low-precision result is NOT fusion-invariant (values
// round to the storage format at different step boundaries per mode),
// so fusion is pinned on — the mode the serve path runs — and width /
// trace invariance is asserted on its own.
std::uint64_t lowp_digest_across_widths(core::Precision prec,
                                        const nn::DDnet& net,
                                        const Tensor& x) {
  const core::PrecisionGuard pguard(prec);
  graph::FusionGuard fguard(true);
  std::uint64_t at1 = 0;
  bool have_reference = false;
  for (const int width : {1, 2, 8}) {
    ParallelPin pin(width);
    for (const int trace_level : {0, 2}) {
      trace::set_level(trace_level);
      const std::uint64_t h = fnv1a64(net.enhance(x));
      trace::set_level(0);
      if (!have_reference) {
        at1 = h;
        have_reference = true;
      } else {
        EXPECT_EQ(hex64(h), hex64(at1))
            << core::precision_name(prec) << " digest moved at width "
            << width << ", trace level " << trace_level
            << ": the low-precision executor leaked thread count or "
               "tracing into the numerics";
      }
    }
  }
  trace::clear();
  return at1;
}

TEST(Golden, DdnetForwardLowPrecision) {
  nn::seed_init_rng(3);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  Tensor x({16, 16});
  Rng rng(5);
  rng.fill_uniform(x, 0.0, 1.0);
  for (const core::Precision prec :
       {core::Precision::kF16, core::Precision::kBf16,
        core::Precision::kInt8}) {
    const std::uint64_t h = lowp_digest_across_widths(prec, net, x);
    check_golden(std::string("ddnet_forward_tiny_s3_in16_") +
                     core::precision_name(prec),
                 h);
  }
}

// One seeded DDP training step at world size 2, reduced to a digest of
// the mean loss and BOTH ranks' post-step parameters. The deterministic
// collectives fold contributions in canonical rank order per element
// (dist/collective.h), and the async engine replays the sequential
// accumulation order (autograd/engine.h), so this digest must not move
// across collective algorithms, gradient bucket sizes, overlapped vs
// post-backward reduction, or task-engine widths — the sweep below
// asserts the whole grid lands on ONE golden value.
std::uint64_t ddp_step_digest(dist::Collective coll, std::size_t bucket_bytes,
                              bool overlap, const Tensor& input,
                              const Tensor& target) {
  nn::seed_init_rng(100);
  dist::DdpConfig cfg;
  cfg.world_size = 2;
  cfg.per_worker_batch = 1;
  cfg.collective = coll;
  cfg.bucket_bytes = bucket_bytes;
  cfg.overlap = overlap;
  dist::DdpTrainer trainer(
      [] {
        return std::static_pointer_cast<nn::Module>(
            std::make_shared<nn::DDnet>(nn::DDnetConfig::tiny()));
      },
      cfg);
  auto loss_fn = [&](nn::Module& model, int /*rank*/,
                     const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var pred =
        net.forward(autograd::Var(input.clone()));
    (void)samples;
    return autograd::mse_loss(pred, target);
  };
  Rng rng(102);
  const dist::EpochStats stats = trainer.train_epoch(2, loss_fn, rng);
  std::uint64_t h = fnv1a64(&stats.mean_loss, sizeof(stats.mean_loss));
  for (int r = 0; r < cfg.world_size; ++r) {
    for (const auto& p : trainer.model(r).parameters()) {
      h = fnv1a64(p.value(), h);
    }
  }
  return h;
}

// DDP rank threads resolve their backward width from the process-global
// lane count — ParallelPin is per-thread and never reaches them, so the
// width axis of the DDP sweep must move the global setting.
class GlobalWidth {
 public:
  explicit GlobalWidth(int n) : prev_(num_threads()) { set_num_threads(n); }
  ~GlobalWidth() { set_num_threads(prev_); }

 private:
  int prev_;
};

TEST(Golden, DdpStepGradientSync) {
  Rng rng(103);
  Tensor target({1, 1, 12, 12});
  rng.fill_uniform(target, 0.2, 0.8);
  Tensor input = target.clone();
  for (index_t j = 0; j < input.numel(); ++j) {
    input.data()[j] += static_cast<real_t>(rng.gaussian(0, 0.1));
  }

  const dist::Collective kColls[] = {dist::Collective::kRing,
                                     dist::Collective::kTree,
                                     dist::Collective::kBcastHalving};
  // 1 KiB forces many buckets on the tiny model; 1 MiB and 0 both pack
  // the whole model — the boundary positions must not move a bit.
  const std::size_t kBuckets[] = {1024, std::size_t{1} << 20, 0};

  std::uint64_t ref = 0;
  bool have_reference = false;
  auto note = [&](std::uint64_t h, const char* what) {
    if (!have_reference) {
      ref = h;
      have_reference = true;
    } else {
      EXPECT_EQ(hex64(h), hex64(ref))
          << "DDP step digest moved at " << what
          << ": gradient synchronization leaked the collective choice, "
             "bucket layout, overlap mode or task width into the bits";
    }
  };
  for (const dist::Collective coll : kColls) {
    for (const std::size_t bucket : kBuckets) {
      for (const int width : {1, 2, 8}) {
        GlobalWidth pin(width);
        note(ddp_step_digest(coll, bucket, /*overlap=*/true, input, target),
             "overlapped sweep cell");
      }
    }
    // Sequential mode reduces once after backward; bucket size is inert
    // there, so one cell per collective covers it.
    GlobalWidth pin(2);
    note(ddp_step_digest(coll, std::size_t{1} << 20, /*overlap=*/false,
                         input, target),
         "sequential-reduction cell");
  }
  check_golden("ddp_step_tiny_w2_mse12", ref);
}

TEST(Golden, FbpReconstruction) {
  const ct::FanBeamGeometry g = ct::paper_geometry().scaled(32);
  const index_t n = g.image_px;
  Tensor mu({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) / static_cast<double>(n) - 0.5;
      const double y = (iy + 0.5) / static_cast<double>(n) - 0.5;
      if (x * x + y * y <= 0.09) mu.at(iy, ix) = 0.02f;
    }
  }
  const std::uint64_t h = digest_across_widths([&] {
    const Tensor sino = ct::forward_project(mu, g);
    std::uint64_t d = fnv1a64(sino);
    return fnv1a64(ct::fbp_reconstruct(sino, g), d);
  });
  check_golden("fbp_disc32_sino_and_recon", h);
}

TEST(Golden, FullDiagnose) {
  nn::seed_init_rng(3);
  auto enh = std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  const pipeline::ComputeCovid19Pipeline pipe(enh, seg, cls);

  Rng rng(11);
  const data::PhantomVolume vol = data::make_volume(2, 8, true, rng);
  // Digest the full-workflow AND the enhancement-off probability bits:
  // a drift in any stage moves at least one of them.
  const std::uint64_t h = digest_across_widths([&] {
    std::uint64_t d = kFnv1aOffset;
    for (const bool enhance : {true, false}) {
      const pipeline::Diagnosis dx =
          pipe.diagnose(vol.hu, enhance, 0.5, nullptr);
      d = fnv1a64(&dx.probability, sizeof(dx.probability), d);
      const unsigned char pos = dx.positive ? 1 : 0;
      d = fnv1a64(&pos, 1, d);
    }
    return d;
  });
  check_golden("diagnose_tiny_s3_vol8", h);
}

}  // namespace
}  // namespace ccovid

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") ccovid::g_update = true;
  }
  const int rc = RUN_ALL_TESTS();
  if (ccovid::g_update && rc == 0) {
    std::ofstream out(CCOVID_GOLDEN_FILE, std::ios::trunc);
    for (const auto& [name, digest] : ccovid::g_computed) {
      out << name << " " << ccovid::hex64(digest) << "\n";
    }
    std::printf("rewrote %s with %zu digest(s)\n", CCOVID_GOLDEN_FILE,
                ccovid::g_computed.size());
  }
  return rc;
}
