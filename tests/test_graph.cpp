// Graph IR + fusion suite (`ctest -L fast`): IR construction and shape
// inference, topological-order determinism, the closed-form batch-norm
// fold, buffer-reuse planner invariants, steady-state allocation
// flatness, and the fusion-equivalence battery — fused output must be
// BITWISE equal to the unfused compiled schedule, the op-by-op
// reference interpreter, and the nn::Module eval forward, at every
// compiled SIMD backend and task-engine width. The randomized fuzzer
// at the bottom stresses the fusion pass with DAGs containing
// non-fusible interleavings and multi-consumer nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/alloc_cache.h"
#include "core/digest.h"
#include "core/parallel.h"
#include "core/random.h"
#include "core/simd.h"
#include "graph/graph.h"
#include "nn/ddnet.h"
#include "nn/layers.h"
#include "nn/unet.h"
#include "ops/batchnorm.h"
#include "ops/conv2d.h"
#include "ops/deconv2d.h"

namespace ccovid {
namespace {

using graph::CompileOptions;
using graph::FusionGuard;
using graph::Graph;
using graph::OpKind;
using graph::ValueShape;

Tensor uniform(Rng& rng, Shape shape, real_t lo = -1.0f, real_t hi = 1.0f) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t, lo, hi);
  return t;
}

// ------------------------------------------------- IR construction

TEST(GraphIR, ShapeInference) {
  Rng rng(1);
  Graph g;
  const int in = g.add_input({2, 3, 16, 16});
  const int c = g.add_conv2d(in, uniform(rng, {5, 3, 3, 3}),
                             uniform(rng, {5}), /*pad=*/1);
  EXPECT_EQ(g.node(c).shape, (ValueShape{2, 5, 16, 16}));
  const int p = g.add_max_pool(c, ops::Pool2dParams{3, 2, 1});
  EXPECT_EQ(g.node(p).shape, (ValueShape{2, 5, 8, 8}));
  const int u = g.add_unpool(p, 2);
  EXPECT_EQ(g.node(u).shape, (ValueShape{2, 5, 16, 16}));
  const int d = g.add_deconv2d(u, uniform(rng, {5, 4, 5, 5}), Tensor(),
                               /*pad=*/2);
  EXPECT_EQ(g.node(d).shape, (ValueShape{2, 4, 16, 16}));
  const int cat = g.add_concat({c, d});
  EXPECT_EQ(g.node(cat).shape, (ValueShape{2, 9, 16, 16}));
  EXPECT_EQ(g.output(), cat);
  g.mark_output(d);
  EXPECT_EQ(g.output(), d);
}

TEST(GraphIR, ValidationThrows) {
  Rng rng(2);
  Graph g;
  const int in = g.add_input({1, 3, 8, 8});
  // Channel mismatch.
  EXPECT_THROW(g.add_conv2d(in, uniform(rng, {4, 2, 3, 3}), Tensor(), 1),
               std::invalid_argument);
  // Bad bias length.
  EXPECT_THROW(
      g.add_conv2d(in, uniform(rng, {4, 3, 3, 3}), uniform(rng, {3}), 1),
      std::invalid_argument);
  // Non-square kernel.
  EXPECT_THROW(g.add_conv2d(in, uniform(rng, {4, 3, 3, 5}), Tensor(), 1),
               std::invalid_argument);
  // Out-of-range input id.
  EXPECT_THROW(g.add_relu(42), std::invalid_argument);
  // Batch-norm parameter arity.
  EXPECT_THROW(g.add_batchnorm(in, uniform(rng, {2}), uniform(rng, {3}),
                               uniform(rng, {3}), uniform(rng, {3}), 1e-5f),
               std::invalid_argument);
  // Concat spatial mismatch.
  const int pooled = g.add_max_pool(in, ops::Pool2dParams{2, 2, 0});
  EXPECT_THROW(g.add_concat({in, pooled}), std::invalid_argument);
  // Add shape mismatch.
  EXPECT_THROW(g.add_add(in, pooled), std::invalid_argument);
  // Second input node.
  EXPECT_THROW(g.add_input({1, 1, 4, 4}), std::invalid_argument);
}

TEST(GraphIR, ScheduleIsDeterministicAndTopological) {
  Rng rng(3);
  Graph g;
  const int in = g.add_input({1, 2, 8, 8});
  const int c = g.add_conv2d(in, uniform(rng, {2, 2, 3, 3}), Tensor(), 1);
  // Diamond: two consumers of `c`, rejoined by add.
  const int a = g.add_relu(c);
  const int b = g.add_leaky_relu(c, 0.01f);
  const int sum = g.add_add(a, b);
  g.mark_output(sum);

  const std::vector<int> order = g.schedule();
  ASSERT_EQ(order.size(), size_t(g.num_nodes()));
  // Pure function of the graph: identical on every call.
  EXPECT_EQ(order, g.schedule());
  EXPECT_EQ(order, g.schedule());
  // Topological: every node after all of its inputs.
  std::vector<int> pos(size_t(g.num_nodes()));
  for (int i = 0; i < int(order.size()); ++i) pos[size_t(order[i])] = i;
  for (const graph::Node& n : g.nodes()) {
    for (int src : n.inputs) {
      EXPECT_LT(pos[size_t(src)], pos[size_t(n.id)])
          << graph::op_kind_name(n.kind) << " scheduled before its input";
    }
  }
  // Ids are born topologically sorted and the tie-break is min-id, so
  // the canonical order is exactly 0..N-1.
  for (int i = 0; i < int(order.size()); ++i) EXPECT_EQ(order[size_t(i)], i);
}

// ------------------------------------------------ closed-form fold

TEST(GraphFold, BatchnormFoldMatchesComposedOps) {
  Rng rng(4);
  const Tensor x = uniform(rng, {2, 3, 9, 9});
  const Tensor w = uniform(rng, {5, 3, 3, 3});
  const Tensor b = uniform(rng, {5});
  const Tensor gamma = uniform(rng, {5}, 0.5f, 1.5f);
  const Tensor beta = uniform(rng, {5});
  const Tensor mean = uniform(rng, {5});
  const Tensor var = uniform(rng, {5}, 0.5f, 2.0f);
  const real_t eps = 1e-5f;

  const Tensor composed = ops::batch_norm_infer(
      ops::conv2d(x, w, b, ops::Conv2dParams{1, 1}), gamma, beta, mean, var,
      eps);
  const graph::FoldedConv f =
      graph::fold_batchnorm(w, b, gamma, beta, mean, var, eps);
  const Tensor folded =
      ops::conv2d(x, f.weight, f.bias, ops::Conv2dParams{1, 1});

  ASSERT_EQ(folded.shape(), composed.shape());
  for (index_t i = 0; i < folded.numel(); ++i) {
    EXPECT_NEAR(folded.data()[i], composed.data()[i], 1e-4f) << "at " << i;
  }
}

TEST(GraphFold, BatchnormFoldDeconvLayout) {
  Rng rng(5);
  const Tensor x = uniform(rng, {1, 3, 8, 8});
  const Tensor w = uniform(rng, {3, 4, 5, 5});  // (Cin, Cout, K, K)
  const Tensor gamma = uniform(rng, {4}, 0.5f, 1.5f);
  const Tensor beta = uniform(rng, {4});
  const Tensor mean = uniform(rng, {4});
  const Tensor var = uniform(rng, {4}, 0.5f, 2.0f);

  const Tensor composed = ops::batch_norm_infer(
      ops::deconv2d(x, w, Tensor(), ops::Deconv2dParams{1, 2}), gamma, beta,
      mean, var, 1e-5f);
  const graph::FoldedConv f = graph::fold_batchnorm(
      w, Tensor(), gamma, beta, mean, var, 1e-5f, /*deconv_layout=*/true);
  const Tensor folded =
      ops::deconv2d(x, f.weight, f.bias, ops::Deconv2dParams{1, 2});

  ASSERT_EQ(folded.shape(), composed.shape());
  for (index_t i = 0; i < folded.numel(); ++i) {
    EXPECT_NEAR(folded.data()[i], composed.data()[i], 1e-4f) << "at " << i;
  }
}

// -------------------------------------------------- planner invariants

void expect_no_live_overlap_shares_slab(const graph::CompiledGraph& cg) {
  const auto& plans = cg.plan();
  for (size_t i = 0; i < plans.size(); ++i) {
    for (size_t j = i + 1; j < plans.size(); ++j) {
      const graph::BufferPlan& a = plans[i];
      const graph::BufferPlan& b = plans[j];
      if (a.slab < 0 || b.slab < 0 || a.slab != b.slab) continue;
      const bool disjoint = a.last_use < b.def_step || b.last_use < a.def_step;
      EXPECT_TRUE(disjoint)
          << "values of nodes " << a.node << " [" << a.def_step << ","
          << a.last_use << "] and " << b.node << " [" << b.def_step << ","
          << b.last_use << "] share slab " << a.slab << " while both live";
    }
  }
}

TEST(GraphPlanner, NoTwoLiveValuesShareASlab) {
  nn::seed_init_rng(11);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  const Graph g = net.build_graph(1, 16, 16);

  const graph::CompiledGraph fused = graph::compile(g);
  const graph::CompiledGraph unfused =
      graph::compile(g, CompileOptions{false});
  expect_no_live_overlap_shares_slab(fused);
  expect_no_live_overlap_shares_slab(unfused);

  // Fusion collapsed conv->bn->act chains, so the fused schedule is
  // strictly shorter and the reuse plan never grows.
  EXPECT_GT(fused.stats().fused_away, 0);
  EXPECT_LT(fused.stats().steps, unfused.stats().steps);
  EXPECT_LE(fused.stats().slabs, unfused.stats().slabs);
  EXPECT_GT(fused.stats().slabs, 0);
  // Reuse is real: the slab pool is far smaller than the sum of all
  // intermediate values.
  index_t total_intermediate = 0;
  for (const graph::BufferPlan& p : fused.plan()) {
    if (p.def_step >= 0 && p.slab >= 0) total_intermediate += p.floats;
  }
  EXPECT_LT(fused.stats().slab_floats, total_intermediate);
}

// ------------------------------------------------ fusion equivalence

std::uint64_t run_digest(const graph::CompiledGraph& cg, const Tensor& in) {
  return fnv1a64(cg.run(in));
}

TEST(GraphFusion, DdnetFusedUnfusedReferenceAndModuleAgreeBitwise) {
  nn::seed_init_rng(3);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);

  Rng rng(5);
  Tensor img({16, 16});
  rng.fill_uniform(img, -1.0f, 1.0f);
  const Tensor in = img.clone().reshape({1, 1, 16, 16});

  const Graph g = net.build_graph(1, 16, 16);
  const graph::CompiledGraph fused = graph::compile(g);
  const graph::CompiledGraph unfused =
      graph::compile(g, CompileOptions{false});

  std::uint64_t module_digest;
  {
    FusionGuard off(false);  // force the op-by-op module walk
    module_digest = fnv1a64(net.enhance(img));
  }
  std::uint64_t enhance_fused_digest;
  {
    FusionGuard on(true);  // force the compiled-graph fast path
    enhance_fused_digest = fnv1a64(net.enhance(img));
  }
  const std::uint64_t reference_digest = fnv1a64(graph::run_reference(g, in));

  EXPECT_EQ(run_digest(unfused, in), module_digest);
  EXPECT_EQ(reference_digest, module_digest);
  EXPECT_EQ(run_digest(fused, in), module_digest);
  EXPECT_EQ(enhance_fused_digest, module_digest);
}

TEST(GraphFusion, UnetFusedMatchesModuleBitwise) {
  nn::seed_init_rng(7);
  nn::UNetDenoiser net{nn::UNetConfig{}};
  net.set_training(false);

  Rng rng(9);
  Tensor img({12, 12});
  rng.fill_uniform(img, -1.0f, 1.0f);

  std::uint64_t module_digest, fused_digest;
  {
    FusionGuard off(false);
    module_digest = fnv1a64(net.enhance(img));
  }
  {
    FusionGuard on(true);
    fused_digest = fnv1a64(net.enhance(img));
  }
  EXPECT_EQ(fused_digest, module_digest);
}

TEST(GraphFusion, DdnetDigestStableAcrossBackendsAndWidths) {
  nn::seed_init_rng(3);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);

  Rng rng(5);
  Tensor in({1, 1, 16, 16});
  rng.fill_uniform(in, -1.0f, 1.0f);
  const Graph g = net.build_graph(1, 16, 16);
  const graph::CompiledGraph fused = graph::compile(g);
  const graph::CompiledGraph unfused =
      graph::compile(g, CompileOptions{false});

  const simd::Backend prev = simd::active_backend();
  std::vector<std::uint64_t> digests;
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2}) {
    if (!simd::backend_available(b)) continue;
    simd::set_backend(b);
    for (int width : {1, 2, 8}) {
      ParallelPin pin(width);
      digests.push_back(run_digest(fused, in));
      EXPECT_EQ(digests.back(), run_digest(unfused, in))
          << "fused != unfused at backend " << simd::backend_name(b)
          << " width " << width;
    }
  }
  simd::set_backend(prev);
  ASSERT_FALSE(digests.empty());
  for (std::uint64_t d : digests) EXPECT_EQ(d, digests.front());
}

// -------------------------------------------------- allocation flatness

template <typename Body>
std::uint64_t fresh_allocs_steady_state(int warmup, int iters, Body&& body) {
  for (int i = 0; i < warmup; ++i) body();
  const std::uint64_t before = fresh_system_allocs();
  for (int i = 0; i < iters; ++i) body();
  return fresh_system_allocs() - before;
}

TEST(GraphAlloc, CompiledRunIsAllocationFreeInSteadyState) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  nn::seed_init_rng(13);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  Rng rng(17);
  Tensor in({1, 1, 16, 16});
  rng.fill_uniform(in, -1.0f, 1.0f);
  const graph::CompiledGraph cg = graph::compile(net.build_graph(1, 16, 16));

  ParallelPin pin(1);
  const std::uint64_t fresh =
      fresh_allocs_steady_state(3, 8, [&] { Tensor out = cg.run(in); });
  EXPECT_EQ(fresh, 0u) << "compiled graph allocated from the system heap "
                          "in steady state";
}

TEST(GraphAlloc, BiaslessConvWithFoldedBnHoistsTheBiasConstant) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  // Regression: a bias-less conv followed by batch-norm used to
  // materialize a zero bias tensor per call on the eval path; the
  // compiler hoists it into the step constants instead.
  Rng rng(19);
  Graph g;
  const int in = g.add_input({1, 3, 12, 12});
  const int c = g.add_conv2d(in, uniform(rng, {6, 3, 3, 3}),
                             /*bias=*/Tensor(), 1);
  const int bn = g.add_batchnorm(c, uniform(rng, {6}, 0.5f, 1.5f),
                                 uniform(rng, {6}), uniform(rng, {6}),
                                 uniform(rng, {6}, 0.5f, 2.0f), 1e-5f);
  g.add_relu(bn);

  const graph::CompiledGraph cg = graph::compile(g);
  EXPECT_EQ(cg.stats().fused_away, 2);  // bn and relu both absorbed
  EXPECT_EQ(cg.stats().steps, 1);

  Tensor x({1, 3, 12, 12});
  rng.fill_uniform(x, -1.0f, 1.0f);
  ParallelPin pin(1);
  const std::uint64_t fresh =
      fresh_allocs_steady_state(3, 8, [&] { Tensor out = cg.run(x); });
  EXPECT_EQ(fresh, 0u);
}

// ------------------------------------------------------- fusion flag

TEST(GraphFlag, FusionGuardRestoresPreviousState) {
  const bool initial = graph::fusion_enabled();
  {
    FusionGuard off(false);
    EXPECT_FALSE(graph::fusion_enabled());
    {
      FusionGuard on(true);
      EXPECT_TRUE(graph::fusion_enabled());
    }
    EXPECT_FALSE(graph::fusion_enabled());
  }
  EXPECT_EQ(graph::fusion_enabled(), initial);
}

// ------------------------------------------------------------ fuzzer

/// Random DAG generator. Emits conv/bn/relu/leaky/pool/unpool/concat/
/// add over a pool of live values, deliberately creating multi-consumer
/// nodes (any value may be picked again) and non-fusible interleavings
/// (bn after concat, act without bn, conv feeding two consumers).
struct DagFuzzer {
  Rng rng;
  Graph g;
  struct Val {
    int id;
    ValueShape s;
  };
  std::vector<Val> vals;

  explicit DagFuzzer(std::uint64_t seed) : rng(seed) {}

  Tensor t(Shape shape, real_t lo = -1.0f, real_t hi = 1.0f) {
    Tensor out(std::move(shape));
    rng.fill_uniform(out, lo, hi);
    return out;
  }

  const Val& pick() {
    return vals[size_t(rng.uniform_int(0, int(vals.size()) - 1))];
  }

  void build(int num_ops) {
    const index_t h = 8 + 4 * index_t(rng.uniform_int(0, 2));
    const ValueShape in_shape{1, index_t(rng.uniform_int(1, 4)), h, h};
    vals.push_back({g.add_input(in_shape), in_shape});
    for (int i = 0; i < num_ops; ++i) {
      switch (rng.uniform_int(0, 7)) {
        case 0: {  // conv, often followed by bn(+act) to exercise fusion
          const Val v = pick();
          const index_t k = index_t(1 + 2 * rng.uniform_int(0, 2));
          const index_t cout = index_t(rng.uniform_int(1, 6));
          const bool bias = rng.uniform_int(0, 1) == 1;
          int id = g.add_conv2d(
              v.id, t({cout, v.s.c, k, k}),
              bias ? t({cout}) : Tensor(), k / 2);
          vals.push_back({id, g.node(id).shape});
          maybe_bn_act(cout);
          break;
        }
        case 1: {  // deconv
          const Val v = pick();
          const index_t k = index_t(1 + 2 * rng.uniform_int(0, 2));
          const index_t cout = index_t(rng.uniform_int(1, 6));
          int id = g.add_deconv2d(v.id, t({v.s.c, cout, k, k}),
                                  rng.uniform_int(0, 1) ? t({cout})
                                                        : Tensor(),
                                  k / 2);
          vals.push_back({id, g.node(id).shape});
          maybe_bn_act(cout);
          break;
        }
        case 2: {  // standalone bn (often after concat: non-fusible)
          const Val v = pick();
          int id = g.add_batchnorm(v.id, t({v.s.c}, 0.5f, 1.5f), t({v.s.c}),
                                   t({v.s.c}), t({v.s.c}, 0.5f, 2.0f),
                                   1e-5f);
          vals.push_back({id, g.node(id).shape});
          break;
        }
        case 3: {  // standalone activation (no bn in front)
          const Val v = pick();
          int id = rng.uniform_int(0, 1) == 0
                       ? g.add_relu(v.id)
                       : g.add_leaky_relu(v.id, 0.01f);
          vals.push_back({id, g.node(id).shape});
          break;
        }
        case 4: {  // max pool
          const Val v = pick();
          if (v.s.h < 4 || v.s.w < 4) break;
          int id = g.add_max_pool(v.id, rng.uniform_int(0, 1) == 0
                                            ? ops::Pool2dParams{3, 2, 1}
                                            : ops::Pool2dParams{2, 2, 0});
          vals.push_back({id, g.node(id).shape});
          break;
        }
        case 5: {  // unpool
          const Val v = pick();
          if (v.s.h > 16 || v.s.w > 16) break;
          int id = g.add_unpool(v.id, 2);
          vals.push_back({id, g.node(id).shape});
          break;
        }
        case 6: {  // concat of same-spatial values (multi-consumer)
          const Val a = pick();
          std::vector<int> ins{a.id};
          for (const Val& v : vals) {
            if (int(ins.size()) >= 3) break;
            if (v.s.h == a.s.h && v.s.w == a.s.w && v.id != a.id) {
              ins.push_back(v.id);
            }
          }
          int id = g.add_concat(ins);
          vals.push_back({id, g.node(id).shape});
          break;
        }
        case 7: {  // residual add of same-shape values
          const Val a = pick();
          int other = -1;
          for (const Val& v : vals) {
            if (v.id != a.id && v.s == a.s) {
              other = v.id;
              break;
            }
          }
          if (other < 0) break;
          int id = g.add_add(a.id, other);
          vals.push_back({id, g.node(id).shape});
          break;
        }
      }
    }
    g.mark_output(vals.back().id);
  }

  /// After a conv/deconv, usually append bn and often an activation —
  /// the fusible pattern the pass exists for. Sometimes the conv is
  /// left exposed or gets a second consumer, which must block fusion.
  void maybe_bn_act(index_t c) {
    if (rng.uniform_int(0, 3) == 0) return;  // conv left standalone
    const Val v = vals.back();
    int id = g.add_batchnorm(v.id, t({c}, 0.5f, 1.5f), t({c}), t({c}),
                             t({c}, 0.5f, 2.0f), 1e-5f);
    vals.push_back({id, g.node(id).shape});
    if (rng.uniform_int(0, 2) != 0) {
      const Val b = vals.back();
      id = rng.uniform_int(0, 1) == 0 ? g.add_relu(b.id)
                                      : g.add_leaky_relu(b.id, 0.01f);
      vals.push_back({id, g.node(id).shape});
    }
  }
};

TEST(GraphFuzz, RandomDagsFuseBitwiseEqualAcrossBackendsAndWidths) {
  const simd::Backend prev = simd::active_backend();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    DagFuzzer fz(seed * 7919);
    fz.build(/*num_ops=*/8);

    Rng in_rng(seed);
    const ValueShape is = fz.g.input_shape();
    Tensor in({is.n, is.c, is.h, is.w});
    in_rng.fill_uniform(in, -1.0f, 1.0f);

    const graph::CompiledGraph fused = graph::compile(fz.g);
    const graph::CompiledGraph unfused =
        graph::compile(fz.g, CompileOptions{false});
    expect_no_live_overlap_shares_slab(fused);
    expect_no_live_overlap_shares_slab(unfused);

    const std::uint64_t want = fnv1a64(graph::run_reference(fz.g, in));
    for (simd::Backend b : {simd::Backend::kScalar, simd::Backend::kSse2,
                            simd::Backend::kAvx2}) {
      if (!simd::backend_available(b)) continue;
      simd::set_backend(b);
      for (int width : {1, 2, 8}) {
        ParallelPin pin(width);
        EXPECT_EQ(run_digest(fused, in), want)
            << "seed " << seed << " fused diverged at backend "
            << simd::backend_name(b) << " width " << width;
        EXPECT_EQ(run_digest(unfused, in), want)
            << "seed " << seed << " unfused diverged at backend "
            << simd::backend_name(b) << " width " << width;
      }
    }
    simd::set_backend(prev);
  }
}

}  // namespace
}  // namespace ccovid
