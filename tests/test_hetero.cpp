// Heterogeneous-platform model: the Table 4 device table, roofline
// projection properties, and the qualitative shapes the paper reports
// (platform ranking follows memory bandwidth; the REF refactoring
// dominates the deconvolution ablation; PF/LU are marginal on CPU/GPU).
#include <gtest/gtest.h>

#include "hetero/ddnet_counts.h"
#include "hetero/device_model.h"

namespace ccovid::hetero {
namespace {

TEST(Devices, TableFourRoster) {
  const auto devices = paper_devices();
  ASSERT_EQ(devices.size(), 6u);
  EXPECT_EQ(devices[0].name, "Nvidia V100 GPU");
  EXPECT_EQ(devices[5].name, "Intel Arria 10 GX 1150 FPGA");
  // Bandwidths from Table 4.
  EXPECT_DOUBLE_EQ(device_by_name("Nvidia V100 GPU").bandwidth_GBps, 900);
  EXPECT_DOUBLE_EQ(device_by_name("Nvidia T4 GPU").bandwidth_GBps, 320);
  EXPECT_DOUBLE_EQ(
      device_by_name("Intel Xeon Gold 6128 CPU").bandwidth_GBps, 119);
}

TEST(Devices, UnknownNameThrows) {
  EXPECT_THROW(device_by_name("Cray-1"), std::invalid_argument);
}

TEST(Devices, FpgaFlagsSet) {
  const DeviceSpec fpga = device_by_name("Intel Arria 10 GX 1150 FPGA");
  EXPECT_TRUE(fpga.is_fpga);
  EXPECT_GT(fpga.reconfig_overhead_s, 0.0);
  EXPECT_LT(fpga.bandwidth_GBps, 3.0);  // "< 3" in Table 4
}

OpCounters memory_bound_counters() {
  OpCounters c;
  c.global_loads = 1'000'000'000;
  c.global_stores = 50'000'000;
  c.flops = 100'000'000;  // low arithmetic intensity
  return c;
}

TEST(Projection, MemoryBoundTimeTracksBandwidth) {
  // §5.1.3's observation: for memory-bound kernels the platform ranking
  // follows bandwidth. V100 > P100 > Vega > T4 > CPU in bandwidth =>
  // ascending projected time.
  const auto counters = memory_bound_counters();
  const ops::KernelOptions opt = ops::KernelOptions::all();
  double prev = 0.0;
  for (const char* name :
       {"Nvidia V100 GPU", "Nvidia T4 GPU", "Intel Xeon Gold 6128 CPU",
        "Intel Arria 10 GX 1150 FPGA"}) {
    const double t = project_kernel_seconds(
        device_by_name(name), counters, KernelKind::kConvolution, opt, 1);
    EXPECT_GT(t, prev) << name;
    prev = t;
  }
}

TEST(Projection, ScatterBaselineSlowerThanGather) {
  const auto counters = memory_bound_counters();
  for (const auto& dev : paper_devices()) {
    const double refactored = project_kernel_seconds(
        dev, counters, KernelKind::kDeconvolution,
        ops::KernelOptions::refactored(), 1);
    const double baseline = project_kernel_seconds(
        dev, counters, KernelKind::kDeconvolution,
        ops::KernelOptions::baseline(), 1);
    EXPECT_GT(baseline, refactored) << dev.name;
  }
}

TEST(Projection, PrefetchAndUnrollAreMarginalOnGpu) {
  // Paper Table 7: on GPUs, +PF and +LU change runtimes by at most a few
  // tens of percent while +REF changes them by orders of magnitude.
  const auto counters = memory_bound_counters();
  const DeviceSpec v100 = device_by_name("Nvidia V100 GPU");
  const double ref = project_kernel_seconds(
      v100, counters, KernelKind::kDeconvolution,
      ops::KernelOptions::refactored(), 1);
  const double all = project_kernel_seconds(
      v100, counters, KernelKind::kDeconvolution, ops::KernelOptions::all(),
      1);
  const double baseline = project_kernel_seconds(
      v100, counters, KernelKind::kDeconvolution,
      ops::KernelOptions::baseline(), 1);
  EXPECT_LT(ref / all, 1.5);        // PF+LU: small
  EXPECT_GT(baseline / all, 50.0);  // REF: orders of magnitude
}

TEST(Projection, LaunchOverheadAdds) {
  OpCounters tiny;
  tiny.global_loads = 100;
  tiny.flops = 100;
  const DeviceSpec v100 = device_by_name("Nvidia V100 GPU");
  const double one = project_kernel_seconds(
      v100, tiny, KernelKind::kOther, ops::KernelOptions::all(), 1);
  const double many = project_kernel_seconds(
      v100, tiny, KernelKind::kOther, ops::KernelOptions::all(), 100);
  EXPECT_NEAR(many - one, 99 * v100.launch_overhead_s, 1e-9);
}

TEST(Projection, FpgaReconfigurationIncluded) {
  const auto counts = count_ddnet(nn::DDnetConfig::tiny(), 16, 16);
  const DeviceSpec fpga = device_by_name("Intel Arria 10 GX 1150 FPGA");
  const auto breakdown =
      project_network_seconds(fpga, counts, ops::KernelOptions::all());
  EXPECT_GE(breakdown.other_s, 2.0 * fpga.reconfig_overhead_s);
}

TEST(Projection, BytesPerElementScalesMemoryBoundTime) {
  // The storage-format axis: a memory-bound kernel at 2 bytes/element
  // (fp16/bf16) projects to half the fp32 memory time; 1 byte (int8) a
  // quarter. Compute-bound kernels must not change.
  const auto counters = memory_bound_counters();
  const ops::KernelOptions opt = ops::KernelOptions::all();
  const DeviceSpec t4 = device_by_name("Nvidia T4 GPU");
  const double t4_mem_f32 = project_kernel_seconds(
      t4, counters, KernelKind::kConvolution, opt, 0, 4.0);
  const double t4_mem_f16 = project_kernel_seconds(
      t4, counters, KernelKind::kConvolution, opt, 0, 2.0);
  const double t4_mem_i8 = project_kernel_seconds(
      t4, counters, KernelKind::kConvolution, opt, 0, 1.0);
  EXPECT_DOUBLE_EQ(t4_mem_f16, t4_mem_f32 / 2.0);
  EXPECT_DOUBLE_EQ(t4_mem_i8, t4_mem_f32 / 4.0);

  OpCounters hot;  // high arithmetic intensity: roofline compute side
  hot.global_loads = 1000;
  hot.global_stores = 100;
  hot.flops = 10'000'000'000;
  const double cmp_f32 = project_kernel_seconds(
      t4, hot, KernelKind::kConvolution, opt, 0, 4.0);
  const double cmp_i8 = project_kernel_seconds(
      t4, hot, KernelKind::kConvolution, opt, 0, 1.0);
  EXPECT_DOUBLE_EQ(cmp_f32, cmp_i8);

  // Default argument is the fp32 width.
  EXPECT_DOUBLE_EQ(project_kernel_seconds(t4, counters,
                                          KernelKind::kConvolution, opt, 0),
                   t4_mem_f32);
  EXPECT_THROW(project_kernel_seconds(t4, counters,
                                      KernelKind::kConvolution, opt, 0, 0.0),
               std::invalid_argument);
}

TEST(Projection, NetworkBreakdownHonorsBytesPerElement) {
  const auto counts = count_ddnet(nn::DDnetConfig::tiny(), 32, 32);
  const DeviceSpec v100 = device_by_name("Nvidia V100 GPU");
  const auto f32 =
      project_network_seconds(v100, counts, ops::KernelOptions::all());
  const auto f16 =
      project_network_seconds(v100, counts, ops::KernelOptions::all(), 2.0);
  EXPECT_LE(f16.total(), f32.total());
  EXPECT_GT(f16.total(), 0.0);
}

TEST(Projection, NetworkBreakdownSumsToTotal) {
  const auto counts = count_ddnet(nn::DDnetConfig::tiny(), 32, 32);
  const DeviceSpec cpu = device_by_name("Intel Xeon Gold 6128 CPU");
  const auto b = project_network_seconds(cpu, counts,
                                         ops::KernelOptions::all());
  EXPECT_DOUBLE_EQ(b.total(), b.conv_s + b.deconv_s + b.other_s);
  EXPECT_GT(b.total(), 0.0);
}

TEST(Projection, PaperScaleV100InferenceSubSecond) {
  // With the paper's DDnet at 512x512, the V100 projection should land
  // in the sub-second regime Table 4 reports (0.10 s OpenCL).
  const auto counts = count_ddnet(nn::DDnetConfig::paper(), 512, 512);
  const DeviceSpec v100 = device_by_name("Nvidia V100 GPU");
  const auto b =
      project_network_seconds(v100, counts, ops::KernelOptions::all());
  EXPECT_LT(b.total(), 1.0);
  EXPECT_GT(b.total(), 0.01);
}

TEST(Projection, AblationMonotonicallyImproves) {
  // Baseline >= +REF >= +REF+PF >= +REF+PF+LU on every platform
  // (cumulative optimizations never hurt in the model, matching the
  // monotone rows of Table 7).
  const auto counts = count_ddnet(nn::DDnetConfig::paper(), 64, 64);
  for (const auto& dev : paper_devices()) {
    const double t0 =
        project_network_seconds(dev, counts, ops::KernelOptions::baseline())
            .total();
    const double t1 =
        project_network_seconds(dev, counts,
                                ops::KernelOptions::refactored())
            .total();
    const double t2 = project_network_seconds(
                          dev, counts,
                          ops::KernelOptions::refactored_prefetch())
                          .total();
    const double t3 =
        project_network_seconds(dev, counts, ops::KernelOptions::all())
            .total();
    EXPECT_GE(t0, t1) << dev.name;
    EXPECT_GE(t1, t2) << dev.name;
    EXPECT_GE(t2, t3) << dev.name;
  }
}

}  // namespace
}  // namespace ccovid::hetero
