// Operation-counting kernels (Table 6 substrate): separable fast counts
// must equal brute-force tap enumeration, and the structural relations
// the paper reports (scatter deconvolution moves more global data than
// the refactored gather; conv and deconv flop counts match for matched
// shapes) must hold.
#include <gtest/gtest.h>

#include "hetero/ddnet_counts.h"
#include "ops/instrumented.h"

namespace ccovid::ops {
namespace {

struct CountCase {
  index_t n, cin, h, w, cout, k, stride, pad;
};

class ConvCountSweep : public ::testing::TestWithParam<CountCase> {};

TEST_P(ConvCountSweep, FastEqualsBruteForce) {
  const CountCase c = GetParam();
  const Conv2dParams p{c.stride, c.pad};
  const OpCounters fast =
      count_conv2d(c.n, c.cin, c.h, c.w, c.cout, c.k, p);
  const OpCounters brute =
      count_conv2d_bruteforce(c.n, c.cin, c.h, c.w, c.cout, c.k, p);
  EXPECT_EQ(fast.global_loads, brute.global_loads);
  EXPECT_EQ(fast.global_stores, brute.global_stores);
  EXPECT_EQ(fast.flops, brute.flops);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvCountSweep,
    ::testing::Values(CountCase{1, 1, 8, 8, 1, 3, 1, 1},
                      CountCase{1, 2, 9, 7, 3, 5, 1, 2},
                      CountCase{2, 3, 10, 10, 4, 3, 2, 1},
                      CountCase{1, 1, 6, 6, 1, 5, 3, 2},
                      CountCase{1, 4, 16, 16, 8, 7, 1, 3}));

class DeconvCountSweep : public ::testing::TestWithParam<CountCase> {};

TEST_P(DeconvCountSweep, GatherFastEqualsBruteForce) {
  const CountCase c = GetParam();
  const Deconv2dParams p{c.stride, c.pad};
  const OpCounters fast =
      count_deconv2d_gather(c.n, c.cin, c.h, c.w, c.cout, c.k, p);
  const OpCounters brute = count_deconv2d_gather_bruteforce(
      c.n, c.cin, c.h, c.w, c.cout, c.k, p);
  EXPECT_EQ(fast.global_loads, brute.global_loads);
  EXPECT_EQ(fast.global_stores, brute.global_stores);
  EXPECT_EQ(fast.flops, brute.flops);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeconvCountSweep,
    ::testing::Values(CountCase{1, 1, 8, 8, 1, 3, 1, 1},
                      CountCase{1, 2, 6, 6, 3, 5, 1, 2},
                      CountCase{1, 2, 5, 5, 2, 4, 2, 1},
                      CountCase{1, 1, 4, 4, 1, 3, 3, 0}));

TEST(Counts, InteriorConvFormula) {
  // Stride-1 "same" 5x5 over a large image: interior taps dominate, so
  // flops ~= 2 * N * Cout * Cin * H * W * 25.
  const OpCounters c =
      count_conv2d(1, 16, 128, 128, 16, 5, Conv2dParams::same(5));
  const double expect = 2.0 * 16 * 16 * 128 * 128 * 25;
  EXPECT_NEAR(static_cast<double>(c.flops) / expect, 1.0, 0.05);
}

TEST(Counts, ScatterMovesMoreDataThanGather) {
  // The core claim behind the REF optimization (§4.2.1): the partial-sum
  // formulation re-reads and re-writes the output per tap.
  const Deconv2dParams p = Deconv2dParams::same(5);
  const OpCounters scatter =
      count_deconv2d_scatter(1, 16, 64, 64, 16, 5, p);
  const OpCounters gather = count_deconv2d_gather(1, 16, 64, 64, 16, 5, p);
  EXPECT_GT(scatter.global_stores, 5 * gather.global_stores);
  EXPECT_GT(scatter.global_loads, gather.global_loads);
  // Same math either way.
  EXPECT_EQ(scatter.flops, gather.flops);
}

TEST(Counts, MatchedConvAndDeconvFlopsAgree) {
  // A stride-1 "same" deconvolution does the same multiply-adds as the
  // matched convolution (the paper compares the two kernel classes).
  const OpCounters conv =
      count_conv2d(1, 16, 32, 32, 16, 5, Conv2dParams::same(5));
  const OpCounters deconv =
      count_deconv2d_gather(1, 16, 32, 32, 16, 5, Deconv2dParams::same(5));
  EXPECT_EQ(conv.flops, deconv.flops);
}

TEST(Counts, MaxPoolHasZeroFlops) {
  const OpCounters c = count_max_pool2d(1, 16, 64, 64, {3, 2, 1});
  EXPECT_EQ(c.flops, 0u);  // Table 6 convention
  EXPECT_GT(c.global_loads, 0u);
}

TEST(Counts, UnpoolPerElementCosts) {
  const OpCounters c = count_unpool2d(1, 1, 4, 4, 2);
  EXPECT_EQ(c.global_stores, 64u);
  EXPECT_EQ(c.global_loads, 256u);
  EXPECT_EQ(c.flops, 448u);
}

TEST(Counts, LeakyReluLinearInElements) {
  const OpCounters c = count_leaky_relu(1000);
  EXPECT_EQ(c.global_loads, 1000u);
  EXPECT_EQ(c.global_stores, 1000u);
  EXPECT_EQ(c.flops, 1000u);
}

// --------------------------------------------------------- whole-DDnet
TEST(DDnetCounts, LaunchCountsMatchArchitecture) {
  nn::DDnetConfig cfg = nn::DDnetConfig::paper();
  const auto counts = hetero::count_ddnet(cfg, 64, 64);
  // Convolutions: stem + levels * (dense_layers * 2 + transition) = 37
  // with the paper configuration — the §2.2 "37 convolution layers".
  EXPECT_EQ(counts.conv_launches,
            1 + cfg.levels * (cfg.dense_layers * 2 + 1));
  EXPECT_EQ(counts.conv_launches, 37);
  // Deconvolutions: 2 per decoder level = 8 (§2.2 "eight deconvolution
  // layers").
  EXPECT_EQ(counts.deconv_launches, 2 * cfg.levels);
  EXPECT_EQ(counts.deconv_launches, 8);
}

TEST(DDnetCounts, ConvAndDeconvFlopsSameOrder) {
  // §5.1.3 reports convolution at ~1.87x the deconvolution flops (37 vs
  // 8 layers). Our reading of Table 2 puts the two kernel classes at
  // comparable budgets (decoder deconvs run at full resolution on
  // concatenated trunks); assert the same-order relationship that the
  // cross-platform analysis relies on.
  const auto counts =
      hetero::count_ddnet(nn::DDnetConfig::paper(), 128, 128);
  const double ratio = static_cast<double>(counts.conv.flops) /
                       static_cast<double>(counts.deconv_gather.flops);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 3.0);
}

TEST(DDnetCounts, CountsScaleWithResolution) {
  const auto small = hetero::count_ddnet(nn::DDnetConfig::paper(), 32, 32);
  const auto large = hetero::count_ddnet(nn::DDnetConfig::paper(), 64, 64);
  // 4x the pixels -> ~4x the work.
  const double r = static_cast<double>(large.conv.flops) /
                   static_cast<double>(small.conv.flops);
  EXPECT_NEAR(r, 4.0, 0.5);
}

}  // namespace
}  // namespace ccovid::ops
