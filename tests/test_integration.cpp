// End-to-end integration: the Fig. 4 workflow at miniature scale —
// synthesize phantoms, run the low-dose physics chain, train all three
// AI stages, and push volumes through the full ComputeCOVID19+ pipeline
// with and without Enhancement AI.
#include <gtest/gtest.h>

#include "ct/hu.h"
#include "dist/ddp.h"
#include "metrics/classification.h"
#include "nn/layers.h"
#include "pipeline/framework.h"

namespace ccovid {
namespace {

using pipeline::ClassificationAI;
using pipeline::ComputeCovid19Pipeline;
using pipeline::EnhancementAI;
using pipeline::SegmentationAI;

TEST(Integration, FullWorkflowEndToEnd) {
  nn::seed_init_rng(1);
  Rng rng(2);

  // --- data preparation (§2.1) ---
  data::ClassificationDatasetConfig dcfg;
  dcfg.depth = 4;
  dcfg.image_px = 16;
  dcfg.num_train = 10;
  dcfg.num_test = 8;
  dcfg.positive_fraction = 0.5;
  const data::ClassificationDataset cds =
      data::make_classification_dataset(dcfg, rng);

  // --- enhancement (trained on low-dose pairs) ---
  data::EnhancementDatasetConfig ecfg;
  ecfg.image_px = 16;
  ecfg.num_train = 4;
  ecfg.num_val = 1;
  ecfg.num_test = 1;
  ecfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset eds =
      data::make_enhancement_dataset(ecfg, rng);

  auto enh = std::make_shared<EnhancementAI>(nn::DDnetConfig::tiny());
  pipeline::EnhancementTrainConfig etc;
  etc.epochs = 3;
  etc.lr = 2e-3;
  etc.msssim_scales = 1;
  const auto elogs = enh->train(eds, etc, rng);
  EXPECT_EQ(elogs.size(), 3u);

  // --- segmentation ---
  auto seg = std::make_shared<SegmentationAI>();
  pipeline::SegmentationTrainConfig scfg;
  scfg.epochs = 4;
  scfg.lr = 5e-3;
  seg->train(cds.train, scfg, rng);

  // --- classification (on masked volumes, §3.2) ---
  std::vector<Tensor> train_vols;
  std::vector<int> train_labels;
  for (const auto& s : cds.train) {
    const Tensor norm = ct::normalize_hu(s.hu);
    // Ground-truth masking during training (most controlled setting).
    train_vols.push_back(norm.mul(s.lung_mask));
    train_labels.push_back(s.label);
  }
  auto cls = std::make_shared<ClassificationAI>();
  pipeline::ClassificationTrainConfig ccfg;
  ccfg.epochs = 4;
  ccfg.lr = 2e-3;
  ccfg.augment = false;
  cls->train(train_vols, train_labels, ccfg, rng);

  // --- full pipeline on the held-out volumes ---
  ComputeCovid19Pipeline pipe(enh, seg, cls);
  std::vector<Tensor> test_vols;
  std::vector<int> test_labels;
  for (const auto& s : cds.test) {
    test_vols.push_back(s.hu);
    test_labels.push_back(s.label);
  }
  const auto scores_orig = pipe.score_volumes(test_vols, false);
  const auto scores_enh = pipe.score_volumes(test_vols, true);
  ASSERT_EQ(scores_orig.size(), test_vols.size());
  ASSERT_EQ(scores_enh.size(), test_vols.size());
  for (std::size_t i = 0; i < scores_orig.size(); ++i) {
    EXPECT_GE(scores_orig[i], 0.0);
    EXPECT_LE(scores_orig[i], 1.0);
    EXPECT_GE(scores_enh[i], 0.0);
    EXPECT_LE(scores_enh[i], 1.0);
  }
  // The metrics machinery digests the scores (Fig. 13 apparatus).
  const double auc_orig = metrics::auc(scores_orig, test_labels);
  EXPECT_GE(auc_orig, 0.0);
  EXPECT_LE(auc_orig, 1.0);
  const double t = metrics::youden_optimal_threshold(scores_orig, test_labels);
  const auto cm = metrics::confusion_at_threshold(scores_orig, test_labels, t);
  EXPECT_EQ(cm.total(), static_cast<index_t>(test_labels.size()));
}

TEST(Integration, DistributedEnhancementTrainingConverges) {
  // The Table 3 machinery end to end at miniature scale: 2-node DDP
  // over real low-dose pairs.
  nn::seed_init_rng(3);
  Rng rng(4);
  data::EnhancementDatasetConfig ecfg;
  ecfg.image_px = 16;
  ecfg.num_train = 4;
  ecfg.num_val = 0;
  ecfg.num_test = 0;
  ecfg.lowdose.photons_per_ray = 5e4;
  const data::EnhancementDataset ds =
      data::make_enhancement_dataset(ecfg, rng);

  dist::DdpConfig cfg;
  cfg.world_size = 2;
  cfg.per_worker_batch = 1;
  cfg.lr = 2e-3;
  dist::DdpTrainer trainer(
      [] { return std::make_shared<nn::DDnet>(nn::DDnetConfig::tiny()); },
      cfg);

  auto loss_fn = [&ds](nn::Module& model, int /*rank*/,
                       const std::vector<index_t>& samples) {
    auto& net = dynamic_cast<nn::DDnet&>(model);
    autograd::Var total;
    for (index_t s : samples) {
      const auto& pair = ds.train[s];
      autograd::Var x(pair.low.clone().reshape(
          {1, 1, pair.low.dim(0), pair.low.dim(1)}));
      autograd::Var pred = net.forward(x);
      autograd::Var loss = autograd::enhancement_loss(
          pred,
          pair.full.clone().reshape({1, 1, pair.full.dim(0),
                                     pair.full.dim(1)}),
          0.1f, 11, 1);
      total = total.defined() ? autograd::add(total, loss) : loss;
    }
    return autograd::mul_scalar(total,
                                1.0f / static_cast<real_t>(samples.size()));
  };

  const auto first = trainer.train_epoch(4, loss_fn, rng);
  dist::EpochStats last{};
  for (int e = 0; e < 3; ++e) {
    last = trainer.train_epoch(4, loss_fn, rng);
    trainer.decay_lr();
  }
  EXPECT_LT(last.mean_loss, first.mean_loss);
  EXPECT_GT(last.modeled_seconds, 0.0);
}

TEST(Integration, ModelCheckpointRoundTripThroughPipeline) {
  nn::seed_init_rng(5);
  Rng rng(6);
  const std::string path = "/tmp/ccovid_integration_ddnet.tnsr";
  auto enh = std::make_shared<EnhancementAI>(nn::DDnetConfig::tiny());
  enh->network().set_training(false);
  Tensor slice({16, 16});
  rng.fill_uniform(slice, 0.0, 1.0);
  const Tensor before = enh->enhance(slice);
  enh->network().save(path);

  nn::seed_init_rng(777);  // different init
  auto enh2 = std::make_shared<EnhancementAI>(nn::DDnetConfig::tiny());
  enh2->network().load(path);
  enh2->network().set_training(false);
  const Tensor after = enh2->enhance(slice);
  EXPECT_TRUE(allclose(before, after, 1e-5f, 1e-5f));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccovid
