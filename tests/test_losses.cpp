// Loss functions: the composite Eq.-1 enhancement loss (MSE +
// 0.1*(1 - MS-SSIM)) with its exact autograd gradient, and the Eq.-2
// binary cross-entropy.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/losses.h"
#include "autograd/optim.h"
#include "core/random.h"
#include "metrics/image_quality.h"

namespace ccovid::autograd {
namespace {

Tensor random_image_batch(index_t h, index_t w, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({1, 1, h, w});
  rng.fill_uniform(t, 0.2, 0.8);
  return t;
}

TEST(MseLoss, ZeroForEqualInputs) {
  const Tensor t = random_image_batch(8, 8, 1);
  Var pred(t.clone(), true);
  Var loss = mse_loss(pred, t);
  EXPECT_NEAR(loss.value().at(0), 0.0, 1e-7);
}

TEST(MseLoss, MatchesMetricValue) {
  const Tensor a = random_image_batch(8, 8, 2);
  const Tensor b = random_image_batch(8, 8, 3);
  Var pred(a.clone());
  const double loss_v = mse_loss(pred, b).value().at(0);
  // metrics::mse works on 2-D images; reshape.
  const double metric_v = metrics::mse(a.clone().reshape({8, 8}),
                                       b.clone().reshape({8, 8}));
  EXPECT_NEAR(loss_v, metric_v, 1e-6);
}

TEST(MseLoss, GradientIsTwoDeltaOverN) {
  Tensor target = Tensor::zeros({1, 1, 2, 2});
  Tensor pred_val = Tensor::full({1, 1, 2, 2}, 0.5f);
  Var pred(pred_val, true);
  Var loss = mse_loss(pred, target);
  loss.backward();
  // d/dp mean((p - t)^2) = 2(p - t)/N = 2*0.5/4.
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(pred.grad().data()[i], 0.25f, 1e-6);
  }
}

TEST(MsSsimVar, OneForIdenticalImages) {
  const Tensor t = random_image_batch(32, 32, 4);
  Var pred(t.clone(), true);
  Var ms = ms_ssim(pred, t);
  EXPECT_NEAR(ms.value().at(0), 1.0, 1e-4);
}

TEST(MsSsimVar, MatchesMetricImplementation) {
  const Tensor a = random_image_batch(48, 48, 5);
  Tensor b = a.clone();
  Rng rng(6);
  for (index_t i = 0; i < b.numel(); ++i) {
    b.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.05));
  }
  Var pred(a.clone());
  const double var_v = ms_ssim(pred, b).value().at(0);
  const double metric_v = metrics::ms_ssim(a.clone().reshape({48, 48}),
                                           b.clone().reshape({48, 48}));
  EXPECT_NEAR(var_v, metric_v, 5e-3);
}

TEST(MsSsimVar, GradientMatchesNumerical) {
  // Small image (single scale) keeps the finite-difference loop cheap.
  Tensor target = random_image_batch(12, 12, 7);
  Tensor pred_val = target.clone();
  Rng rng(8);
  for (index_t i = 0; i < pred_val.numel(); ++i) {
    pred_val.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.05));
  }
  auto f = [&]() {
    Var p(pred_val);
    return static_cast<double>(ms_ssim(p, target, 11, 1.5, 1.0, 1)
                                   .value()
                                   .at(0));
  };
  const Tensor num = numerical_gradient(f, pred_val, 1e-3);
  Var p(pred_val, true);
  Var ms = ms_ssim(p, target, 11, 1.5, 1.0, 1);
  ms.backward();
  EXPECT_LT(gradient_error(p.grad(), num), 5e-2);
}

TEST(EnhancementLoss, ZeroAtPerfectReconstruction) {
  const Tensor t = random_image_batch(32, 32, 9);
  Var pred(t.clone(), true);
  Var loss = enhancement_loss(pred, t);
  EXPECT_NEAR(loss.value().at(0), 0.0, 1e-4);
}

TEST(EnhancementLoss, CombinesTermsWithPaperWeight) {
  const Tensor target = random_image_batch(32, 32, 10);
  Tensor noisy = target.clone();
  Rng rng(11);
  for (index_t i = 0; i < noisy.numel(); ++i) {
    noisy.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.1));
  }
  Var pred(noisy);
  const double total = enhancement_loss(pred, target).value().at(0);
  Var pred2(noisy);
  const double mse_v = mse_loss(pred2, target).value().at(0);
  Var pred3(noisy);
  const double ms_v = ms_ssim(pred3, target).value().at(0);
  EXPECT_NEAR(total, mse_v + 0.1 * (1.0 - ms_v), 1e-5);  // Eq. (1)
}

TEST(EnhancementLoss, GradientDescentImprovesImage) {
  // Directly optimizing the pixels of a noisy image under the composite
  // loss must increase MS-SSIM against the target.
  const Tensor target = random_image_batch(16, 16, 12);
  Tensor noisy = target.clone();
  Rng rng(13);
  for (index_t i = 0; i < noisy.numel(); ++i) {
    noisy.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.2));
  }
  Var img(noisy.clone(), true);
  Adam opt({img}, 0.02);
  const double before = enhancement_loss(Var(img.value().clone()), target, 0.1f, 11, 1)
                            .value()
                            .at(0);
  for (int i = 0; i < 50; ++i) {
    Var loss = enhancement_loss(img, target, 0.1f, 11, 1);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  const double after = enhancement_loss(Var(img.value().clone()), target, 0.1f, 11, 1)
                           .value()
                           .at(0);
  EXPECT_LT(after, before * 0.2);
}

// --------------------------------------------------------------- BCE
TEST(BceLoss, KnownValues) {
  // logits 0 -> p = 0.5 -> loss = ln 2 regardless of the label.
  Tensor logits_val = Tensor::zeros({2, 1});
  Tensor targets = Tensor::from_vector({2, 1}, {1.0f, 0.0f});
  Var logits(logits_val);
  EXPECT_NEAR(bce_with_logits_loss(logits, targets).value().at(0),
              std::log(2.0), 1e-6);
}

TEST(BceLoss, ConfidentCorrectIsSmall) {
  Tensor logits_val = Tensor::from_vector({2, 1}, {10.0f, -10.0f});
  Tensor targets = Tensor::from_vector({2, 1}, {1.0f, 0.0f});
  Var logits(logits_val);
  EXPECT_LT(bce_with_logits_loss(logits, targets).value().at(0), 1e-3);
}

TEST(BceLoss, ConfidentWrongIsLarge) {
  Tensor logits_val = Tensor::from_vector({1, 1}, {-10.0f});
  Tensor targets = Tensor::from_vector({1, 1}, {1.0f});
  Var logits(logits_val);
  EXPECT_GT(bce_with_logits_loss(logits, targets).value().at(0), 9.0);
}

TEST(BceLoss, StableAtExtremeLogits) {
  Tensor logits_val = Tensor::from_vector({2, 1}, {500.0f, -500.0f});
  Tensor targets = Tensor::from_vector({2, 1}, {0.0f, 1.0f});
  Var logits(logits_val);
  const double v = bce_with_logits_loss(logits, targets).value().at(0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 500.0, 1.0);
}

TEST(BceLoss, GradientMatchesNumerical) {
  Tensor logits_val = Tensor::from_vector({3, 1}, {0.5f, -1.0f, 2.0f});
  Tensor targets = Tensor::from_vector({3, 1}, {1.0f, 0.0f, 1.0f});
  auto f = [&]() {
    Var l(logits_val);
    return static_cast<double>(
        bce_with_logits_loss(l, targets).value().at(0));
  };
  const Tensor num = numerical_gradient(f, logits_val, 1e-4);
  Var logits(logits_val, true);
  Var loss = bce_with_logits_loss(logits, targets);
  loss.backward();
  EXPECT_LT(gradient_error(logits.grad(), num), 1e-2);
}

TEST(BceLoss, GradientIsSigmoidMinusTarget) {
  Tensor logits_val = Tensor::from_vector({1, 1}, {0.0f});
  Tensor targets = Tensor::from_vector({1, 1}, {1.0f});
  Var logits(logits_val, true);
  bce_with_logits_loss(logits, targets).backward();
  EXPECT_NEAR(logits.grad().at(0, 0), 0.5 - 1.0, 1e-6);
}

}  // namespace
}  // namespace ccovid::autograd
