// Low-precision storage suite (`ctest -L fast`): the fp16/bf16/int8
// inference formats of DESIGN.md §13.
//
// What is under test, layer by layer:
//   1. core/half.h scalar conversions — exhaustive over all 65536 half
//      patterns plus the awkward fp32->fp16 corners (RNE overflow
//      boundary, subnormal production, tie-to-zero underflow, NaN
//      quietening, signed zero).
//   2. The KernelTable cvt_* array kernels — every compiled backend
//      must reproduce the scalar functions bit for bit (the avx2
//      backend uses F16C hardware; half.h is written to match it).
//   3. The convert-on-load conv row kernels (f16/bf16), their
//      widen-once _fma equivalents, the octet (row8) regrouping, and
//      the int8 vpmaddwd kernels — seeded fuzz across shapes that
//      exercise every vector-width tail, all backends vs scalar,
//      compared bitwise.
//   4. The GEMM entry points: sgemm_half == sgemm on pre-widened
//      operands (bitwise), qgemm_i8 == the exact int32 reference.
//   5. graph::calibrate determinism across task-engine widths 1/2/8 —
//      the int8 scales must be a pure function of (graph, batch).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/half.h"
#include "core/parallel.h"
#include "core/precision.h"
#include "core/random.h"
#include "core/simd.h"
#include "graph/graph.h"
#include "nn/ddnet.h"
#include "nn/layers.h"
#include "ops/gemm.h"

using namespace ccovid;

namespace {

std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> out;
  for (const simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2,
        simd::Backend::kAvx2}) {
    if (simd::backend_available(b)) out.push_back(b);
  }
  return out;
}

bool is_nan_f16(std::uint16_t h) {
  return (h & 0x7C00u) == 0x7C00u && (h & 0x3FFu) != 0u;
}
bool is_nan_bf16(std::uint16_t h) {
  return (h & 0x7F80u) == 0x7F80u && (h & 0x7Fu) != 0u;
}

std::uint32_t bits_of(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
float f32_of(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

// ------------------------------------------------------------------
// 1. Scalar conversion contract (core/half.h).

// Every half value widens exactly and narrows back to its own bits —
// widening is injective and narrowing is its left inverse — except
// NaNs, which must stay NaN (the payload is quietened/truncated the
// way VCVTPH2PS/VCVTPS2PH do, so sNaN patterns don't round-trip).
TEST(HalfScalar, ExhaustiveF16RoundTrip) {
  for (std::uint32_t u = 0; u < 0x10000u; ++u) {
    const std::uint16_t h = static_cast<std::uint16_t>(u);
    const float f = f16_bits_to_f32(h);
    if (is_nan_f16(h)) {
      EXPECT_TRUE(std::isnan(f)) << "half NaN 0x" << std::hex << u;
      EXPECT_TRUE(is_nan_f16(f32_to_f16_bits(f)));
      continue;
    }
    // Independent value check against ldexp arithmetic: every non-NaN
    // half is sign * mant * 2^(e-25) with integer mant.
    const std::uint32_t e = (u >> 10) & 0x1Fu;
    const std::uint32_t m = u & 0x3FFu;
    if (e == 0x1Fu) {
      EXPECT_TRUE(std::isinf(f));
    } else {
      const double mant = (e == 0) ? m : (m + 1024.0);
      const int exp2 = (e == 0 ? 1 : int(e)) - 25;
      const double want = ((u & 0x8000u) ? -1.0 : 1.0) *
                          std::ldexp(mant, exp2);
      EXPECT_EQ(double(f), want) << "half 0x" << std::hex << u;
      if (m == 0 && e == 0) {
        // signed zero survives widening
        EXPECT_EQ(bits_of(f), (u & 0x8000u) ? 0x80000000u : 0u);
      }
    }
    EXPECT_EQ(f32_to_f16_bits(f), h)
        << "round-trip moved half bits 0x" << std::hex << u;
  }
}

TEST(HalfScalar, F16NarrowingCorners) {
  // Max finite half and the RNE overflow boundary: 65504 is the top
  // normal; 65520 ties between 65504 and 2^16 and must round to even
  // (infinity); anything in (65504, 65520) rounds back down.
  EXPECT_EQ(f32_to_f16_bits(65504.0f), 0x7BFFu);
  EXPECT_EQ(f32_to_f16_bits(65519.0f), 0x7BFFu);
  EXPECT_EQ(f32_to_f16_bits(65520.0f), 0x7C00u);
  EXPECT_EQ(f32_to_f16_bits(1e9f), 0x7C00u);
  EXPECT_EQ(f32_to_f16_bits(-std::numeric_limits<float>::infinity()),
            0xFC00u);
  // Underflow: 2^-25 ties between 0 and the smallest subnormal and
  // goes to even (zero); the next representable fp32 above it rounds
  // up to the smallest subnormal; 2^-24 is exactly that subnormal.
  EXPECT_EQ(f32_to_f16_bits(0x1p-25f), 0x0000u);
  EXPECT_EQ(f32_to_f16_bits(std::nextafterf(0x1p-25f, 1.0f)), 0x0001u);
  EXPECT_EQ(f32_to_f16_bits(0x1p-24f), 0x0001u);
  EXPECT_EQ(f32_to_f16_bits(-0x1p-24f), 0x8001u);
  // fp32 subnormals are far below half range: signed zero out.
  EXPECT_EQ(f32_to_f16_bits(f32_of(0x00000001u)), 0x0000u);
  EXPECT_EQ(f32_to_f16_bits(f32_of(0x80000001u)), 0x8000u);
  EXPECT_EQ(f32_to_f16_bits(-0.0f), 0x8000u);
  EXPECT_EQ(f32_to_f16_bits(0.0f), 0x0000u);
  // Mid-range RNE: 1 + 2^-11 ties between 0x3C00 and 0x3C01 and goes
  // to the even mantissa (1.0); 1 + 3*2^-11 ties between 0x3C01 and
  // 0x3C02 and goes up to even; just above a tie always rounds away.
  EXPECT_EQ(f32_to_f16_bits(1.0f + 0x1p-11f), 0x3C00u);
  EXPECT_EQ(f32_to_f16_bits(1.0f + 3 * 0x1p-11f), 0x3C02u);
  EXPECT_EQ(f32_to_f16_bits(1.0f + 0x1p-11f + 0x1p-20f), 0x3C01u);
  // sNaN in, quiet NaN out, sign kept.
  const float snan = f32_of(0x7F800001u | 0x00002000u);
  EXPECT_EQ(f32_to_f16_bits(snan) & 0xFE00u, 0x7E00u);
}

// The FTZ store variant (what the executor actually writes): any
// subnormal RESULT flushes to signed zero; normals, zeros, infinities
// and NaNs pass through untouched.
TEST(HalfScalar, FtzStoreFlushesSubnormalResults) {
  for (std::uint32_t u = 0; u < 0x10000u; ++u) {
    const std::uint16_t h = static_cast<std::uint16_t>(u);
    const float f = f16_bits_to_f32(h);
    if (is_nan_f16(h)) continue;
    const std::uint16_t ftz = f32_to_f16_bits_ftz(f);
    if ((h & 0x7C00u) == 0u && (h & 0x3FFu) != 0u) {
      EXPECT_EQ(ftz, h & 0x8000u) << "subnormal 0x" << std::hex << u;
    } else {
      EXPECT_EQ(ftz, h) << "non-subnormal 0x" << std::hex << u;
    }
  }
}

TEST(HalfScalar, ExhaustiveBf16RoundTrip) {
  for (std::uint32_t u = 0; u < 0x10000u; ++u) {
    const std::uint16_t h = static_cast<std::uint16_t>(u);
    const float f = bf16_bits_to_f32(h);
    // Widening is exact truncated-fp32 reinterpretation.
    EXPECT_EQ(bits_of(f), u << 16);
    if (is_nan_bf16(h)) {
      EXPECT_TRUE(std::isnan(f));
      EXPECT_TRUE(is_nan_bf16(f32_to_bf16_bits(f)));
      continue;
    }
    EXPECT_EQ(f32_to_bf16_bits(f), h)
        << "bf16 round-trip moved bits 0x" << std::hex << u;
  }
  // RNE on the dropped 16 bits: exactly-half ties go to even.
  EXPECT_EQ(f32_to_bf16_bits(f32_of(0x3F808000u)), 0x3F80u);  // tie, even
  EXPECT_EQ(f32_to_bf16_bits(f32_of(0x3F818000u)), 0x3F82u);  // tie, odd
  EXPECT_EQ(f32_to_bf16_bits(f32_of(0x3F808001u)), 0x3F81u);  // above tie
  // Overflow to infinity only past the boundary; NaN never collapses.
  EXPECT_EQ(f32_to_bf16_bits(f32_of(0x7F7F8000u)), 0x7F80u);  // -> inf
  EXPECT_TRUE(is_nan_bf16(f32_to_bf16_bits(f32_of(0x7F800001u))));
}

// ------------------------------------------------------------------
// 2. Array conversion kernels: every backend == scalar, bitwise.

TEST(LowpCvtKernels, AllBackendsMatchScalarBitwise) {
  const simd::KernelTable* ref = simd::table_for(simd::Backend::kScalar);
  ASSERT_NE(ref, nullptr);

  // Every half pattern at once (also exercises ragged tails: 65536 is
  // not a multiple of any vector width after the +3 offset below).
  std::vector<std::uint16_t> hsrc(65536 + 3);
  for (std::size_t i = 0; i < hsrc.size(); ++i) {
    hsrc[i] = static_cast<std::uint16_t>(i & 0xFFFFu);
  }
  // Fuzzed f32 inputs: random bit patterns hit NaNs/infs/subnormals
  // with decent probability; splice in the corners explicitly.
  std::vector<float> fsrc(65536 + 5);
  Rng rng(77);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (auto& f : fsrc) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    f = f32_of(static_cast<std::uint32_t>(state >> 32));
  }
  const float corners[] = {0.0f,     -0.0f,    65504.0f, 65520.0f,
                           0x1p-25f, 0x1p-24f, 1e38f,    f32_of(0x7F800001u)};
  std::memcpy(fsrc.data(), corners, sizeof(corners));

  const index_t hn = static_cast<index_t>(hsrc.size());
  const index_t fn = static_cast<index_t>(fsrc.size());
  std::vector<float> wide_ref(hn), wide_got(hn);
  std::vector<std::uint16_t> narrow_ref(fn), narrow_got(fn);

  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    ASSERT_NE(kt, nullptr);
    SCOPED_TRACE(simd::backend_name(be));

    ref->cvt_f16_to_f32(hsrc.data(), wide_ref.data(), hn);
    kt->cvt_f16_to_f32(hsrc.data(), wide_got.data(), hn);
    EXPECT_EQ(std::memcmp(wide_ref.data(), wide_got.data(),
                          std::size_t(hn) * 4),
              0)
        << "cvt_f16_to_f32 diverges from scalar";
    // And the scalar table itself must be the half.h function.
    for (index_t i = 0; i < 16; ++i) {
      EXPECT_EQ(bits_of(wide_ref[i]), bits_of(f16_bits_to_f32(hsrc[i])));
    }

    ref->cvt_bf16_to_f32(hsrc.data(), wide_ref.data(), hn);
    kt->cvt_bf16_to_f32(hsrc.data(), wide_got.data(), hn);
    EXPECT_EQ(std::memcmp(wide_ref.data(), wide_got.data(),
                          std::size_t(hn) * 4),
              0)
        << "cvt_bf16_to_f32 diverges from scalar";

    ref->cvt_f32_to_f16(fsrc.data(), narrow_ref.data(), fn);
    kt->cvt_f32_to_f16(fsrc.data(), narrow_got.data(), fn);
    EXPECT_EQ(std::memcmp(narrow_ref.data(), narrow_got.data(),
                          std::size_t(fn) * 2),
              0)
        << "cvt_f32_to_f16 diverges from scalar";

    ref->cvt_f32_to_bf16(fsrc.data(), narrow_ref.data(), fn);
    kt->cvt_f32_to_bf16(fsrc.data(), narrow_got.data(), fn);
    EXPECT_EQ(std::memcmp(narrow_ref.data(), narrow_got.data(),
                          std::size_t(fn) * 2),
              0)
        << "cvt_f32_to_bf16 diverges from scalar";
  }
}

// The half formats accumulate with SINGLE-rounding fmadd (unlike the
// fp32 contract's two-rounding madd). probe_fmadd must agree with
// std::fmaf on every backend — and must genuinely be one rounding,
// i.e. differ from madd on a triple chosen to split them.
TEST(LowpCvtKernels, FmaddProbeIsSingleRoundingOnEveryBackend) {
  const float a[8] = {1.0f + 0x1p-12f, -3.0f,    0x1p-126f, 1e18f,
                      0.1f,            -1e-18f,  255.5f,    -0.0f};
  const float b[8] = {1.0f + 0x1p-12f, 2.5f,     0x1p-10f,  1e18f,
                      0.2f,            1e18f,    3.25f,     7.0f};
  const float c[8] = {-1.0f, 0.125f, 0x1p-140f, -1e36f, 0.3f, 1.0f,
                      -829.0f, -0.0f};
  float got[8];
  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    ASSERT_NE(kt, nullptr);
    SCOPED_TRACE(simd::backend_name(be));
    kt->probe_fmadd(a, b, c, got);
    for (int i = 0; i < 8; ++i) {
      const float want = std::fmaf(a[i], b[i], c[i]);
      EXPECT_EQ(bits_of(got[i]), bits_of(want)) << "lane " << i;
    }
  }
  // (1+2^-12)^2 - 1 needs the full product 1 + 2^-11 + 2^-24: a fused
  // multiply-add keeps the 2^-24 term, two roundings lose it.
  EXPECT_NE(bits_of(std::fmaf(a[0], b[0], c[0])),
            bits_of(a[0] * b[0] + c[0]));
}

// ------------------------------------------------------------------
// 3. Conv row kernels: fuzz across shapes, all backends vs scalar.

namespace {

struct LowpConvCase {
  index_t w, k, cin;
  int nco;
  bool deconv;
};

// Widths straddle the 16/8-wide vector blocks and their partial tails;
// h is enough rows for every border clamp to occur.
std::vector<LowpConvCase> lowp_conv_cases() {
  std::vector<LowpConvCase> cases;
  for (const index_t w : {9, 16, 23, 33}) {
    for (const index_t k : {1, 3, 5, 7}) {
      for (const index_t cin : {1, 3}) {
        for (const int nco : {1, 3, 4}) {
          for (const bool deconv : {false, true}) {
            cases.push_back({w, k, cin, nco, deconv});
          }
        }
      }
    }
  }
  return cases;
}

// Runs one (backend, format) sweep of a case over every output row.
// fmt: 0 = f16 storage, 1 = bf16 storage, 2 = widened fp32 via the
// row4 _fma kernel, 3 = widened fp32 via the row8 octet kernel.
void run_lowp_conv(const simd::KernelTable* kt, int fmt,
                   const LowpConvCase& cs, const index_t h,
                   const std::vector<std::uint16_t>& in_h,
                   const std::vector<float>& in_w,
                   const std::vector<float>& wgt,
                   const std::vector<float>& bias, float* out) {
  const index_t pad = cs.k / 2;
  const index_t spatial = h * cs.w;
  for (index_t oy = 0; oy < h; ++oy) {
    float* orow = out + oy * cs.w;
    switch (fmt) {
      case 0:
        (cs.deconv ? kt->deconv2d_row4_s1_f16 : kt->conv2d_row4_s1_f16)(
            in_h.data(), wgt.data(), cs.k * cs.k, cs.cin * cs.k * cs.k,
            orow, spatial, cs.nco, cs.cin, h, cs.w, cs.k, oy, pad, cs.w,
            bias.data());
        break;
      case 1:
        (cs.deconv ? kt->deconv2d_row4_s1_bf16
                   : kt->conv2d_row4_s1_bf16)(
            in_h.data(), wgt.data(), cs.k * cs.k, cs.cin * cs.k * cs.k,
            orow, spatial, cs.nco, cs.cin, h, cs.w, cs.k, oy, pad, cs.w,
            bias.data());
        break;
      case 2:
        (cs.deconv ? kt->deconv2d_row4_s1_fma : kt->conv2d_row4_s1_fma)(
            in_w.data(), wgt.data(), cs.k * cs.k, cs.cin * cs.k * cs.k,
            orow, spatial, cs.nco, cs.cin, h, cs.w, cs.k, oy, pad, cs.w,
            bias.data());
        break;
      default:
        (cs.deconv ? kt->deconv2d_row8_s1_fma : kt->conv2d_row8_s1_fma)(
            in_w.data(), wgt.data(), cs.k * cs.k, cs.cin * cs.k * cs.k,
            orow, spatial, cs.nco, cs.cin, h, cs.w, cs.k, oy, pad, cs.w,
            bias.data());
    }
  }
}

}  // namespace

// Fuzzer: for each shape, (a) every backend reproduces the scalar
// backend's bits for the f16 and bf16 storage kernels, and (b) on each
// backend, running the _fma kernel on a pre-widened copy of the input
// reproduces the storage kernel's bits exactly — the widen-once
// equivalence the graph executor relies on (simd.h).
TEST(LowpConvKernels, StorageAndWidenedPathsMatchAcrossBackends) {
  const simd::KernelTable* ref = simd::table_for(simd::Backend::kScalar);
  ASSERT_NE(ref, nullptr);
  const index_t h = 12;
  Rng rng(4242);
  for (const LowpConvCase& cs : lowp_conv_cases()) {
    SCOPED_TRACE("w=" + std::to_string(cs.w) + " k=" +
                 std::to_string(cs.k) + " cin=" + std::to_string(cs.cin) +
                 " nco=" + std::to_string(cs.nco) +
                 (cs.deconv ? " deconv" : " conv"));
    const index_t spatial = h * cs.w;
    Tensor src({cs.cin, h, cs.w});
    rng.fill_gaussian(src, 0.0, 1.0);
    Tensor wt({index_t(cs.nco), cs.cin, cs.k, cs.k});
    rng.fill_gaussian(wt, 0.0, 0.5);
    std::vector<float> bias(cs.nco);
    for (auto& b : bias) b = 0.25f;

    for (const int fmt : {0, 1}) {
      // Store the input in the half format under test (the storage is
      // the round-trip of the random fp32 source), then pre-widen an
      // exact fp32 copy for the _fma equivalence check.
      std::vector<std::uint16_t> in_h(cs.cin * spatial);
      std::vector<float> in_w(cs.cin * spatial);
      if (fmt == 0) {
        ref->cvt_f32_to_f16(src.data(), in_h.data(), cs.cin * spatial);
        ref->cvt_f16_to_f32(in_h.data(), in_w.data(), cs.cin * spatial);
      } else {
        ref->cvt_f32_to_bf16(src.data(), in_h.data(), cs.cin * spatial);
        ref->cvt_bf16_to_f32(in_h.data(), in_w.data(), cs.cin * spatial);
      }
      const std::vector<float> wgt(wt.data(), wt.data() + wt.numel());

      std::vector<float> want(4 * spatial, -777.0f);
      run_lowp_conv(ref, fmt, cs, h, in_h, in_w, wgt, bias, want.data());

      for (const simd::Backend be : available_backends()) {
        const simd::KernelTable* kt = simd::table_for(be);
        SCOPED_TRACE(simd::backend_name(be));
        std::vector<float> got(4 * spatial, -777.0f);
        run_lowp_conv(kt, fmt, cs, h, in_h, in_w, wgt, bias, got.data());
        EXPECT_EQ(std::memcmp(want.data(), got.data(),
                              want.size() * sizeof(float)),
                  0)
            << (fmt == 0 ? "f16" : "bf16")
            << " storage kernel diverges from scalar";

        std::vector<float> fma(4 * spatial, -777.0f);
        run_lowp_conv(kt, 2, cs, h, in_h, in_w, wgt, bias, fma.data());
        EXPECT_EQ(std::memcmp(want.data(), fma.data(),
                              want.size() * sizeof(float)),
                  0)
            << "_fma kernel on widened input diverges from the "
            << (fmt == 0 ? "f16" : "bf16") << " storage kernel";
      }
    }
  }
}

// Octet regrouping: row8 with nco in 5..8 must equal two row4 calls on
// the co subsets (0..3 and 4..nco-1) — regrouping output channels
// never touches any channel's own accumulation order — and must be
// backend-invariant like everything else.
TEST(LowpConvKernels, OctetKernelMatchesTwoQuartetCalls) {
  const simd::KernelTable* ref = simd::table_for(simd::Backend::kScalar);
  ASSERT_NE(ref, nullptr);
  const index_t h = 10;
  Rng rng(90125);
  for (const index_t w : {9, 23, 33}) {
    for (const index_t k : {1, 3, 5}) {
      for (const int nco : {5, 6, 8}) {
        for (const bool deconv : {false, true}) {
          SCOPED_TRACE("w=" + std::to_string(w) + " k=" +
                       std::to_string(k) + " nco=" + std::to_string(nco) +
                       (deconv ? " deconv" : " conv"));
          const index_t cin = 2, pad = k / 2, spatial = h * w;
          Tensor src({cin, h, w});
          rng.fill_gaussian(src, 0.0, 1.0);
          Tensor wt({index_t(nco), cin, k, k});
          rng.fill_gaussian(wt, 0.0, 0.5);
          std::vector<float> bias(nco, -0.125f);
          const std::vector<float> wgt(wt.data(), wt.data() + wt.numel());
          const index_t wsco = cin * k * k;

          std::vector<float> want(8 * spatial, -777.0f);
          for (index_t oy = 0; oy < h; ++oy) {
            const auto q = deconv ? ref->deconv2d_row4_s1_fma
                                  : ref->conv2d_row4_s1_fma;
            q(src.data(), wgt.data(), k * k, wsco, want.data() + oy * w,
              spatial, 4, cin, h, w, k, oy, pad, w, bias.data());
            q(src.data(), wgt.data() + 4 * wsco, k * k, wsco,
              want.data() + 4 * spatial + oy * w, spatial, nco - 4, cin,
              h, w, k, oy, pad, w, bias.data() + 4);
          }
          for (const simd::Backend be : available_backends()) {
            const simd::KernelTable* kt = simd::table_for(be);
            SCOPED_TRACE(simd::backend_name(be));
            std::vector<float> got(8 * spatial, -777.0f);
            LowpConvCase cs{w, k, cin, nco, deconv};
            std::vector<std::uint16_t> unused;
            run_lowp_conv(kt, 3, cs, h, unused,
                          std::vector<float>(src.data(),
                                             src.data() + src.numel()),
                          wgt, bias, got.data());
            EXPECT_EQ(std::memcmp(want.data(), got.data(),
                                  want.size() * sizeof(float)),
                      0)
                << "row8 octet kernel diverges from two row4 calls";
          }
        }
      }
    }
  }
}

// int8 row kernels: exact int32 accumulation makes every backend
// bitwise-identical by construction — prove it across the shapes that
// exercise the avx2 16-wide, 8-wide, partial-width and scalar border
// paths, plus the quantize/dequantize pair-plane kernels.
TEST(LowpConvKernels, Int8KernelsMatchAcrossBackends) {
  const simd::KernelTable* ref = simd::table_for(simd::Backend::kScalar);
  ASSERT_NE(ref, nullptr);
  Rng seedr(31337);
  std::uint64_t state = 0xC0FFEE123456789ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const index_t h = 12;
  for (const index_t w : {9, 17, 23, 33}) {
    for (const index_t k : {1, 3, 5, 7}) {
      for (const index_t cinp : {1, 4}) {
        for (const int nco : {1, 2, 4}) {
          for (const bool deconv : {false, true}) {
            SCOPED_TRACE("w=" + std::to_string(w) + " k=" +
                         std::to_string(k) + " cinp=" +
                         std::to_string(cinp) + " nco=" +
                         std::to_string(nco) +
                         (deconv ? " deconv" : " conv"));
            const index_t pad = k / 2, spatial = h * w;
            std::vector<std::int8_t> in(cinp * spatial * 2);
            for (auto& v : in) {
              v = static_cast<std::int8_t>(int(next() % 255u) - 127);
            }
            std::vector<std::int16_t> wgt(std::size_t(nco) * cinp * k *
                                          k * 2);
            for (auto& v : wgt) {
              v = static_cast<std::int16_t>(int(next() % 255u) - 127);
            }
            const index_t wsco = cinp * k * k * 2;

            std::vector<std::int32_t> want(4 * spatial, -777);
            for (index_t oy = 0; oy < h; ++oy) {
              (deconv ? ref->deconv2d_row4_s1_i8
                      : ref->conv2d_row4_s1_i8)(
                  in.data(), wgt.data(), wsco, want.data() + oy * w,
                  spatial, nco, cinp, h, w, k, oy, pad, w);
            }
            for (const simd::Backend be : available_backends()) {
              const simd::KernelTable* kt = simd::table_for(be);
              SCOPED_TRACE(simd::backend_name(be));
              std::vector<std::int32_t> got(4 * spatial, -777);
              for (index_t oy = 0; oy < h; ++oy) {
                (deconv ? kt->deconv2d_row4_s1_i8
                        : kt->conv2d_row4_s1_i8)(
                    in.data(), wgt.data(), wsco, got.data() + oy * w,
                    spatial, nco, cinp, h, w, k, oy, pad, w);
              }
              EXPECT_EQ(std::memcmp(want.data(), got.data(),
                                    want.size() * 4),
                        0)
                  << "int8 row kernel diverges from scalar";
            }
          }
        }
      }
    }
  }

  // quant/dequant pair-plane kernels across backends (odd n for tails).
  const index_t n = 1003;
  Tensor x0t({n}), x1t({n});
  seedr.fill_gaussian(x0t, 0.0, 2.0);
  seedr.fill_gaussian(x1t, 0.0, 2.0);
  std::vector<std::int8_t> q_ref(2 * n), q_got(2 * n);
  std::vector<float> d0_ref(n), d1_ref(n), d0_got(n), d1_got(n);
  ref->quant_f32_to_i8(x0t.data(), x1t.data(), q_ref.data(), n, 21.17f);
  ref->dequant_i8_to_f32(q_ref.data(), d0_ref.data(), d1_ref.data(), n,
                         1.0f / 21.17f);
  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    SCOPED_TRACE(simd::backend_name(be));
    kt->quant_f32_to_i8(x0t.data(), x1t.data(), q_got.data(), n, 21.17f);
    EXPECT_EQ(std::memcmp(q_ref.data(), q_got.data(), q_got.size()), 0);
    kt->dequant_i8_to_f32(q_ref.data(), d0_got.data(), d1_got.data(), n,
                          1.0f / 21.17f);
    EXPECT_EQ(std::memcmp(d0_ref.data(), d0_got.data(), n * 4), 0);
    EXPECT_EQ(std::memcmp(d1_ref.data(), d1_got.data(), n * 4), 0);
  }
}

// Converting epilogue stores: the fp32 affine+activation expression
// must match scale_shift_act bitwise, with only the final store
// rounding to the half format — across backends.
TEST(LowpConvKernels, HalfEpilogueStoresMatchScalar) {
  const simd::KernelTable* ref = simd::table_for(simd::Backend::kScalar);
  ASSERT_NE(ref, nullptr);
  const index_t n = 517;
  Tensor xt({n});
  Rng rng(5150);
  rng.fill_gaussian(xt, 0.0, 3.0);
  std::vector<std::uint16_t> want(n), got(n);
  for (const int act : {0, 1, 2}) {
    for (const bool bf : {false, true}) {
      SCOPED_TRACE("act=" + std::to_string(act) + (bf ? " bf16" : " f16"));
      const auto fn = bf ? &simd::KernelTable::scale_shift_act_store_bf16
                         : &simd::KernelTable::scale_shift_act_store_f16;
      (ref->*fn)(xt.data(), want.data(), n, 1.25f, -0.5f, act, 0.01f);
      for (const simd::Backend be : available_backends()) {
        const simd::KernelTable* kt = simd::table_for(be);
        SCOPED_TRACE(simd::backend_name(be));
        (kt->*fn)(xt.data(), got.data(), n, 1.25f, -0.5f, act, 0.01f);
        EXPECT_EQ(std::memcmp(want.data(), got.data(), n * 2), 0);
      }
    }
  }
}

// ------------------------------------------------------------------
// 4. GEMM entry points.

TEST(LowpGemm, SgemmHalfMatchesSgemmOnWidenedOperands) {
  const simd::KernelTable& kt = simd::kernels();
  Rng rng(808);
  // Shapes chosen to hit the 4x8 micro kernel, the edge kernels, and
  // the packing tails.
  const index_t shapes[][3] = {{4, 8, 8}, {7, 9, 11}, {16, 32, 24},
                               {13, 5, 17}};
  for (const auto& s : shapes) {
    const index_t m = s[0], k = s[1], n = s[2];
    SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + "x" +
                 std::to_string(n));
    Tensor a({m, k}), b({k, n});
    rng.fill_gaussian(a, 0.0, 1.0);
    rng.fill_gaussian(b, 0.0, 1.0);
    for (const bool bf : {false, true}) {
      SCOPED_TRACE(bf ? "bf16" : "f16");
      std::vector<std::uint16_t> ah(m * k), bh(k * n);
      std::vector<float> aw(m * k), bw(k * n);
      if (bf) {
        kt.cvt_f32_to_bf16(a.data(), ah.data(), m * k);
        kt.cvt_bf16_to_f32(ah.data(), aw.data(), m * k);
        kt.cvt_f32_to_bf16(b.data(), bh.data(), k * n);
        kt.cvt_bf16_to_f32(bh.data(), bw.data(), k * n);
      } else {
        kt.cvt_f32_to_f16(a.data(), ah.data(), m * k);
        kt.cvt_f16_to_f32(ah.data(), aw.data(), m * k);
        kt.cvt_f32_to_f16(b.data(), bh.data(), k * n);
        kt.cvt_f16_to_f32(bh.data(), bw.data(), k * n);
      }
      std::vector<float> want(m * n), got(m * n);
      ops::sgemm(aw.data(), bw.data(), want.data(), m, k, n);
      ops::sgemm_half(ah.data(), bh.data(), got.data(), m, k, n, bf);
      EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * 4), 0)
          << "sgemm_half diverges from sgemm on pre-widened operands";
    }
  }
}

TEST(LowpGemm, QgemmI8MatchesExactInt32Reference) {
  std::uint64_t state = 0xABCDEF987654321ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const index_t m = 9, k = 31, n = 13;
  std::vector<std::int8_t> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<std::int8_t>(int(next() % 255u) - 127);
  for (auto& v : b) v = static_cast<std::int8_t>(int(next() % 255u) - 127);
  const float a_scale = 0.031f;
  std::vector<float> b_scale(n);
  for (index_t j = 0; j < n; ++j) b_scale[j] = 0.007f + 0.001f * j;

  std::vector<float> got(m * n);
  ops::qgemm_i8(a.data(), b.data(), got.data(), m, k, n, a_scale,
                b_scale.data());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (index_t p = 0; p < k; ++p) {
        acc += std::int32_t(a[i * k + p]) * std::int32_t(b[p * n + j]);
      }
      const float want = float(acc) * (a_scale * b_scale[j]);
      EXPECT_EQ(bits_of(got[i * n + j]), bits_of(want))
          << "(" << i << "," << j << ")";
    }
  }
}

// ------------------------------------------------------------------
// 5. Calibration determinism.

// graph::calibrate must be a pure function of (graph, batch): the
// int8 scales may not move with the task-engine width, or two serve
// shards with different thread counts would disagree on the quantized
// network. Checked at widths 1, 2 and 8 and across backends.
TEST(LowpCalibration, ScalesAreWidthAndBackendInvariant) {
  nn::seed_init_rng(3);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  const graph::Graph g = net.build_graph(1, 16, 16);
  Rng rng(0x5ca1ab1e);
  std::vector<Tensor> batch;
  for (int i = 0; i < 2; ++i) {
    Tensor t({1, 1, 16, 16});
    rng.fill_uniform(t, 0.0, 1.0);
    batch.push_back(std::move(t));
  }

  std::vector<float> ref;
  for (const int width : {1, 2, 8}) {
    ParallelPin pin(width);
    const graph::Calibration cal = graph::calibrate(g, batch);
    ASSERT_TRUE(cal.defined());
    for (const float s : cal.node_scale) {
      EXPECT_GT(s, 0.0f);
      EXPECT_TRUE(std::isfinite(s));
    }
    if (ref.empty()) {
      ref = cal.node_scale;
    } else {
      ASSERT_EQ(ref.size(), cal.node_scale.size());
      EXPECT_EQ(std::memcmp(ref.data(), cal.node_scale.data(),
                            ref.size() * sizeof(float)),
                0)
          << "calibration scales moved with task width " << width;
    }
  }
  const simd::Backend prev = simd::active_backend();
  for (const simd::Backend be : available_backends()) {
    simd::set_backend(be);
    const graph::Calibration cal = graph::calibrate(g, batch);
    ASSERT_EQ(ref.size(), cal.node_scale.size());
    EXPECT_EQ(std::memcmp(ref.data(), cal.node_scale.data(),
                          ref.size() * sizeof(float)),
              0)
        << "calibration scales moved with backend "
        << simd::backend_name(be);
  }
  simd::set_backend(prev);
}

// Precision parsing: the shared env helper's spellings, round-tripped
// through the enum, and bytes-per-element for each format.
TEST(LowpCalibration, PrecisionParseAndBytes) {
  using core::Precision;
  Precision p = Precision::kF32;
  EXPECT_TRUE(core::parse_precision("fp16", &p));
  EXPECT_EQ(p, Precision::kF16);
  EXPECT_TRUE(core::parse_precision("bf16", &p));
  EXPECT_EQ(p, Precision::kBf16);
  EXPECT_TRUE(core::parse_precision("int8", &p));
  EXPECT_EQ(p, Precision::kInt8);
  EXPECT_TRUE(core::parse_precision("fp32", &p));
  EXPECT_EQ(p, Precision::kF32);
  EXPECT_FALSE(core::parse_precision("pf16", &p));
  EXPECT_FALSE(core::parse_precision("", &p));
  EXPECT_EQ(core::precision_bytes(Precision::kF32), 4u);
  EXPECT_EQ(core::precision_bytes(Precision::kF16), 2u);
  EXPECT_EQ(core::precision_bytes(Precision::kBf16), 2u);
  EXPECT_EQ(core::precision_bytes(Precision::kInt8), 1u);
  for (const Precision q : {Precision::kF32, Precision::kF16,
                            Precision::kBf16, Precision::kInt8}) {
    Precision back = Precision::kF32;
    ASSERT_TRUE(core::parse_precision(core::precision_name(q), &back));
    EXPECT_EQ(back, q);
  }
}
