// Image-quality and classification metrics (§5.2's measurement
// apparatus): SSIM/MS-SSIM invariants, ROC/AUC properties, confusion
// matrix identities.
#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"
#include "metrics/classification.h"
#include "metrics/image_quality.h"

namespace ccovid::metrics {
namespace {

Tensor random_image(index_t h, index_t w, std::uint64_t seed,
                    double lo = 0.0, double hi = 1.0) {
  Rng rng(seed);
  Tensor t({h, w});
  rng.fill_uniform(t, lo, hi);
  return t;
}

// ------------------------------------------------------------ MSE/PSNR
TEST(Mse, ZeroForIdenticalImages) {
  const Tensor a = random_image(16, 16, 1);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Mse, KnownValue) {
  const Tensor a = Tensor::zeros({2, 2});
  const Tensor b = Tensor::full({2, 2}, 0.5f);
  EXPECT_NEAR(mse(a, b), 0.25, 1e-7);
}

TEST(Mse, Symmetric) {
  const Tensor a = random_image(8, 8, 2);
  const Tensor b = random_image(8, 8, 3);
  EXPECT_DOUBLE_EQ(mse(a, b), mse(b, a));
}

TEST(Psnr, InfiniteForIdentical) {
  const Tensor a = random_image(8, 8, 4);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownValue) {
  const Tensor a = Tensor::zeros({4, 4});
  const Tensor b = Tensor::full({4, 4}, 0.1f);
  EXPECT_NEAR(psnr(a, b), 20.0, 1e-6);  // -10 log10(0.01)
}

// ----------------------------------------------------------------- SSIM
TEST(GaussianWindow, NormalizedAndSymmetric) {
  const Tensor w = gaussian_window(11, 1.5);
  EXPECT_NEAR(w.sum(), 1.0f, 1e-6);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(w.at(i), w.at(10 - i), 1e-7);
  }
  EXPECT_GT(w.at(5), w.at(0));
}

TEST(Ssim, OneForIdenticalImages) {
  const Tensor a = random_image(32, 32, 5);
  const SsimComponents c = ssim(a, a);
  EXPECT_NEAR(c.ssim, 1.0, 1e-6);
  EXPECT_NEAR(c.luminance, 1.0, 1e-6);
  EXPECT_NEAR(c.contrast, 1.0, 1e-6);
}

TEST(Ssim, SymmetricInArguments) {
  const Tensor a = random_image(24, 24, 6);
  const Tensor b = random_image(24, 24, 7);
  EXPECT_NEAR(ssim(a, b).ssim, ssim(b, a).ssim, 1e-9);
}

TEST(Ssim, DecreasesWithNoise) {
  const Tensor a = random_image(32, 32, 8);
  Rng rng(9);
  Tensor small_noise = a.clone();
  Tensor big_noise = a.clone();
  for (index_t i = 0; i < a.numel(); ++i) {
    small_noise.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.01));
    big_noise.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.2));
  }
  const double s_small = ssim(a, small_noise).ssim;
  const double s_big = ssim(a, big_noise).ssim;
  EXPECT_GT(s_small, s_big);
  EXPECT_GT(s_small, 0.9);
  EXPECT_LT(s_big, 0.9);
}

TEST(Ssim, BoundedAboveByOne) {
  const Tensor a = random_image(20, 20, 10);
  const Tensor b = random_image(20, 20, 11);
  EXPECT_LE(ssim(a, b).ssim, 1.0 + 1e-9);
}

TEST(Ssim, RejectsImageSmallerThanWindow) {
  const Tensor a = random_image(8, 8, 12);
  EXPECT_THROW(ssim(a, a, 11), std::invalid_argument);
}

// -------------------------------------------------------------- MS-SSIM
TEST(MsSsim, OneForIdentical) {
  const Tensor a = random_image(64, 64, 13);
  EXPECT_NEAR(ms_ssim(a, a), 1.0, 1e-5);
}

TEST(MsSsim, AutoReducesScalesForSmallImages) {
  // 32x32 supports 2 scales of an 11-tap window; must not throw.
  const Tensor a = random_image(32, 32, 14);
  const Tensor b = random_image(32, 32, 15);
  const double v = ms_ssim(a, b);
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, 1.0 + 1e-9);
}

TEST(MsSsim, OrdersImagesByDegradation) {
  const Tensor a = random_image(64, 64, 16);
  Rng rng(17);
  Tensor mild = a.clone();
  Tensor severe = a.clone();
  for (index_t i = 0; i < a.numel(); ++i) {
    mild.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.02));
    severe.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.3));
  }
  EXPECT_GT(ms_ssim(a, mild), ms_ssim(a, severe));
}

TEST(MsSsim, ThrowsWhenTooSmallForWindow) {
  const Tensor a = random_image(8, 8, 18);
  EXPECT_THROW(ms_ssim(a, a, 11), std::invalid_argument);
}

TEST(Downsample2x, AveragesQuads) {
  const Tensor a = Tensor::from_vector({2, 2}, {1, 3, 5, 7});
  const Tensor d = downsample2x(a);
  ASSERT_EQ(d.numel(), 1);
  EXPECT_FLOAT_EQ(d.at(0, 0), 4.0f);
}

// ---------------------------------------------------- confusion matrix
TEST(Confusion, CountsAndDerivedRates) {
  // Scores: two clear positives, one missed positive, one false alarm.
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.7, 0.1, 0.05};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const ConfusionMatrix m = confusion_at_threshold(scores, labels, 0.5);
  EXPECT_EQ(m.tp, 2);
  EXPECT_EQ(m.fn, 1);
  EXPECT_EQ(m.fp, 1);
  EXPECT_EQ(m.tn, 2);
  EXPECT_NEAR(m.accuracy(), 4.0 / 6.0, 1e-9);   // Eq. (3)
  EXPECT_NEAR(m.tpr(), 2.0 / 3.0, 1e-9);        // Eq. (4)
  EXPECT_NEAR(m.fpr(), 1.0 / 3.0, 1e-9);        // Eq. (5)
  EXPECT_NEAR(m.specificity(), 2.0 / 3.0, 1e-9);
}

TEST(Confusion, ThresholdSweepMonotonicity) {
  const std::vector<double> scores = {0.1, 0.4, 0.35, 0.8};
  const std::vector<int> labels = {0, 0, 1, 1};
  const auto low = confusion_at_threshold(scores, labels, 0.0);
  const auto high = confusion_at_threshold(scores, labels, 1.01);
  EXPECT_EQ(low.tp + low.fp, 4);   // everything positive
  EXPECT_EQ(high.tn + high.fn, 4); // everything negative
}

TEST(Confusion, MismatchedSizesThrow) {
  EXPECT_THROW(confusion_at_threshold({0.5}, {1, 0}, 0.5),
               std::invalid_argument);
}

// --------------------------------------------------------------- ROC/AUC
TEST(Roc, PerfectClassifierAucIsOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.3, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  EXPECT_NEAR(auc(scores, labels), 1.0, 1e-9);
}

TEST(Roc, ReversedClassifierAucIsZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.7, 0.8, 0.9};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  EXPECT_NEAR(auc(scores, labels), 0.0, 1e-9);
}

TEST(Roc, RandomScoresNearHalf) {
  Rng rng(19);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.bernoulli(0.4) ? 1 : 0);
  }
  EXPECT_NEAR(auc(scores, labels), 0.5, 0.03);
}

TEST(Roc, CurveIsMonotonicallyNondecreasing) {
  Rng rng(20);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);
    scores.push_back(rng.uniform() * 0.5 + labels.back() * 0.3);
  }
  const auto curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr - 1e-12);
  }
  EXPECT_NEAR(curve.front().fpr, 0.0, 1e-12);
  EXPECT_NEAR(curve.back().tpr, 1.0, 1e-12);
}

TEST(Roc, AucEqualsMannWhitneyOnSeparableData) {
  // AUC should equal P(score_pos > score_neg) for tie-free data.
  const std::vector<double> scores = {0.9, 0.6, 0.4, 0.8, 0.3, 0.1};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  double pairs_won = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 1) continue;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] != 0) continue;
      ++pairs;
      pairs_won += scores[i] > scores[j] ? 1.0 : 0.0;
    }
  }
  EXPECT_NEAR(auc(scores, labels), pairs_won / pairs, 1e-9);
}

TEST(Youden, FindsSeparatingThreshold) {
  const std::vector<double> scores = {0.9, 0.85, 0.8, 0.2, 0.15, 0.1};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const double t = youden_optimal_threshold(scores, labels);
  const ConfusionMatrix m = confusion_at_threshold(scores, labels, t);
  EXPECT_EQ(m.tp, 3);
  EXPECT_EQ(m.fp, 0);
}

TEST(Youden, LowThresholdForMinorityPositives) {
  // When positives score moderately but negatives score very low, the
  // optimal threshold lands well below 0.5 — the Table 9 situation
  // (paper threshold: 0.061).
  std::vector<double> scores;
  std::vector<int> labels;
  Rng rng(21);
  for (int i = 0; i < 36; ++i) {  // positives, scores ~ U[0.1, 0.5]
    scores.push_back(rng.uniform(0.1, 0.5));
    labels.push_back(1);
  }
  for (int i = 0; i < 59; ++i) {  // negatives, scores ~ U[0.0, 0.08]
    scores.push_back(rng.uniform(0.0, 0.08));
    labels.push_back(0);
  }
  const double t = youden_optimal_threshold(scores, labels);
  EXPECT_LT(t, 0.2);
  EXPECT_GT(confusion_at_threshold(scores, labels, t).accuracy(), 0.95);
}

TEST(BestAccuracy, BeatsFixedHalfThreshold) {
  const std::vector<double> scores = {0.45, 0.4, 0.35, 0.3, 0.1, 0.05};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  double t = 0.0;
  const double acc = best_accuracy(scores, labels, &t);
  EXPECT_NEAR(acc, 1.0, 1e-9);
  EXPECT_LT(t, 0.5);
  EXPECT_GE(acc,
            confusion_at_threshold(scores, labels, 0.5).accuracy());
}

}  // namespace
}  // namespace ccovid::metrics
