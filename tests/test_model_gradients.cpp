// End-to-end gradient checks through whole networks: for a miniature
// DDnet, DenseNet-3D, AH-Net and U-Net, perturb sampled weights and
// compare central-difference loss derivatives against the analytic
// gradients from backward(). This validates the composed graph —
// dense-block concatenation fan-out, global shortcuts, batch-norm
// statistics, residual adds — not just individual ops.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "autograd/engine.h"
#include "autograd/gradcheck.h"
#include "autograd/losses.h"
#include "nn/ahnet.h"
#include "nn/ddnet.h"
#include "nn/densenet3d.h"
#include "nn/unet.h"

namespace ccovid {
namespace {

// Checks d(loss)/d(theta_i) for a weight entry sampled from every
// parameter tensor of the model. Networks with max-pooling and
// (leaky-)ReLU are only piecewise differentiable: a perturbation that
// flips an argmax or crosses a kink makes the central difference invalid
// at that point, so a small fraction of sampled entries is allowed to
// disagree — the rest must match tightly.
//
// The analytic pass runs TWICE — once under the sequential walk, once
// under the async ready-queue engine — and the two gradient sets must
// agree bitwise before the numeric check proceeds. That extends every
// model gradcheck in this file into an engine-equivalence test over
// real network graphs (dense-block concat fan-out, batch norm,
// residual adds), complementing the synthetic DAG fuzzer.
template <typename LossFn>
void check_model_gradients(nn::Module& model, LossFn&& loss_fn,
                           double eps, double tol) {
  // Analytic pass, sequential reference first.
  {
    autograd::BackwardModeGuard guard(autograd::BackwardMode::kSequential);
    autograd::Var loss = loss_fn();
    loss.backward();
  }
  std::vector<Tensor> seq_grads;
  for (auto& [name, param] : model.named_parameters()) {
    ASSERT_TRUE(param.has_grad()) << name << " received no gradient";
    seq_grads.push_back(param.grad().clone());
    param.grad() = Tensor();  // back to the undefined-grad start state
  }
  {
    autograd::BackwardModeGuard guard(autograd::BackwardMode::kAsync);
    autograd::Var loss = loss_fn();
    loss.backward();
  }
  std::size_t gi = 0;
  for (auto& [name, param] : model.named_parameters()) {
    ASSERT_TRUE(param.has_grad()) << name;
    const Tensor& g = param.grad();
    ASSERT_EQ(g.numel(), seq_grads[gi].numel()) << name;
    EXPECT_EQ(std::memcmp(g.data(), seq_grads[gi].data(),
                          static_cast<std::size_t>(g.numel()) *
                              sizeof(real_t)),
              0)
        << name << ": async engine gradient bits diverge from the "
                   "sequential walk";
    ++gi;
  }

  Rng pick(123);
  int checked = 0;
  int mismatched = 0;
  std::string first_mismatch;
  for (auto& [name, param] : model.named_parameters()) {
    ASSERT_TRUE(param.has_grad()) << name << " received no gradient";
    Tensor& w = param.value();
    const index_t idx = pick.uniform_int(0, w.numel() - 1);
    const real_t analytic = param.grad().data()[idx];

    const real_t orig = w.data()[idx];
    w.data()[idx] = orig + static_cast<real_t>(eps);
    const double f_plus = static_cast<double>(loss_fn().value().at(0));
    w.data()[idx] = orig - static_cast<real_t>(eps);
    const double f_minus = static_cast<double>(loss_fn().value().at(0));
    w.data()[idx] = orig;

    const double numeric = (f_plus - f_minus) / (2.0 * eps);
    const double scale = std::max(1.0, std::fabs(numeric));
    ++checked;
    if (std::fabs(analytic - numeric) > tol * scale) {
      ++mismatched;
      if (first_mismatch.empty()) {
        first_mismatch = name + ": analytic " + std::to_string(analytic) +
                         " vs numeric " + std::to_string(numeric);
      }
    }
  }
  // Allow up to ~15% kink-crossing samples; everything else must agree.
  EXPECT_LE(mismatched, std::max(1, checked * 15 / 100))
      << "first mismatch: " << first_mismatch;
}

TEST(ModelGradients, DDnetCompositeLoss) {
  nn::seed_init_rng(1);
  nn::DDnetConfig cfg;
  cfg.base_channels = 2;
  cfg.growth = 2;
  cfg.levels = 1;
  cfg.dense_layers = 1;
  nn::DDnet net(cfg);
  net.set_training(true);

  Rng rng(2);
  Tensor input({1, 1, 12, 12});
  Tensor target({1, 1, 12, 12});
  rng.fill_uniform(input, 0.2, 0.8);
  rng.fill_uniform(target, 0.2, 0.8);

  auto loss_fn = [&]() {
    autograd::Var x(input.clone());
    autograd::Var pred = net.forward(x);
    return autograd::enhancement_loss(pred, target, 0.1f, 11, 1);
  };
  check_model_gradients(net, loss_fn, 5e-3, 5e-2);
}

TEST(ModelGradients, DDnetNoResidual) {
  nn::seed_init_rng(3);
  nn::DDnetConfig cfg;
  cfg.base_channels = 2;
  cfg.growth = 2;
  cfg.levels = 1;
  cfg.dense_layers = 1;
  cfg.residual = false;
  nn::DDnet net(cfg);
  net.set_training(true);
  Rng rng(4);
  Tensor input({1, 1, 8, 8});
  Tensor target({1, 1, 8, 8});
  rng.fill_uniform(input, 0.2, 0.8);
  rng.fill_uniform(target, 0.2, 0.8);
  auto loss_fn = [&]() {
    autograd::Var pred = net.forward(autograd::Var(input.clone()));
    return autograd::mse_loss(pred, target);
  };
  check_model_gradients(net, loss_fn, 5e-3, 5e-2);
}

TEST(ModelGradients, DenseNet3dBceLoss) {
  nn::seed_init_rng(5);
  nn::DenseNet3dConfig cfg;
  cfg.init_channels = 2;
  cfg.growth = 2;
  cfg.block_layers = {1, 1, 1, 1};
  nn::DenseNet3d net(cfg);
  net.set_training(true);
  Rng rng(6);
  Tensor vol({1, 1, 4, 8, 8});
  rng.fill_uniform(vol, 0.0, 1.0);
  Tensor label({1, 1});
  label.at(0, 0) = 1.0f;
  auto loss_fn = [&]() {
    autograd::Var logits = net.forward(autograd::Var(vol.clone()));
    return autograd::bce_with_logits_loss(logits, label);
  };
  check_model_gradients(net, loss_fn, 1e-2, 8e-2);
}

TEST(ModelGradients, AhNetPixelBce) {
  nn::seed_init_rng(7);
  nn::AhNetConfig cfg;
  cfg.base_channels = 2;
  cfg.levels = 1;
  nn::AhNet net(cfg);
  net.set_training(true);
  Rng rng(8);
  Tensor slice({1, 1, 8, 8});
  rng.fill_uniform(slice, 0.0, 1.0);
  Tensor mask({1, 1, 8, 8});
  for (index_t i = 20; i < 44; ++i) mask.data()[i] = 1.0f;
  auto loss_fn = [&]() {
    autograd::Var logits = net.forward(autograd::Var(slice.clone()));
    return autograd::bce_with_logits_loss(logits, mask);
  };
  check_model_gradients(net, loss_fn, 5e-3, 5e-2);
}

TEST(ModelGradients, UNetMseLoss) {
  nn::seed_init_rng(9);
  nn::UNetConfig cfg;
  cfg.base_channels = 2;
  cfg.levels = 1;
  nn::UNetDenoiser net(cfg);
  net.set_training(true);
  Rng rng(10);
  Tensor input({1, 1, 8, 8});
  Tensor target({1, 1, 8, 8});
  rng.fill_uniform(input, 0.2, 0.8);
  rng.fill_uniform(target, 0.2, 0.8);
  auto loss_fn = [&]() {
    autograd::Var pred = net.forward(autograd::Var(input.clone()));
    return autograd::mse_loss(pred, target);
  };
  check_model_gradients(net, loss_fn, 5e-3, 5e-2);
}

TEST(ModelGradients, EveryDDnetParameterReceivesGradient) {
  // A disconnected layer (gradient never reaching a parameter) is a
  // wiring bug the shape tests cannot catch.
  nn::seed_init_rng(11);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(true);
  Rng rng(12);
  Tensor input({1, 1, 16, 16});
  Tensor target({1, 1, 16, 16});
  rng.fill_uniform(input, 0.2, 0.8);
  rng.fill_uniform(target, 0.2, 0.8);
  autograd::Var pred = net.forward(autograd::Var(input));
  autograd::Var loss = autograd::enhancement_loss(pred, target, 0.1f, 11, 1);
  loss.backward();
  for (const auto& [name, p] : net.named_parameters()) {
    EXPECT_TRUE(p.has_grad()) << name;
  }
}

}  // namespace
}  // namespace ccovid
