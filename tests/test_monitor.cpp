// Monitoring-mode suite (`ctest -L fast`): the serve/monitor.h unit
// contracts — content-addressed key sensitivity, hit-equals-recompute
// bitwise, LRU eviction, epoch-ordered invalidation (racing inserts
// dropped), self-digest verification, session delta telescoping, the
// authoritative-prior rebuild path, TTL/capacity bounds — plus the
// InferenceServer integration: cache_hit responses bitwise-identical to
// the recomputed first scan, per-patient deltas in responses, and the
// "monitor" fragment in stats JSON. The fault-schedule scenarios
// (poison, invalidate-mid-request, worker kill) live in
// tests/chaos/chaos_monitor.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <vector>

#include "core/precision.h"
#include "data/phantom.h"
#include "nn/layers.h"
#include "serve/monitor.h"
#include "serve/server.h"

namespace ccovid {
namespace {

using namespace std::chrono_literals;
using serve::CachedResult;
using serve::MonitorOptions;
using serve::ResultCache;
using serve::ScanDelta;
using serve::SessionPrior;
using serve::SessionStore;

CachedResult sealed(double prob, double burden) {
  CachedResult r;
  r.probability = prob;
  r.positive = prob >= r.threshold;
  r.infection_burden = burden;
  r.lung_voxels = 100;
  r.infected_voxels = static_cast<std::uint64_t>(burden * 100);
  r.seal();
  return r;
}

// ---------------------------------------------------------- scan keys

TEST(ScanKey, CoversEveryInputTheOutputDependsOn) {
  Tensor v({2, 4, 4});
  for (index_t i = 0; i < v.numel(); ++i) v.data()[i] = real_t(i);
  const auto base = [&] {
    return ResultCache::scan_key(v, true, 0.5, core::Precision::kF32,
                                 false, 0);
  };
  const std::uint64_t k = base();
  EXPECT_EQ(k, base()) << "key must be a pure function of its inputs";

  Tensor v2 = v.clone();
  v2.data()[3] += 1.0f;
  EXPECT_NE(k, ResultCache::scan_key(v2, true, 0.5, core::Precision::kF32,
                                     false, 0))
      << "a single changed voxel must change the key";
  EXPECT_NE(k, ResultCache::scan_key(v, false, 0.5, core::Precision::kF32,
                                     false, 0));
  EXPECT_NE(k, ResultCache::scan_key(v, true, 0.25, core::Precision::kF32,
                                     false, 0));
  EXPECT_NE(k, ResultCache::scan_key(v, true, 0.5, core::Precision::kF16,
                                     false, 0));
  EXPECT_NE(k, ResultCache::scan_key(v, true, 0.5, core::Precision::kF32,
                                     true, 0));
  EXPECT_NE(k, ResultCache::scan_key(v, true, 0.5, core::Precision::kF32,
                                     false, 1));
}

// -------------------------------------------------------- result cache

TEST(ResultCache, HitReturnsTheExactInsertedBits) {
  ResultCache cache(MonitorOptions{});
  const CachedResult in = sealed(0.62517, 0.31250);
  cache.insert(1234, in, cache.epoch());
  const auto out = cache.lookup(1234);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(0, std::memcmp(&out->probability, &in.probability,
                           sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&out->infection_burden, &in.infection_burden,
                           sizeof(double)));
  EXPECT_EQ(out->lung_voxels, in.lung_voxels);
  EXPECT_EQ(cache.hits.load(), 1u);
  EXPECT_EQ(cache.misses.load(), 0u);
}

TEST(ResultCache, LruEvictsColdestAtCapacity) {
  MonitorOptions opt;
  opt.cache_capacity = 2;
  ResultCache cache(opt);
  cache.insert(1, sealed(0.1, 0.1), 0);
  cache.insert(2, sealed(0.2, 0.2), 0);
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 is now hottest
  cache.insert(3, sealed(0.3, 0.3), 0);      // evicts 2, the cold end
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.evictions.load(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, InvalidateBumpsEpochAndDropsRacingInserts) {
  ResultCache cache(MonitorOptions{});
  const std::uint64_t e0 = cache.epoch();
  cache.insert(7, sealed(0.5, 0.5), e0);
  EXPECT_EQ(cache.size(), 1u);

  // A request samples the epoch, then an invalidation lands before its
  // insert: the insert must be dropped, not resurrect retired bits.
  const std::uint64_t sampled = cache.epoch();
  cache.invalidate("weights reloaded");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), e0 + 1);
  EXPECT_EQ(cache.last_invalidate_reason(), "weights reloaded");
  EXPECT_EQ(cache.invalidated_entries.load(), 1u);

  cache.insert(8, sealed(0.6, 0.6), sampled);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stale_inserts.load(), 1u);

  // An insert carrying the NEW epoch lands normally.
  cache.insert(8, sealed(0.6, 0.6), cache.epoch());
  EXPECT_TRUE(cache.lookup(8).has_value());
}

TEST(ResultCache, SelfDigestDetectsDamagedPayloads) {
  CachedResult r = sealed(0.75, 0.25);
  EXPECT_EQ(r.compute_digest(), r.self_digest);
  r.infection_burden += 1e-9;  // one damaged payload bit-pattern
  EXPECT_NE(r.compute_digest(), r.self_digest);
}

// ------------------------------------------------------- session store

TEST(SessionStore, DeltasTelescopeAcrossAScanSeries) {
  SessionStore store(MonitorOptions{});
  const std::vector<double> burdens = {0.10, 0.25, 0.40, 0.30, 0.05};
  double sum_deltas = 0.0;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < burdens.size(); ++i) {
    const ScanDelta d = store.observe(42, burdens[i], 0.0, nullptr);
    EXPECT_EQ(d.seq, i + 1);
    seq = d.seq;
    EXPECT_EQ(d.first, i == 0);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(d.delta_vs_prev, burdens[i] - burdens[i - 1]);
      EXPECT_DOUBLE_EQ(d.delta_vs_baseline, burdens[i] - burdens[0]);
      sum_deltas += d.delta_vs_prev;
    }
  }
  // The telescoping invariant the chaos suite re-checks under faults.
  EXPECT_DOUBLE_EQ(sum_deltas, burdens.back() - burdens.front());
  EXPECT_EQ(seq, burdens.size());
  EXPECT_EQ(store.patients(), 1u);
  EXPECT_EQ(store.scans.load(), burdens.size());
}

TEST(SessionStore, AuthoritativePriorRebuildsAFreshStoreBitwise) {
  // A worker observes scans 1..2, then "dies"; the replacement store is
  // empty, but the routing layer re-sends (seq, prev, baseline) — the
  // delta for scan 3 must come out bit-identical.
  MonitorOptions opt;
  SessionStore original(opt);
  original.observe(9, 0.20, 0.0, nullptr);
  original.observe(9, 0.35, 0.0, nullptr);
  const auto snap = original.snapshot(9, 0.0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->seq, 2u);
  EXPECT_DOUBLE_EQ(snap->prev_burden, 0.35);
  EXPECT_DOUBLE_EQ(snap->baseline_burden, 0.20);

  SessionPrior prior;
  prior.seq = 3;
  prior.prev_burden = snap->prev_burden;
  prior.baseline_burden = snap->baseline_burden;

  const ScanDelta on_original = original.observe(9, 0.50, 0.0, &prior);
  SessionStore fresh(opt);
  const ScanDelta on_fresh = fresh.observe(9, 0.50, 0.0, &prior);

  EXPECT_EQ(on_fresh.seq, on_original.seq);
  EXPECT_EQ(0, std::memcmp(&on_fresh.delta_vs_prev,
                           &on_original.delta_vs_prev, sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&on_fresh.delta_vs_baseline,
                           &on_original.delta_vs_baseline, sizeof(double)));
  EXPECT_EQ(fresh.rebuilt.load(), 1u);
  EXPECT_EQ(fresh.created.load(), 0u);
}

TEST(SessionStore, TtlExpiresIdleSessionsLazily) {
  MonitorOptions opt;
  opt.session_ttl_s = 10.0;
  SessionStore store(opt);
  store.observe(1, 0.1, 0.0, nullptr);
  store.observe(2, 0.2, 5.0, nullptr);
  EXPECT_EQ(store.patients(), 2u);
  // t=12: patient 1 (idle 12s) expires, patient 2 (idle 7s) survives.
  EXPECT_TRUE(store.snapshot(2, 12.0).has_value());
  EXPECT_FALSE(store.snapshot(1, 12.0).has_value());
  EXPECT_EQ(store.expired.load(), 1u);
  // The expired patient's next scan starts a new series at seq 1.
  EXPECT_EQ(store.observe(1, 0.3, 12.0, nullptr).seq, 1u);
}

TEST(SessionStore, CapacityEvictsLruPatient) {
  MonitorOptions opt;
  opt.session_capacity = 2;
  SessionStore store(opt);
  store.observe(1, 0.1, 0.0, nullptr);
  store.observe(2, 0.2, 0.0, nullptr);
  store.observe(1, 0.15, 0.0, nullptr);  // 1 is hottest
  store.observe(3, 0.3, 0.0, nullptr);   // evicts 2
  EXPECT_EQ(store.patients(), 2u);
  EXPECT_FALSE(store.snapshot(2, 0.0).has_value());
  EXPECT_TRUE(store.snapshot(1, 0.0).has_value());
  EXPECT_EQ(store.evicted.load(), 1u);
}

// --------------------------------------------------- server integration

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> tiny_pipeline() {
  nn::seed_init_rng(3);
  auto enh =
      std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

serve::ServerOptions monitor_options() {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 1;
  opt.batch_delay = std::chrono::microseconds(100);
  opt.monitor = true;
  return opt;
}

serve::DiagnoseResponse roundtrip(serve::InferenceServer& server,
                                  const Tensor& vol,
                                  std::uint64_t patient_id) {
  serve::ServeOptions so;
  so.patient_id = patient_id;
  auto fut = server.submit(vol, so);
  EXPECT_EQ(fut.wait_for(30s), std::future_status::ready);
  return fut.get();
}

TEST(MonitorServer, CacheHitIsBitwiseIdenticalToRecompute) {
  Rng rng(11);
  const auto vol = data::make_volume(2, 8, true, rng);
  serve::InferenceServer server(tiny_pipeline(), monitor_options());

  const auto first = roundtrip(server, vol.hu, 50);
  ASSERT_EQ(first.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.infection_burden, 0.0);

  const auto second = roundtrip(server, vol.hu, 50);
  ASSERT_EQ(second.status, serve::RequestStatus::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(0, std::memcmp(&first.diagnosis.probability,
                           &second.diagnosis.probability, sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&first.infection_burden,
                           &second.infection_burden, sizeof(double)));
  EXPECT_EQ(first.diagnosis.positive, second.diagnosis.positive);

  ASSERT_NE(server.monitor(), nullptr);
  EXPECT_EQ(server.monitor()->cache().hits.load(), 1u);
  // Identical volume, one scan apart: the delta must be exactly zero.
  EXPECT_EQ(second.scan_seq, 2u);
  EXPECT_EQ(second.burden_delta, 0.0);
  server.shutdown();
}

TEST(MonitorServer, InvalidationForcesRecomputeNeverStaleBits) {
  Rng rng(11);
  const auto vol = data::make_volume(2, 8, false, rng);
  serve::InferenceServer server(tiny_pipeline(), monitor_options());

  const auto first = roundtrip(server, vol.hu, 60);
  ASSERT_EQ(first.status, serve::RequestStatus::kOk);
  server.monitor()->cache().invalidate("test: config change");
  const auto second = roundtrip(server, vol.hu, 60);
  ASSERT_EQ(second.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(second.cache_hit) << "invalidation must force recompute";
  // Same volume, same weights: recompute reproduces the same bits.
  EXPECT_EQ(0, std::memcmp(&first.diagnosis.probability,
                           &second.diagnosis.probability, sizeof(double)));
  EXPECT_EQ(server.monitor()->cache().invalidations.load(), 1u);
  server.shutdown();
}

TEST(MonitorServer, PerPatientDeltasRideTheResponse) {
  Rng rng(11);
  const auto a = data::make_volume(2, 8, false, rng);
  const auto b = data::make_volume(2, 8, true, rng);
  serve::InferenceServer server(tiny_pipeline(), monitor_options());

  const auto s1 = roundtrip(server, a.hu, 70);
  const auto s2 = roundtrip(server, b.hu, 70);
  ASSERT_EQ(s2.status, serve::RequestStatus::kOk);
  EXPECT_EQ(s1.scan_seq, 1u);
  EXPECT_EQ(s2.scan_seq, 2u);
  EXPECT_DOUBLE_EQ(s2.burden_delta,
                   s2.infection_burden - s1.infection_burden);
  EXPECT_DOUBLE_EQ(s2.baseline_delta, s2.burden_delta);

  // A stateless request (patient_id 0) is untouched by monitoring.
  serve::ServeOptions stateless;
  auto fut = server.submit(a.hu, stateless);
  const auto r = fut.get();
  EXPECT_EQ(r.scan_seq, 0u);

  const std::string json = server.stats_json();
  EXPECT_NE(json.find("\"monitor\":{\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"session\":{\"patients\":1"), std::string::npos);
  server.shutdown();
}

TEST(MonitorServer, MonitorOffKeepsResponsesStateless) {
  Rng rng(11);
  const auto vol = data::make_volume(2, 8, true, rng);
  serve::ServerOptions opt = monitor_options();
  opt.monitor = false;
  serve::InferenceServer server(tiny_pipeline(), opt);
  EXPECT_EQ(server.monitor(), nullptr);
  const auto r = roundtrip(server, vol.hu, 80);
  ASSERT_EQ(r.status, serve::RequestStatus::kOk);
  EXPECT_EQ(r.scan_seq, 0u);
  EXPECT_FALSE(r.cache_hit);
  // The burden metric itself still rides the diagnosis (the pipeline
  // computes it unconditionally).
  EXPECT_GT(r.diagnosis.infection_burden, 0.0);
  EXPECT_EQ(server.stats_json().find("\"monitor\""), std::string::npos);
  server.shutdown();
}

}  // namespace
}  // namespace ccovid
