// src/net test battery: frame codec robustness (property/fuzz style —
// truncated, oversized, bit-flipped inputs must surface as typed
// CommError or "no frame yet", never a hang, crash, or silent bad
// frame), transport guard taxonomy across all three backends, the
// multi-consumer Channel wakeup fix, and the CCOVID_RECV_TIMEOUT
// plumbing. Runs under `ctest -L fast`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/digest.h"
#include "core/random.h"
#include "core/types.h"
#include "fault/failpoint.h"
#include "net/channel.h"
#include "net/error.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"
#include "serve/shard_proto.h"

using namespace ccovid;
using net::CommError;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;

namespace {

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(start + i);
  }
  return p;
}

std::vector<std::uint8_t> encoded(FrameType t, std::uint64_t seq,
                                  std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = t;
  f.seq = seq;
  f.payload = std::move(payload);
  std::vector<std::uint8_t> out;
  net::encode_frame(f, out);
  return out;
}

/// Restamps the header checksum after a deliberate header edit, so the
/// test reaches the validation stage *behind* the checksum.
void restamp_header(std::vector<std::uint8_t>& wire) {
  const std::uint32_t c =
      static_cast<std::uint32_t>(fnv1a64(wire.data(), net::kFrameHeaderSize - 4));
  wire[28] = static_cast<std::uint8_t>(c);
  wire[29] = static_cast<std::uint8_t>(c >> 8);
  wire[30] = static_cast<std::uint8_t>(c >> 16);
  wire[31] = static_cast<std::uint8_t>(c >> 24);
}

class RegistryGuard {
 public:
  RegistryGuard() { fault::Registry::instance().reset(); }
  ~RegistryGuard() { fault::Registry::instance().reset(); }
};

}  // namespace

// ----------------------------------------------------------- codec

TEST(FrameCodec, RoundtripsABackToBackStream) {
  std::vector<std::uint8_t> wire;
  for (std::uint64_t s = 0; s < 5; ++s) {
    Frame f;
    f.type = FrameType::kData;
    f.seq = s;
    f.payload = payload_of(17 * s);  // includes an empty payload
    net::encode_frame(f, wire);
  }
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  for (std::uint64_t s = 0; s < 5; ++s) {
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->type, FrameType::kData);
    EXPECT_EQ(f->seq, s);
    EXPECT_EQ(f->payload, payload_of(17 * s));
  }
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, DecodesByteAtATime) {
  const auto wire = encoded(FrameType::kRequest, 7, payload_of(33));
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(&wire[i], 1);
    EXPECT_FALSE(dec.next().has_value()) << "frame surfaced early at " << i;
  }
  dec.feed(&wire.back(), 1);
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->seq, 7u);
  EXPECT_EQ(f->payload, payload_of(33));
}

TEST(FrameCodec, TruncationYieldsNoFrameNotGarbage) {
  const auto wire = encoded(FrameType::kData, 1, payload_of(64));
  // Every possible truncation point: never a frame, never a throw —
  // lost tail bytes look like a silent peer (recv timeout), which is
  // exactly the kTimeout story the taxonomy wants.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "cut=" << cut;
  }
}

TEST(FrameCodec, EveryHeaderBitFlipIsDetected) {
  const auto wire = encoded(FrameType::kData, 3, payload_of(24));
  for (std::size_t byte = 0; byte < net::kFrameHeaderSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = wire;
      damaged[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder dec;
      dec.feed(damaged.data(), damaged.size());
      try {
        auto f = dec.next();
        // A header flip may NOT produce a frame; nullopt is also wrong
        // because the full frame is buffered.
        FAIL() << "header flip at byte " << byte << " bit " << bit
               << (f ? " produced a frame" : " went undetected");
      } catch (const CommError& e) {
        EXPECT_EQ(e.kind(), CommError::Kind::kCorrupt);
      }
    }
  }
}

TEST(FrameCodec, EveryPayloadByteFlipIsDetected) {
  const auto wire = encoded(FrameType::kData, 4, payload_of(48));
  for (std::size_t byte = net::kFrameHeaderSize; byte < wire.size(); ++byte) {
    auto damaged = wire;
    damaged[byte] ^= 0x40;
    FrameDecoder dec;
    dec.feed(damaged.data(), damaged.size());
    EXPECT_THROW((void)dec.next(), CommError) << "payload byte " << byte;
  }
}

TEST(FrameCodec, OversizedDeclaredLengthIsBoundedNotAllocated) {
  // Craft a header that *validly* declares a payload beyond the bound:
  // the header checksum is restamped, so only the length bound can
  // reject it. The decoder must throw instead of trusting the length.
  auto wire = encoded(FrameType::kData, 5, payload_of(8));
  const std::uint32_t huge = 1u << 30;
  wire[24] = static_cast<std::uint8_t>(huge);
  wire[25] = static_cast<std::uint8_t>(huge >> 8);
  wire[26] = static_cast<std::uint8_t>(huge >> 16);
  wire[27] = static_cast<std::uint8_t>(huge >> 24);
  restamp_header(wire);
  FrameDecoder dec(1 << 20);  // 1 MiB bound
  dec.feed(wire.data(), wire.size());
  try {
    (void)dec.next();
    FAIL() << "oversized length accepted";
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommError::Kind::kCorrupt);
  }
}

TEST(FrameCodec, PoisonedUntilReset) {
  auto wire = encoded(FrameType::kData, 6, payload_of(16));
  wire[0] ^= 0xFF;  // bad magic
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  EXPECT_THROW((void)dec.next(), CommError);
  EXPECT_THROW((void)dec.next(), CommError);  // still poisoned
  dec.reset();
  const auto good = encoded(FrameType::kData, 6, payload_of(16));
  dec.feed(good.data(), good.size());
  EXPECT_TRUE(dec.next().has_value());
}

TEST(FrameCodec, SeededFuzzNeverCrashesOrHangs) {
  Rng rng(0xF2A2E5);
  for (int round = 0; round < 300; ++round) {
    // A small stream of valid frames...
    std::vector<std::uint8_t> wire;
    const int frames = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int i = 0; i < frames; ++i) {
      Frame f;
      f.type = FrameType::kData;
      f.seq = static_cast<std::uint64_t>(i);
      f.payload = payload_of(rng.next_u64() % 200,
                             static_cast<std::uint8_t>(round));
      net::encode_frame(f, wire);
    }
    // ...then damaged: truncate, and flip a few random bits.
    wire.resize(rng.next_u64() % (wire.size() + 1));
    for (int flips = static_cast<int>(rng.next_u64() % 4);
         flips > 0 && !wire.empty(); --flips) {
      wire[rng.next_u64() % wire.size()] ^=
          static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    }
    FrameDecoder dec;
    // Feed in random-sized chunks; outcomes are frames, nullopt, or a
    // typed CommError — anything else (crash, OOB, uncaught type) fails.
    std::size_t off = 0;
    bool poisoned = false;
    while (off < wire.size() && !poisoned) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.next_u64() % 64,
                                wire.size() - off);
      dec.feed(wire.data() + off, chunk);
      off += chunk;
      try {
        while (dec.next().has_value()) {
        }
      } catch (const CommError& e) {
        EXPECT_EQ(e.kind(), CommError::Kind::kCorrupt);
        poisoned = true;
      }
    }
  }
}

// ------------------------------------------------ guard taxonomy

namespace {

/// Runs the sender-side failpoint taxonomy against any connected
/// transport pair: dup -> kDuplicate, drop -> kOutOfOrder on the
/// successor, conn.drop -> EOF, corrupt -> kCorrupt.
void exercise_taxonomy(net::Transport& a, net::Transport& b) {
  auto& reg = fault::Registry::instance();

  // Clean traffic first: seq handshake intact.
  a.send(FrameType::kData, {1, 2, 3});
  Frame f = b.recv(2.0);
  EXPECT_EQ(f.payload, (std::vector<std::uint8_t>{1, 2, 3}));

  // Duplicate: second copy of the same seq.
  reg.arm("net.frame.dup", "once");
  a.send(FrameType::kData, {4});
  EXPECT_TRUE(b.recv(2.0).payload == std::vector<std::uint8_t>{4});
  try {
    (void)b.recv(1.0);
    FAIL() << "duplicate frame not detected";
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommError::Kind::kDuplicate);
  }
  reg.reset();

  // Drop: the successor frame exposes the gap, then recovery works.
  reg.arm("net.frame.drop", "once");
  a.send(FrameType::kData, {5});  // consumed, never transmitted
  reg.reset();
  a.send(FrameType::kData, {6});
  try {
    (void)b.recv(2.0);
    FAIL() << "dropped frame's gap not detected";
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommError::Kind::kOutOfOrder);
  }
  a.send(FrameType::kData, {7});  // poison-free: next frame is clean
  EXPECT_EQ(b.recv(2.0).payload, (std::vector<std::uint8_t>{7}));

  // Corrupt: bytes damaged after checksums were stamped.
  reg.arm("net.frame.corrupt", "once");
  a.send(FrameType::kData, {8, 9});
  reg.reset();
  try {
    (void)b.recv(2.0);
    FAIL() << "corrupted frame not detected";
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommError::Kind::kCorrupt);
  }
}

}  // namespace

TEST(TransportGuard, TaxonomyOverInproc) {
  RegistryGuard rg;
  auto [a, b] = net::InprocTransport::make_pair();
  exercise_taxonomy(*a, *b);
}

TEST(TransportGuard, TaxonomyOverUnixSocket) {
  RegistryGuard rg;
  const std::string path =
      "/tmp/ccovid_test_net_" + std::to_string(::getpid()) + ".sock";
  net::SocketListener listener(net::Endpoint::parse("unix:" + path));
  std::unique_ptr<net::SocketTransport> a, b;
  std::thread t([&] { b = listener.accept_for(5.0, 1, 0); });
  a = net::connect_endpoint(listener.endpoint(), 5.0, 0, 1);
  t.join();
  ASSERT_TRUE(a && b);
  exercise_taxonomy(*a, *b);
}

TEST(TransportGuard, TaxonomyOverTcpSocket) {
  RegistryGuard rg;
  net::SocketListener listener(net::Endpoint::parse("tcp:127.0.0.1:0"));
  net::Endpoint ep = listener.endpoint();
  ep.port = listener.bound_port();  // ephemeral port readback
  std::unique_ptr<net::SocketTransport> a, b;
  std::thread t([&] { b = listener.accept_for(5.0, 1, 0); });
  a = net::connect_endpoint(ep, 5.0, 0, 1);
  t.join();
  ASSERT_TRUE(a && b);
  exercise_taxonomy(*a, *b);
}

TEST(TransportGuard, ConnDropSurfacesAsEofThenTimeout) {
  RegistryGuard rg;
  auto [a, b] = net::InprocTransport::make_pair();
  fault::Registry::instance().arm("net.conn.drop", "once");
  a->send(FrameType::kData, {1});  // connection hard-closed instead
  EXPECT_FALSE(a->open());
  EXPECT_FALSE(b->recv_for(0.2).has_value());
  try {
    (void)b->recv(0.1);
    FAIL() << "recv on dead peer must throw";
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommError::Kind::kTimeout);
  }
  // Sending into the closed connection is also a typed timeout.
  EXPECT_THROW(a->send(FrameType::kData, {2}), CommError);
}

TEST(TransportGuard, RecvTimesOutTyped) {
  auto [a, b] = net::InprocTransport::make_pair();
  (void)a;
  EXPECT_FALSE(b->recv_for(0.05).has_value());
  try {
    (void)b->recv(0.05);
    FAIL();
  } catch (const CommError& e) {
    EXPECT_EQ(e.kind(), CommError::Kind::kTimeout);
  }
}

// --------------------------------------------------- channel wakeup

TEST(Channel, NotifyAllWakesEveryConsumer) {
  // Regression for the notify_one wakeup bug: with two consumers
  // blocked in recv_packet_for, a single notify could land on a waiter
  // that times out on the same tick and swallows the wakeup, stranding
  // the other consumer although a packet sits in the queue. notify_all
  // makes the hammer below drain reliably.
  net::Channel ch;
  constexpr int kPackets = 400;
  std::atomic<int> received{0};
  auto consumer = [&] {
    while (received.load(std::memory_order_relaxed) < kPackets) {
      auto p = ch.recv_packet_for(0.001);  // deliberately tiny timeout
      if (p) received.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread c1(consumer), c2(consumer);
  for (int i = 0; i < kPackets; ++i) {
    net::Packet p;
    p.payload = net::Message(1, static_cast<real_t>(i));
    ch.send_packet(std::move(p));
  }
  c1.join();
  c2.join();
  EXPECT_EQ(received.load(), kPackets);
}

TEST(Channel, CloseUnblocksReceivers) {
  net::Channel ch;
  std::thread t([&] {
    EXPECT_FALSE(ch.recv_packet_for(5.0).has_value());  // returns early
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  t.join();
  EXPECT_TRUE(ch.closed());
}

// ------------------------------------------- recv timeout plumbing

TEST(RecvTimeout, EnvVariableSetsTheDefault) {
  ::setenv("CCOVID_RECV_TIMEOUT", "0.75", 1);
  EXPECT_DOUBLE_EQ(net::default_recv_timeout_s(), 0.75);
  net::GuardOptions g;
  EXPECT_DOUBLE_EQ(g.recv_timeout_s, 0.75);
  ::setenv("CCOVID_RECV_TIMEOUT", "garbage", 1);
  EXPECT_DOUBLE_EQ(net::default_recv_timeout_s(), 2.0);
  ::setenv("CCOVID_RECV_TIMEOUT", "-3", 1);
  EXPECT_DOUBLE_EQ(net::default_recv_timeout_s(), 2.0);
  ::unsetenv("CCOVID_RECV_TIMEOUT");
  EXPECT_DOUBLE_EQ(net::default_recv_timeout_s(), 2.0);
}

// ------------------------------------------------- shard protocol

TEST(ShardProto, RequestRoundtripsThroughTensor) {
  Tensor vol({2, 3, 4});
  for (index_t i = 0; i < vol.numel(); ++i) {
    vol.data()[i] = static_cast<real_t>(i) * 0.5f - 3.0f;
  }
  serve::ServeOptions so;
  so.use_enhancement = false;
  so.threshold = 0.42;
  const auto req = serve::ShardRequest::from_volume(9, 1234, vol, so);
  const auto back = serve::decode_request(serve::encode(req));
  EXPECT_EQ(back.request_id, 9u);
  EXPECT_EQ(back.patient_id, 1234u);
  EXPECT_FALSE(back.use_enhancement);
  EXPECT_DOUBLE_EQ(back.threshold, 0.42);
  const Tensor t = back.to_tensor();
  ASSERT_EQ(t.numel(), vol.numel());
  EXPECT_EQ(0, std::memcmp(t.data(), vol.data(),
                           static_cast<std::size_t>(vol.numel()) *
                               sizeof(real_t)));
}

TEST(ShardProto, TruncatedAndSkewedBodiesThrowTyped) {
  Tensor vol({1, 2, 2});
  const auto req =
      serve::ShardRequest::from_volume(1, 2, vol, serve::ServeOptions{});
  auto wire = serve::encode(req);

  // Every truncation of the body is kCorrupt, not UB.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<std::uint8_t> t(wire.begin(),
                                wire.begin() + static_cast<long>(cut));
    try {
      (void)serve::decode_request(t);
      FAIL() << "cut=" << cut;
    } catch (const CommError& e) {
      EXPECT_EQ(e.kind(), CommError::Kind::kCorrupt);
    }
  }
  // Trailing bytes (version skew) are rejected too.
  wire.push_back(0);
  EXPECT_THROW((void)serve::decode_request(wire), CommError);

  // A damaged dim cannot drive an allocation past the payload bound.
  // Dim bytes sit right before the voxel payload: ids (8+8), monitor
  // triple (8+1+8+8), flag+threshold (1+8), then depth/height/width.
  auto bad = serve::encode(req);
  bad[bad.size() - vol.numel() * sizeof(real_t) - 12] = 0xFF;
  EXPECT_THROW((void)serve::decode_request(bad), CommError);
}

TEST(ShardProto, ResponseRoundtrips) {
  serve::ShardResponse r;
  r.request_id = 77;
  r.status = serve::RequestStatus::kOk;
  r.degraded = true;
  r.retries = 3;
  r.probability = 0.875;
  r.positive = true;
  r.threshold = 0.5;
  r.execute_s = 0.125;
  r.error = "none";
  const auto back = serve::decode_response(serve::encode(r));
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.status, serve::RequestStatus::kOk);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.retries, 3);
  EXPECT_DOUBLE_EQ(back.probability, 0.875);
  EXPECT_EQ(back.error, "none");
}
