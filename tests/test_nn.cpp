// Network modules: parameter bookkeeping, state-dict round trips, DDnet
// architecture invariants (37 convolutions / 8 deconvolutions, Table 2
// shapes), the 3-D classifier and the AH-Net segmenter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "autograd/losses.h"
#include "autograd/optim.h"
#include "nn/ahnet.h"
#include "nn/ddnet.h"
#include "nn/densenet3d.h"

namespace ccovid::nn {
namespace {

// ----------------------------------------------------------- Module
TEST(Module, ParametersCollectedRecursively) {
  seed_init_rng(1);
  DenseBlock2d block(4, 4, 2);
  // Per layer: bn1(gamma,beta) + conv1(w,b) + bn2(gamma,beta) + conv5(w,b)
  // = 8 params, 2 layers = 16.
  EXPECT_EQ(block.named_parameters().size(), 16u);
}

TEST(Module, NamedParametersHaveHierarchicalNames) {
  seed_init_rng(2);
  Conv2d conv(1, 2, 3);
  const auto params = conv.named_parameters();
  std::set<std::string> names;
  for (const auto& [n, v] : params) names.insert(n);
  EXPECT_TRUE(names.count("weight"));
  EXPECT_TRUE(names.count("bias"));
}

TEST(Module, StateDictRoundTrip) {
  seed_init_rng(3);
  Conv2d a(2, 3, 3);
  seed_init_rng(99);
  Conv2d b(2, 3, 3);
  EXPECT_GT(max_abs_diff(a.named_parameters()[0].second.value(),
                         b.named_parameters()[0].second.value()),
            0.0f);
  b.load_state_dict(a.state_dict());
  EXPECT_TRUE(allclose(a.named_parameters()[0].second.value(),
                       b.named_parameters()[0].second.value()));
}

TEST(Module, SaveLoadFile) {
  const std::string path =
      std::filesystem::temp_directory_path() / "ccovid_module.tnsr";
  seed_init_rng(4);
  BatchNorm bn(3);
  bn.save(path);
  seed_init_rng(5);
  BatchNorm bn2(3);
  bn2.load(path);
  EXPECT_TRUE(allclose(bn.state_dict().at("param.gamma"),
                       bn2.state_dict().at("param.gamma")));
  std::remove(path.c_str());
}

TEST(Module, LoadRejectsMissingEntries) {
  seed_init_rng(6);
  Conv2d conv(1, 1, 3);
  TensorMap empty;
  EXPECT_THROW(conv.load_state_dict(empty), std::runtime_error);
}

TEST(Module, CopyParametersProducesIdenticalForward) {
  seed_init_rng(7);
  DDnetConfig cfg = DDnetConfig::tiny();
  DDnet a(cfg);
  seed_init_rng(1234);
  DDnet b(cfg);
  b.copy_parameters_from(a);
  Rng rng(8);
  Tensor img({16, 16});
  rng.fill_uniform(img, 0.0, 1.0);
  a.set_training(false);
  b.set_training(false);
  EXPECT_TRUE(allclose(a.enhance(img), b.enhance(img), 1e-5f, 1e-5f));
}

TEST(Module, TrainingFlagPropagates) {
  seed_init_rng(9);
  DDnet net(DDnetConfig::tiny());
  net.set_training(false);
  EXPECT_FALSE(net.training());
  net.set_training(true);
  EXPECT_TRUE(net.training());
}

// ------------------------------------------------------------- DDnet
TEST(DDnet, PaperConfigHas37ConvAnd8DeconvLayers) {
  seed_init_rng(10);
  DDnet net(DDnetConfig::paper());
  index_t convs = 0, deconvs = 0;
  for (const auto& [name, v] : net.named_parameters()) {
    if (name.find("weight") == std::string::npos) continue;
    if (name.find("dec") == 0) {
      ++deconvs;
    } else if (name.find("fc") == std::string::npos) {
      ++convs;
    }
  }
  EXPECT_EQ(convs, 37);   // §2.2: "37 convolution layers"
  EXPECT_EQ(deconvs, 8);  // §2.2: "eight deconvolution layers"
}

TEST(DDnet, PreservesInputShape) {
  seed_init_rng(11);
  DDnet net(DDnetConfig::tiny());
  net.set_training(false);
  Rng rng(12);
  Tensor img({16, 24});  // rectangular, divisible by 2^levels
  rng.fill_uniform(img, 0.0, 1.0);
  const Tensor out = net.enhance(img);
  EXPECT_EQ(out.shape(), img.shape());
}

TEST(DDnet, RejectsIndivisibleExtent) {
  seed_init_rng(13);
  DDnet net(DDnetConfig::tiny());  // levels = 2 -> divisible by 4
  Rng rng(14);
  Tensor img({10, 10});
  EXPECT_THROW(net.enhance(img), std::invalid_argument);
}

TEST(DDnet, ResidualConfigPassesThroughEarlyTraining) {
  // With residual learning and near-zero-init weights, the output stays
  // close to the input before training — the denoising identity prior.
  seed_init_rng(15);
  DDnetConfig cfg = DDnetConfig::tiny();
  cfg.residual = true;
  DDnet net(cfg);
  net.set_training(false);
  Rng rng(16);
  Tensor img({16, 16});
  rng.fill_uniform(img, 0.3, 0.7);
  const Tensor out = net.enhance(img);
  EXPECT_LT(max_abs_diff(out, img), 0.5f);
}

TEST(DDnet, OneTrainingStepReducesLoss) {
  seed_init_rng(17);
  DDnetConfig cfg = DDnetConfig::tiny();
  DDnet net(cfg);
  Rng rng(18);
  Tensor target({1, 1, 16, 16});
  rng.fill_uniform(target, 0.2, 0.8);
  Tensor noisy = target.clone();
  for (index_t i = 0; i < noisy.numel(); ++i) {
    noisy.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.1));
  }
  autograd::Adam opt(net.parameters(), 1e-3);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 8; ++step) {
    autograd::Var x(noisy.clone());
    autograd::Var pred = net.forward(x);
    autograd::Var loss = autograd::enhancement_loss(pred, target, 0.1f, 11, 1);
    if (step == 0) first = loss.value().at(0);
    last = loss.value().at(0);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last, first);
}

TEST(DDnet, KernelOptionSelectionPreservesOutput) {
  seed_init_rng(19);
  DDnet net(DDnetConfig::tiny());
  net.set_training(false);
  Rng rng(20);
  Tensor img({16, 16});
  rng.fill_uniform(img, 0.0, 1.0);
  net.set_kernel_options(ops::KernelOptions::all());
  const Tensor fast = net.enhance(img);
  net.set_kernel_options(ops::KernelOptions::baseline());
  const Tensor slow = net.enhance(img);
  EXPECT_TRUE(allclose(fast, slow, 1e-4f, 1e-4f));
}

// -------------------------------------------------------- DenseNet3d
TEST(DenseNet3d, EmitsSingleLogit) {
  seed_init_rng(21);
  DenseNet3d net;
  net.set_training(false);
  Rng rng(22);
  Tensor vol({1, 1, 8, 16, 16});
  rng.fill_uniform(vol, 0.0, 1.0);
  const autograd::Var out = net.forward(autograd::Var(vol));
  EXPECT_EQ(out.value().shape(), Shape({1, 1}));
}

TEST(DenseNet3d, PredictProbabilityInUnitInterval) {
  seed_init_rng(23);
  DenseNet3d net;
  net.set_training(false);
  Rng rng(24);
  Tensor vol({8, 16, 16});
  rng.fill_uniform(vol, 0.0, 1.0);
  const double p = net.predict_probability(vol);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(DenseNet3d, Densenet121PresetHasFourStages) {
  const DenseNet3dConfig cfg = DenseNet3dConfig::densenet121();
  EXPECT_EQ(cfg.block_layers[0], 6);
  EXPECT_EQ(cfg.block_layers[3], 16);
  EXPECT_EQ(cfg.growth, 32);
}

TEST(DenseNet3d, TrainingStepReducesBce) {
  seed_init_rng(25);
  DenseNet3d net;
  Rng rng(26);
  // One strongly positive (bright) and one negative (dark) volume.
  Tensor pos({1, 1, 4, 8, 8});
  Tensor neg({1, 1, 4, 8, 8});
  rng.fill_uniform(pos, 0.7, 1.0);
  rng.fill_uniform(neg, 0.0, 0.3);
  Tensor one({1, 1});
  one.at(0, 0) = 1.0f;
  Tensor zero({1, 1});
  autograd::Adam opt(net.parameters(), 5e-3);
  double first = 0.0, best = 1e9;
  for (int step = 0; step < 30; ++step) {
    autograd::Var lp = net.forward(autograd::Var(pos.clone()));
    autograd::Var ln = net.forward(autograd::Var(neg.clone()));
    autograd::Var loss =
        autograd::add(autograd::bce_with_logits_loss(lp, one),
                      autograd::bce_with_logits_loss(ln, zero));
    if (step == 0) first = loss.value().at(0);
    if (step >= 25) best = std::min(best, double(loss.value().at(0)));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(best, first);
}

// ------------------------------------------------------------- AhNet
TEST(AhNet, LogitsMatchInputResolution) {
  seed_init_rng(27);
  AhNet net;
  net.set_training(false);
  Rng rng(28);
  Tensor x({1, 1, 16, 16});
  rng.fill_uniform(x, 0.0, 1.0);
  const autograd::Var out = net.forward(autograd::Var(x));
  EXPECT_EQ(out.value().shape(), Shape({1, 1, 16, 16}));
}

TEST(AhNet, SegmentVolumeIsBinary) {
  seed_init_rng(29);
  AhNet net;
  net.set_training(false);
  Rng rng(30);
  Tensor vol({3, 16, 16});
  rng.fill_uniform(vol, 0.0, 1.0);
  const Tensor mask = net.segment_volume(vol);
  EXPECT_EQ(mask.shape(), vol.shape());
  for (index_t i = 0; i < mask.numel(); ++i) {
    EXPECT_TRUE(mask.data()[i] == 0.0f || mask.data()[i] == 1.0f);
  }
}

TEST(AhNet, ApplyMaskZeroesBackground) {
  Tensor vol = Tensor::full({2, 4, 4}, 5.0f);
  Tensor mask = Tensor::zeros({2, 4, 4});
  mask.at(0, 1, 1) = 1.0f;
  const Tensor masked = AhNet::apply_mask(vol, mask);
  EXPECT_FLOAT_EQ(masked.at(0, 1, 1), 5.0f);
  EXPECT_FLOAT_EQ(masked.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(masked.sum(), 5.0f);
}

TEST(AhNet, RejectsIndivisibleExtent) {
  seed_init_rng(31);
  AhNet net;
  Tensor x({1, 1, 10, 10});
  EXPECT_THROW(net.forward(autograd::Var(x)), std::invalid_argument);
}

// ----------------------------------------------------- initialization
TEST(Init, GaussianStdDevMatchesPaper) {
  seed_init_rng(32);
  Conv2d conv(16, 16, 5);
  const Tensor& w = conv.named_parameters()[0].second.value();
  double sum = 0.0, sum_sq = 0.0;
  for (index_t i = 0; i < w.numel(); ++i) {
    sum += w.data()[i];
    sum_sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double mean = sum / w.numel();
  const double stddev = std::sqrt(sum_sq / w.numel() - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.002);
  EXPECT_NEAR(stddev, 0.01, 0.002);  // §3.1.1
}

TEST(Init, SeedReproducesWeights) {
  seed_init_rng(42);
  Conv2d a(2, 2, 3);
  seed_init_rng(42);
  Conv2d b(2, 2, 3);
  EXPECT_TRUE(allclose(a.named_parameters()[0].second.value(),
                       b.named_parameters()[0].second.value()));
}

}  // namespace
}  // namespace ccovid::nn
