// Convolution kernels: every optimization stage must agree with the
// reference implementation across a parameterized sweep of filter sizes,
// strides, paddings and channel counts; gradient kernels must match
// numerical differentiation.
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "core/random.h"
#include "ops/conv2d.h"
#include "ops/conv3d.h"
#include "ops/linear.h"

namespace ccovid::ops {
namespace {

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 1.0);
  return t;
}

struct ConvCase {
  index_t n, cin, h, w, cout, k, stride, pad;
};

class Conv2dSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv2dSweep, AllVariantsMatchReference) {
  const ConvCase c = GetParam();
  const Tensor input = random_tensor({c.n, c.cin, c.h, c.w}, 1);
  const Tensor weight = random_tensor({c.cout, c.cin, c.k, c.k}, 2);
  const Tensor bias = random_tensor({c.cout}, 3);
  const Conv2dParams p{c.stride, c.pad};

  const Tensor ref = conv2d_reference(input, weight, bias, p);
  for (const KernelOptions& opt :
       {KernelOptions::baseline(), KernelOptions::refactored(),
        KernelOptions::refactored_prefetch(), KernelOptions::all()}) {
    const Tensor out = conv2d(input, weight, bias, p, opt);
    EXPECT_TRUE(allclose(out, ref, 1e-4f, 1e-4f))
        << "variant " << opt.str() << " diff " << max_abs_diff(out, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv2dSweep,
    ::testing::Values(
        ConvCase{1, 1, 8, 8, 1, 1, 1, 0},    // pointwise
        ConvCase{1, 1, 9, 9, 2, 3, 1, 1},    // 3x3 same
        ConvCase{1, 2, 12, 12, 3, 5, 1, 2},  // DDnet 5x5 same
        ConvCase{1, 1, 16, 16, 2, 7, 1, 3},  // DDnet stem 7x7
        ConvCase{2, 3, 10, 8, 4, 3, 2, 1},   // strided, rectangular
        ConvCase{1, 2, 7, 7, 2, 3, 3, 0},    // stride 3, no pad
        ConvCase{1, 4, 6, 6, 8, 2, 1, 0},    // even filter (generic path)
        ConvCase{3, 1, 5, 5, 1, 5, 1, 2}));  // batch > 1

TEST(Conv2d, OutputExtentFormula) {
  EXPECT_EQ(conv_out_extent(512, 7, 1, 3), 512);
  EXPECT_EQ(conv_out_extent(512, 3, 2, 1), 256);  // DDnet pooling geometry
  EXPECT_EQ(conv_out_extent(5, 3, 1, 0), 3);
}

TEST(Conv2d, IdentityKernelPreservesImage) {
  const Tensor input = random_tensor({1, 1, 6, 6}, 4);
  Tensor weight({1, 1, 1, 1});
  weight.at(0, 0, 0, 0) = 1.0f;
  const Tensor out = conv2d(input, weight, Tensor(), Conv2dParams{1, 0});
  EXPECT_TRUE(allclose(out, input));
}

TEST(Conv2d, BiasIsAdded) {
  const Tensor input = Tensor::zeros({1, 1, 4, 4});
  Tensor weight({2, 1, 3, 3});
  Tensor bias = Tensor::from_vector({2}, {1.5f, -2.0f});
  const Tensor out = conv2d(input, weight, bias, Conv2dParams::same(3));
  EXPECT_FLOAT_EQ(out.at(0, 0, 2, 2), 1.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 2, 2), -2.0f);
}

TEST(Conv2d, ChannelMismatchThrows) {
  const Tensor input = Tensor::zeros({1, 2, 4, 4});
  const Tensor weight = Tensor::zeros({1, 3, 3, 3});
  EXPECT_THROW(conv2d(input, weight, Tensor(), Conv2dParams::same(3)),
               std::invalid_argument);
}

TEST(Conv2d, BackwardInputMatchesNumerical) {
  Tensor input = random_tensor({1, 2, 6, 6}, 5);
  const Tensor weight = random_tensor({3, 2, 3, 3}, 6);
  const Conv2dParams p{1, 1};
  // Scalar objective: sum of outputs. dL/dy = ones.
  auto f = [&]() {
    return static_cast<double>(
        conv2d_reference(input, weight, Tensor(), p).sum());
  };
  const Tensor num = autograd::numerical_gradient(f, input, 1e-2);
  const Tensor gout =
      Tensor::ones({1, 3, conv_out_extent(6, 3, 1, 1),
                    conv_out_extent(6, 3, 1, 1)});
  const Tensor ana = conv2d_backward_input(gout, weight, 6, 6, p);
  EXPECT_LT(autograd::gradient_error(ana, num), 2e-2);
}

TEST(Conv2d, BackwardWeightMatchesNumerical) {
  const Tensor input = random_tensor({2, 2, 5, 5}, 7);
  Tensor weight = random_tensor({2, 2, 3, 3}, 8);
  const Conv2dParams p{2, 1};
  auto f = [&]() {
    return static_cast<double>(
        conv2d_reference(input, weight, Tensor(), p).sum());
  };
  const Tensor num = autograd::numerical_gradient(f, weight, 1e-2);
  const index_t oe = conv_out_extent(5, 3, 2, 1);
  const Tensor gout = Tensor::ones({2, 2, oe, oe});
  const Tensor ana = conv2d_backward_weight(gout, input, 3, p);
  EXPECT_LT(autograd::gradient_error(ana, num), 2e-2);
}

TEST(Conv2d, BackwardBiasSumsGradient) {
  Tensor gout({2, 3, 2, 2});
  gout.fill(0.5f);
  const Tensor gb = conv2d_backward_bias(gout);
  ASSERT_EQ(gb.dim(0), 3);
  for (index_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(gb.at(c), 4.0f);  // 2*2*2*0.5
}

// -------------------------------------------------------------- conv3d
TEST(Conv3d, IdentityPointwise) {
  const Tensor input = random_tensor({1, 1, 3, 4, 5}, 9);
  Tensor weight({1, 1, 1, 1, 1});
  weight.at(0, 0, 0, 0, 0) = 1.0f;
  const Tensor out = conv3d(input, weight, Tensor(), Conv3dParams{1, 0});
  EXPECT_TRUE(allclose(out, input));
}

TEST(Conv3d, MatchesManualComputationForSmallCase) {
  // 2x2x2 input, 2x2x2 filter, valid conv -> single output = dot product.
  const Tensor input = random_tensor({1, 1, 2, 2, 2}, 10);
  const Tensor weight = random_tensor({1, 1, 2, 2, 2}, 11);
  const Tensor out = conv3d(input, weight, Tensor(), Conv3dParams{1, 0});
  ASSERT_EQ(out.numel(), 1);
  double expect = 0.0;
  for (index_t i = 0; i < 8; ++i) {
    expect += static_cast<double>(input.data()[i]) * weight.data()[i];
  }
  EXPECT_NEAR(out.at(0, 0, 0, 0, 0), expect, 1e-5);
}

TEST(Conv3d, BackwardInputMatchesNumerical) {
  Tensor input = random_tensor({1, 1, 4, 4, 4}, 12);
  const Tensor weight = random_tensor({2, 1, 3, 3, 3}, 13);
  const Conv3dParams p{1, 1};
  auto f = [&]() {
    return static_cast<double>(conv3d(input, weight, Tensor(), p).sum());
  };
  const Tensor num = autograd::numerical_gradient(f, input, 1e-2);
  const Tensor gout = Tensor::ones({1, 2, 4, 4, 4});
  const Tensor ana = conv3d_backward_input(gout, weight, 4, 4, 4, p);
  EXPECT_LT(autograd::gradient_error(ana, num), 2e-2);
}

TEST(Conv3d, BackwardWeightMatchesNumerical) {
  const Tensor input = random_tensor({1, 2, 3, 3, 3}, 14);
  Tensor weight = random_tensor({1, 2, 2, 2, 2}, 15);
  const Conv3dParams p{1, 0};
  auto f = [&]() {
    return static_cast<double>(conv3d(input, weight, Tensor(), p).sum());
  };
  const Tensor num = autograd::numerical_gradient(f, weight, 1e-2);
  const Tensor gout = Tensor::ones({1, 1, 2, 2, 2});
  const Tensor ana = conv3d_backward_weight(gout, input, 2, p);
  EXPECT_LT(autograd::gradient_error(ana, num), 2e-2);
}

// -------------------------------------------------------------- linear
TEST(Linear, MatchesManualMatmul) {
  const Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor w = Tensor::from_vector({2, 3}, {1, 0, 0, 0, 1, 0});
  const Tensor b = Tensor::from_vector({2}, {10, 20});
  const Tensor y = linear(x, w, b);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 14.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 25.0f);
}

TEST(Linear, BackwardMatchesNumerical) {
  Tensor x = random_tensor({3, 4}, 16);
  Tensor w = random_tensor({2, 4}, 17);
  auto f = [&]() {
    return static_cast<double>(linear(x, w, Tensor()).sum());
  };
  const Tensor num_x = autograd::numerical_gradient(f, x, 1e-2);
  const Tensor num_w = autograd::numerical_gradient(f, w, 1e-2);
  const Tensor gout = Tensor::ones({3, 2});
  EXPECT_LT(autograd::gradient_error(linear_backward_input(gout, w), num_x),
            2e-2);
  EXPECT_LT(autograd::gradient_error(linear_backward_weight(gout, x), num_w),
            2e-2);
}

}  // namespace
}  // namespace ccovid::ops
