// Deconvolution kernels: the scatter baseline (Fig. 9a) and the
// refactored gather (Fig. 9b) must be numerically identical across a
// parameterized sweep — the optimization study's correctness invariant —
// and the transposed convolution must be the exact adjoint of the
// forward convolution.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "core/random.h"
#include "ops/conv2d.h"
#include "ops/deconv2d.h"

namespace ccovid::ops {
namespace {

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 1.0);
  return t;
}

struct DeconvCase {
  index_t n, cin, h, w, cout, k, stride, pad;
};

class Deconv2dSweep : public ::testing::TestWithParam<DeconvCase> {};

TEST_P(Deconv2dSweep, ScatterGatherAndUnrolledAgree) {
  const DeconvCase c = GetParam();
  const Tensor input = random_tensor({c.n, c.cin, c.h, c.w}, 21);
  const Tensor weight = random_tensor({c.cin, c.cout, c.k, c.k}, 22);
  const Tensor bias = random_tensor({c.cout}, 23);
  const Deconv2dParams p{c.stride, c.pad};

  const Tensor ref = deconv2d_reference(input, weight, bias, p);
  for (const KernelOptions& opt :
       {KernelOptions::baseline(),             // scatter, no PF
        KernelOptions{false, true, false},     // scatter + PF
        KernelOptions::refactored(),           // gather
        KernelOptions::all()}) {               // gather + unrolled
    const Tensor out = deconv2d(input, weight, bias, p, opt);
    EXPECT_TRUE(allclose(out, ref, 1e-4f, 1e-4f))
        << "variant " << opt.str() << " diff " << max_abs_diff(out, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Deconv2dSweep,
    ::testing::Values(
        DeconvCase{1, 1, 6, 6, 1, 1, 1, 0},   // pointwise
        DeconvCase{1, 2, 8, 8, 3, 5, 1, 2},   // DDnet 5x5 stride-1 same
        DeconvCase{1, 1, 8, 8, 2, 3, 1, 1},   // 3x3 same (unrolled path)
        DeconvCase{1, 2, 5, 5, 2, 4, 2, 1},   // stride-2 upsampling
        DeconvCase{2, 3, 4, 6, 2, 3, 2, 0},   // batch, rectangular
        DeconvCase{1, 1, 3, 3, 1, 5, 3, 2},   // stride 3 (division path)
        DeconvCase{1, 4, 7, 7, 4, 5, 1, 2})); // wider channels

TEST(Deconv2d, OutputExtentFormula) {
  EXPECT_EQ(deconv_out_extent(8, 5, 1, 2), 8);   // DDnet "same"
  EXPECT_EQ(deconv_out_extent(4, 4, 2, 1), 8);   // classic 2x upsample
  EXPECT_EQ(deconv_out_extent(3, 3, 1, 0), 5);   // full
}

TEST(Deconv2d, StrideOneSameSizePreservedForDDnetShapes) {
  // DDnet's deconvolution layers keep spatial size (Table 2).
  const Tensor input = random_tensor({1, 16, 16, 16}, 24);
  const Tensor weight = random_tensor({16, 32, 5, 5}, 25);
  const Tensor out =
      deconv2d(input, weight, Tensor(), Deconv2dParams::same(5));
  EXPECT_EQ(out.dim(1), 32);
  EXPECT_EQ(out.dim(2), 16);
  EXPECT_EQ(out.dim(3), 16);
}

TEST(Deconv2d, AdjointOfConvolution) {
  // <conv(x), y> == <x, deconv(y)> with shared weights: transposed
  // convolution is the exact adjoint of convolution.
  const index_t k = 3, stride = 2, pad = 1;
  const Tensor x = random_tensor({1, 2, 7, 7}, 26);
  // conv weight (Cout=3, Cin=2, k, k); deconv uses (Cin=3 -> Cout=2).
  const Tensor w_conv = random_tensor({3, 2, k, k}, 27);
  const Tensor cx =
      conv2d(x, w_conv, Tensor(), Conv2dParams{stride, pad});
  const Tensor y = random_tensor(cx.shape(), 28);

  // Re-layout conv weight (Cout,Cin,k,k) -> deconv weight (Cin',Cout',k,k)
  // where deconv maps y (3 ch) -> x-space (2 ch): element w[co][ci] goes
  // to wd[co][ci] in ConvTranspose layout (in=3, out=2).
  Tensor w_deconv({3, 2, k, k});
  for (index_t a = 0; a < 3; ++a) {
    for (index_t b = 0; b < 2; ++b) {
      for (index_t i = 0; i < k; ++i) {
        for (index_t j = 0; j < k; ++j) {
          w_deconv.at(a, b, i, j) = w_conv.at(a, b, i, j);
        }
      }
    }
  }
  const Tensor dy =
      deconv2d(y, w_deconv, Tensor(), Deconv2dParams{stride, pad});
  ASSERT_EQ(dy.shape(), x.shape());

  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < cx.numel(); ++i) {
    lhs += static_cast<double>(cx.data()[i]) * y.data()[i];
  }
  for (index_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * dy.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

TEST(Deconv2d, BiasIsAdded) {
  const Tensor input = Tensor::zeros({1, 1, 4, 4});
  Tensor weight({1, 2, 3, 3});
  const Tensor bias = Tensor::from_vector({2}, {0.25f, -1.0f});
  const Tensor out =
      deconv2d(input, weight, bias, Deconv2dParams::same(3));
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 0.25f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1, 1), -1.0f);
}

TEST(Deconv2d, ChannelMismatchThrows) {
  const Tensor input = Tensor::zeros({1, 2, 4, 4});
  const Tensor weight = Tensor::zeros({3, 1, 3, 3});
  EXPECT_THROW(deconv2d(input, weight, Tensor(), Deconv2dParams::same(3)),
               std::invalid_argument);
}

TEST(Deconv2d, BackwardInputMatchesNumerical) {
  Tensor input = random_tensor({1, 2, 5, 5}, 29);
  const Tensor weight = random_tensor({2, 2, 3, 3}, 30);
  const Deconv2dParams p{1, 1};
  auto f = [&]() {
    return static_cast<double>(
        deconv2d_reference(input, weight, Tensor(), p).sum());
  };
  const Tensor num = autograd::numerical_gradient(f, input, 1e-2);
  const Tensor gout = Tensor::ones({1, 2, 5, 5});
  const Tensor ana = deconv2d_backward_input(gout, weight, p);
  EXPECT_LT(autograd::gradient_error(ana, num), 2e-2);
}

TEST(Deconv2d, BackwardWeightMatchesNumerical) {
  const Tensor input = random_tensor({1, 2, 4, 4}, 31);
  Tensor weight = random_tensor({2, 3, 3, 3}, 32);
  const Deconv2dParams p{2, 1};
  auto f = [&]() {
    return static_cast<double>(
        deconv2d_reference(input, weight, Tensor(), p).sum());
  };
  const Tensor num = autograd::numerical_gradient(f, weight, 1e-2);
  const index_t oe = deconv_out_extent(4, 3, 2, 1);
  const Tensor gout = Tensor::ones({1, 3, oe, oe});
  const Tensor ana = deconv2d_backward_weight(gout, input, 3, p);
  EXPECT_LT(autograd::gradient_error(ana, num), 2e-2);
}

TEST(Deconv2d, BackwardBiasSumsGradient) {
  Tensor gout({1, 2, 3, 3});
  gout.fill(1.0f);
  const Tensor gb = deconv2d_backward_bias(gout);
  EXPECT_FLOAT_EQ(gb.at(0), 9.0f);
  EXPECT_FLOAT_EQ(gb.at(1), 9.0f);
}

}  // namespace
}  // namespace ccovid::ops
