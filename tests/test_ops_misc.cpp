// Pooling, un-pooling, batch norm, activations, concat/split, pool3d.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "core/random.h"
#include "ops/ops.h"

namespace ccovid::ops {
namespace {

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 1.0);
  return t;
}

// ------------------------------------------------------------- pool2d
TEST(MaxPool2d, DDnetGeometryHalvesExtent) {
  const Tensor input = random_tensor({1, 16, 32, 32}, 1);
  const auto res = max_pool2d(input, Pool2dParams{3, 2, 1});
  EXPECT_EQ(res.output.dim(2), 16);
  EXPECT_EQ(res.output.dim(3), 16);
}

TEST(MaxPool2d, PicksWindowMaximum) {
  const Tensor input = Tensor::from_vector(
      {1, 1, 4, 4},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const auto res = max_pool2d(input, Pool2dParams{2, 2, 0});
  EXPECT_FLOAT_EQ(res.output.at(0, 0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(res.output.at(0, 0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(res.output.at(0, 0, 1, 1), 16.0f);
}

TEST(MaxPool2d, ArgmaxRoutesGradient) {
  const Tensor input = Tensor::from_vector({1, 1, 2, 2}, {1, 9, 3, 4});
  const auto res = max_pool2d(input, Pool2dParams{2, 2, 0});
  Tensor gout({1, 1, 1, 1});
  gout.fill(5.0f);
  const Tensor gin = max_pool2d_backward(gout, res.argmax, 2, 2);
  EXPECT_FLOAT_EQ(gin.at(0, 0, 0, 1), 5.0f);  // position of the 9
  EXPECT_FLOAT_EQ(gin.at(0, 0, 0, 0), 0.0f);
}

TEST(MaxPool2d, OverlappingWindowsAccumulateGradient) {
  // ksize 3 stride 2: center pixel can win several windows.
  Tensor input = Tensor::zeros({1, 1, 5, 5});
  input.at(0, 0, 2, 2) = 100.0f;  // wins all four windows
  const auto res = max_pool2d(input, Pool2dParams{3, 2, 0});
  Tensor gout(res.output.shape());
  gout.fill(1.0f);
  const Tensor gin = max_pool2d_backward(gout, res.argmax, 5, 5);
  EXPECT_FLOAT_EQ(gin.at(0, 0, 2, 2), 4.0f);
}

TEST(AvgPool2d, UniformImageUnchangedInterior) {
  const Tensor input = Tensor::full({1, 1, 8, 8}, 2.0f);
  const Tensor out = avg_pool2d(input, Pool2dParams{2, 2, 0});
  EXPECT_FLOAT_EQ(out.at(0, 0, 2, 2), 2.0f);
}

TEST(AvgPool2d, BackwardIsUniformRedistribution) {
  Tensor gout({1, 1, 1, 1});
  gout.fill(4.0f);
  const Tensor gin = avg_pool2d_backward(gout, Pool2dParams{2, 2, 0}, 2, 2);
  for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gin.data()[i], 1.0f);
}

// ------------------------------------------------------------ unpool2d
TEST(Unpool2d, DoublesExtent) {
  const Tensor input = random_tensor({1, 3, 5, 7}, 2);
  const Tensor out = unpool2d_bilinear(input, 2);
  EXPECT_EQ(out.dim(2), 10);
  EXPECT_EQ(out.dim(3), 14);
}

TEST(Unpool2d, ConstantImageStaysConstant) {
  const Tensor input = Tensor::full({1, 1, 4, 4}, 3.25f);
  const Tensor out = unpool2d_bilinear(input, 2);
  for (index_t i = 0; i < out.numel(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], 3.25f);
  }
}

TEST(Unpool2d, PreservesMeanApproximately) {
  const Tensor input = random_tensor({1, 1, 8, 8}, 3);
  const Tensor out = unpool2d_bilinear(input, 2);
  EXPECT_NEAR(out.mean(), input.mean(), 0.05);
}

TEST(Unpool2d, BackwardIsExactAdjoint) {
  // <up(x), y> == <x, up^T(y)> — required for correct gradients.
  const Tensor x = random_tensor({1, 2, 4, 4}, 4);
  const Tensor up = unpool2d_bilinear(x, 2);
  const Tensor y = random_tensor(up.shape(), 5);
  const Tensor xt = unpool2d_bilinear_backward(y, 2, 4, 4);
  double lhs = 0.0, rhs = 0.0;
  for (index_t i = 0; i < up.numel(); ++i) {
    lhs += static_cast<double>(up.data()[i]) * y.data()[i];
  }
  for (index_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.data()[i]) * xt.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ----------------------------------------------------------- batchnorm
TEST(BatchNorm, NormalizesToZeroMeanUnitVar) {
  Rng rng(6);
  Tensor input({2, 3, 8, 8});
  rng.fill_gaussian(input, 5.0, 3.0);
  const Tensor gamma = Tensor::ones({3});
  const Tensor beta = Tensor::zeros({3});
  BatchNormStats stats;
  const Tensor out = batch_norm_train(input, gamma, beta, stats);
  // Per-channel statistics of the output.
  for (index_t c = 0; c < 3; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    index_t count = 0;
    for (index_t n = 0; n < 2; ++n) {
      for (index_t i = 0; i < 64; ++i) {
        const real_t v = out.data()[(n * 3 + c) * 64 + i];
        sum += v;
        sum_sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm, AffineApplied) {
  Tensor input = Tensor::zeros({1, 1, 2, 2});
  input.at(0, 0, 0, 0) = 1.0f;
  input.at(0, 0, 1, 1) = -1.0f;
  const Tensor gamma = Tensor::from_vector({1}, {2.0f});
  const Tensor beta = Tensor::from_vector({1}, {10.0f});
  BatchNormStats stats;
  const Tensor out = batch_norm_train(input, gamma, beta, stats);
  EXPECT_NEAR(out.mean(), 10.0f, 1e-4);
}

TEST(BatchNorm, InferMatchesTrainWhenStatsEqualBatch) {
  const Tensor input = random_tensor({2, 2, 4, 4}, 7);
  const Tensor gamma = Tensor::from_vector({2}, {1.5f, 0.5f});
  const Tensor beta = Tensor::from_vector({2}, {0.1f, -0.2f});
  BatchNormStats stats;
  const Tensor train_out = batch_norm_train(input, gamma, beta, stats);
  const Tensor infer_out =
      batch_norm_infer(input, gamma, beta, stats.mean, stats.var);
  EXPECT_TRUE(allclose(infer_out, train_out, 1e-4f, 1e-4f));
}

TEST(BatchNorm, BackwardMatchesNumerical) {
  Tensor input = random_tensor({2, 2, 3, 3}, 8);
  Tensor gamma = Tensor::from_vector({2}, {1.2f, 0.7f});
  const Tensor beta = Tensor::from_vector({2}, {0.0f, 0.3f});
  auto f = [&]() {
    BatchNormStats s;
    return static_cast<double>(
        batch_norm_train(input, gamma, beta, s).mul(
            Tensor::full({2, 2, 3, 3}, 1.0f)).sum());
  };
  const Tensor num_x = autograd::numerical_gradient(f, input, 1e-3);
  const Tensor num_g = autograd::numerical_gradient(f, gamma, 1e-3);
  BatchNormStats stats;
  batch_norm_train(input, gamma, beta, stats);
  const Tensor gout = Tensor::ones({2, 2, 3, 3});
  const BatchNormGrads grads =
      batch_norm_backward(gout, input, gamma, stats);
  EXPECT_LT(autograd::gradient_error(grads.grad_input, num_x), 5e-2);
  EXPECT_LT(autograd::gradient_error(grads.grad_gamma, num_g), 5e-2);
}

TEST(BatchNorm, WorksOn3dVolumes) {
  const Tensor input = random_tensor({1, 2, 3, 4, 5}, 9);
  const Tensor gamma = Tensor::ones({2});
  const Tensor beta = Tensor::zeros({2});
  BatchNormStats stats;
  const Tensor out = batch_norm_train(input, gamma, beta, stats);
  EXPECT_EQ(out.shape(), input.shape());
  EXPECT_NEAR(out.mean(), 0.0, 1e-4);
}

// ---------------------------------------------------------- activations
TEST(Activations, ReluClampsNegatives) {
  const Tensor x = Tensor::from_vector({4}, {-2, -0.5, 0, 3});
  const Tensor y = relu(x.reshape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 3.0f);
}

TEST(Activations, LeakyReluSlope) {
  const Tensor x = Tensor::from_vector({2}, {-10.0f, 10.0f});
  const Tensor y = leaky_relu(x, 0.01f);
  EXPECT_FLOAT_EQ(y.data()[0], -0.1f);
  EXPECT_FLOAT_EQ(y.data()[1], 10.0f);
}

TEST(Activations, SigmoidRangeAndStability) {
  const Tensor x = Tensor::from_vector({3}, {-100.0f, 0.0f, 100.0f});
  const Tensor y = sigmoid(x);
  EXPECT_NEAR(y.data()[0], 0.0f, 1e-6);
  EXPECT_FLOAT_EQ(y.data()[1], 0.5f);
  EXPECT_NEAR(y.data()[2], 1.0f, 1e-6);
  for (index_t i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(y.data()[i]));
}

TEST(Activations, BackwardFormulas) {
  const Tensor x = Tensor::from_vector({2}, {-1.0f, 2.0f});
  const Tensor g = Tensor::from_vector({2}, {3.0f, 3.0f});
  const Tensor gr = relu_backward(g, x);
  EXPECT_FLOAT_EQ(gr.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(gr.data()[1], 3.0f);
  const Tensor gl = leaky_relu_backward(g, x, 0.1f);
  EXPECT_FLOAT_EQ(gl.data()[0], 0.3f);
  const Tensor y = sigmoid(x);
  const Tensor gs = sigmoid_backward(g, y);
  EXPECT_NEAR(gs.data()[1], 3.0 * y.data()[1] * (1.0 - y.data()[1]), 1e-5);
}

// --------------------------------------------------------------- concat
TEST(Concat, ChannelsStackInOrder) {
  Tensor a = Tensor::full({1, 1, 2, 2}, 1.0f);
  Tensor b = Tensor::full({1, 2, 2, 2}, 2.0f);
  const Tensor c = concat_channels({a, b});
  EXPECT_EQ(c.dim(1), 3);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.at(0, 2, 1, 1), 2.0f);
}

TEST(Concat, SplitIsInverse) {
  const Tensor a = random_tensor({2, 2, 3, 3}, 10);
  const Tensor b = random_tensor({2, 5, 3, 3}, 11);
  const Tensor c = concat_channels({a, b});
  const auto parts = split_channels(c, {2, 5});
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_TRUE(allclose(parts[0], a));
  EXPECT_TRUE(allclose(parts[1], b));
}

TEST(Concat, MismatchedSpatialThrows) {
  const Tensor a = Tensor::zeros({1, 1, 2, 2});
  const Tensor b = Tensor::zeros({1, 1, 3, 3});
  EXPECT_THROW(concat_channels({a, b}), std::invalid_argument);
}

TEST(Concat, WorksFor3dVolumes) {
  const Tensor a = random_tensor({1, 2, 2, 3, 3}, 12);
  const Tensor b = random_tensor({1, 3, 2, 3, 3}, 13);
  const Tensor c = concat_channels({a, b});
  EXPECT_EQ(c.dim(1), 5);
  const auto parts = split_channels(c, {2, 3});
  EXPECT_TRUE(allclose(parts[1], b));
}

// --------------------------------------------------------------- pool3d
TEST(MaxPool3d, HalvesAllExtents) {
  const Tensor input = random_tensor({1, 2, 4, 6, 8}, 14);
  const auto res = max_pool3d(input, Pool3dParams{2, 2, 0});
  EXPECT_EQ(res.output.dim(2), 2);
  EXPECT_EQ(res.output.dim(3), 3);
  EXPECT_EQ(res.output.dim(4), 4);
}

TEST(MaxPool3d, BackwardRoutesToArgmax) {
  Tensor input = Tensor::zeros({1, 1, 2, 2, 2});
  input.at(0, 0, 1, 0, 1) = 42.0f;
  const auto res = max_pool3d(input, Pool3dParams{2, 2, 0});
  Tensor gout({1, 1, 1, 1, 1});
  gout.fill(1.0f);
  const Tensor gin = max_pool3d_backward(gout, res.argmax, 2, 2, 2);
  EXPECT_FLOAT_EQ(gin.at(0, 0, 1, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(gin.sum(), 1.0f);
}

TEST(AvgPool3d, UniformVolumeInterior) {
  const Tensor input = Tensor::full({1, 1, 4, 4, 4}, 7.0f);
  const Tensor out = avg_pool3d(input, Pool3dParams{2, 2, 0});
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1, 1), 7.0f);
}

TEST(GlobalAvgPool3d, ComputesMeanPerChannel) {
  Tensor input({1, 2, 2, 2, 2});
  for (index_t i = 0; i < 8; ++i) input.data()[i] = 1.0f;        // ch 0
  for (index_t i = 8; i < 16; ++i) input.data()[i] = 3.0f;       // ch 1
  const Tensor out = global_avg_pool3d(input);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 3.0f);
}

TEST(GlobalAvgPool3d, BackwardSpreadsUniformly) {
  Tensor gout({1, 1});
  gout.fill(8.0f);
  const Tensor gin = global_avg_pool3d_backward(gout, 2, 2, 2);
  for (index_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(gin.data()[i], 1.0f);
}

}  // namespace
}  // namespace ccovid::ops
