// TaskEngine / parallel_for unit suite: scheduling semantics the rest
// of the library depends on — coverage at any width, width-independent
// chunk boundaries, exception propagation, nested submission, and the
// per-thread cap that the serving runtime uses as its request limit.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "core/task_engine.h"

namespace ccovid {
namespace {

// Restores the process-global width on scope exit so suites don't leak
// configuration into each other.
struct WidthGuard {
  explicit WidthGuard(int n) { set_num_threads(n); }
  ~WidthGuard() { set_num_threads(0); }
};

TEST(Parallel, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](index_t) { calls.fetch_add(1); }, 1);
  parallel_for(7, 3, [&](index_t) { calls.fetch_add(1); }, 1);
  parallel_for_blocked(2, 2, [&](index_t, index_t) { calls.fetch_add(1); },
                       1);
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, CoversEveryIndexAtWidth8) {
  WidthGuard width(8);
  constexpr index_t kN = 10 * 1000 + 7;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(0, kN, [&](index_t i) { hits[i].fetch_add(1); },
               /*grain=*/64);
  for (index_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, BlockedPartitionIsWidthIndependent) {
  // The determinism contract: chunk boundaries are a pure function of
  // (range, grain). Collect them at width 1 and width 8 and compare.
  const auto partition = [](int width) {
    WidthGuard guard(width);
    std::mutex mu;
    std::set<std::pair<index_t, index_t>> blocks;
    parallel_for_blocked(
        0, 100000,
        [&](index_t lo, index_t hi) {
          std::lock_guard<std::mutex> lk(mu);
          blocks.emplace(lo, hi);
        },
        /*grain=*/512);
    return blocks;
  };
  const auto at1 = partition(1);
  const auto at8 = partition(8);
  // Width 1 runs the whole range as one inline block; width 8 must tile
  // the identical index space exactly once.
  index_t covered = 0;
  index_t expected_next = 0;
  for (const auto& [lo, hi] : at8) {
    EXPECT_EQ(lo, expected_next);
    expected_next = hi;
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100000);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(*at1.begin(), (std::pair<index_t, index_t>{0, 100000}));
}

TEST(Parallel, SerialCutoffStaysInline) {
  WidthGuard width(8);
  const auto caller = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> ids;
  parallel_for(
      0, 100,
      [&](index_t) {
        std::lock_guard<std::mutex> lk(mu);
        ids.insert(std::this_thread::get_id());
      },
      /*grain=*/1024);  // n < grain: must not reach the engine
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  WidthGuard width(4);
  EXPECT_THROW(
      parallel_for(
          0, 1000,
          [&](index_t i) {
            if (i == 613) throw std::runtime_error("chunk failure");
          },
          /*grain=*/8),
      std::runtime_error);
  // The engine must stay healthy after a failed loop.
  std::atomic<index_t> sum{0};
  parallel_for(0, 1000, [&](index_t i) { sum.fetch_add(i); },
               /*grain=*/8);
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(Parallel, ExceptionInsideBlockedBody) {
  WidthGuard width(4);
  EXPECT_THROW(parallel_for_blocked(
                   0, 100000,
                   [&](index_t lo, index_t) {
                     if (lo == 0) throw std::logic_error("bad block");
                   },
                   /*grain=*/512),
               std::logic_error);
}

TEST(Parallel, NestedParallelForInsideBody) {
  WidthGuard width(4);
  std::atomic<index_t> total{0};
  parallel_for(
      0, 8,
      [&](index_t) {
        parallel_for(0, 1000, [&](index_t j) { total.fetch_add(j); },
                     /*grain=*/64);
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 8 * (1000 * 999) / 2);
}

TEST(TaskEngine, SubmitRunsOnWorkerThread) {
  auto& engine = TaskEngine::instance();
  std::atomic<bool> on_worker{false};
  std::atomic<bool> ran{false};
  engine.submit([&] {
    on_worker.store(TaskEngine::on_worker_thread());
    ran.store(true);
  });
  // Poll rather than wait_tasks_idle(): the waiter helps drain the
  // queue, so waiting immediately could run the task on this (master)
  // thread and defeat the point of the assertion.
  for (int i = 0; i < 2000 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.wait_tasks_idle();
  ASSERT_TRUE(ran.load());
  EXPECT_TRUE(on_worker.load());
  EXPECT_FALSE(TaskEngine::on_worker_thread());
}

TEST(TaskEngine, NestedSubmitFromWorker) {
  auto& engine = TaskEngine::instance();
  std::atomic<int> stage{0};
  engine.submit([&] {
    stage.fetch_add(1);
    engine.submit([&] {
      stage.fetch_add(10);
      // Grandchild: tasks may keep spawning tasks.
      engine.submit([&] { stage.fetch_add(100); });
    });
  });
  engine.wait_tasks_idle();
  EXPECT_EQ(stage.load(), 111);
}

TEST(TaskEngine, ParallelLoopInsideSubmittedTask) {
  auto& engine = TaskEngine::instance();
  WidthGuard width(4);
  std::atomic<index_t> sum{0};
  engine.submit([&] {
    parallel_for(0, 5000, [&](index_t i) { sum.fetch_add(i); },
                 /*grain=*/64);
  });
  engine.wait_tasks_idle();
  EXPECT_EQ(sum.load(), 5000 * 4999 / 2);
}

TEST(TaskEngine, WorkersGrowToRequestedWidth) {
  set_num_threads(4);
  EXPECT_GE(TaskEngine::instance().worker_count(), 3);
  set_num_threads(0);
}

// Steal-fairness smoke test: with sleeping chunk bodies (so the master
// cedes the CPU mid-job) at least one chunk must be claimed by a thread
// other than the master. Sleeps keep this robust on single-core hosts.
TEST(TaskEngine, StealFairnessSmoke) {
  WidthGuard width(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int attempt = 0; attempt < 5 && ids.size() < 2; ++attempt) {
    parallel_for(
        0, 32,
        [&](index_t) {
          {
            std::lock_guard<std::mutex> lk(mu);
            ids.insert(std::this_thread::get_id());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        },
        /*grain=*/1);
  }
  EXPECT_GE(ids.size(), 2u)
      << "no worker ever stole a chunk across 5 sleeping loops";
}

TEST(TaskEngine, ParallelPinCapsLanesNotResults) {
  WidthGuard width(8);
  std::vector<int> out(4096, 0);
  const auto run = [&] {
    parallel_for(0, 4096, [&](index_t i) { out[i] = static_cast<int>(i); },
                 /*grain=*/64);
  };
  run();
  const std::vector<int> uncapped = out;
  std::fill(out.begin(), out.end(), 0);
  {
    ParallelPin pin(1);  // capped: runs serially on this thread
    EXPECT_EQ(thread_num_threads(), 1);
    run();
  }
  EXPECT_EQ(thread_num_threads(), 0);
  EXPECT_EQ(out, uncapped);
}

TEST(TaskEngine, ParallelPinNestsAndRestores) {
  ParallelPin outer(3);
  EXPECT_EQ(num_threads(), 3);
  {
    ParallelPin inner(2);
    EXPECT_EQ(num_threads(), 2);
  }
  EXPECT_EQ(num_threads(), 3);
}

}  // namespace
}  // namespace ccovid
