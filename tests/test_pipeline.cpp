// Pipeline stages: Enhancement AI training improves image quality
// (Table 8's direction), Segmentation AI learns lung masks, and the
// framework's diagnose path produces sane outputs.
#include <gtest/gtest.h>

#include "nn/layers.h"
#include "pipeline/framework.h"

namespace ccovid::pipeline {
namespace {

data::EnhancementDataset tiny_enhancement_dataset(Rng& rng) {
  data::EnhancementDatasetConfig cfg;
  cfg.image_px = 32;
  cfg.num_train = 6;
  cfg.num_val = 2;
  cfg.num_test = 2;
  cfg.lowdose.photons_per_ray = 3e4;  // visible noise at tiny scale
  return data::make_enhancement_dataset(cfg, rng);
}

nn::DDnetConfig tiny_ddnet_cfg() {
  nn::DDnetConfig cfg = nn::DDnetConfig::tiny();
  return cfg;
}

TEST(EnhancementAI, TrainingReducesLoss) {
  nn::seed_init_rng(1);
  Rng rng(2);
  data::EnhancementDataset ds = tiny_enhancement_dataset(rng);
  EnhancementAI ai(tiny_ddnet_cfg());
  EnhancementTrainConfig cfg;
  cfg.epochs = 6;
  cfg.lr = 2e-3;
  cfg.msssim_scales = 1;
  const auto logs = ai.train(ds, cfg, rng);
  ASSERT_EQ(logs.size(), 6u);
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  for (const auto& log : logs) {
    EXPECT_TRUE(std::isfinite(log.train_loss));
    EXPECT_TRUE(std::isfinite(log.val_loss));
  }
}

TEST(EnhancementAI, EnhancementImprovesMsSsim) {
  // Table 8's key direction: MS-SSIM(Y, f(X)) > MS-SSIM(Y, X) and
  // MSE(Y, f(X)) < MSE(Y, X) after training.
  nn::seed_init_rng(3);
  Rng rng(4);
  data::EnhancementDataset ds = tiny_enhancement_dataset(rng);
  EnhancementAI ai(tiny_ddnet_cfg());
  EnhancementTrainConfig cfg;
  cfg.epochs = 10;
  cfg.lr = 2e-3;
  cfg.msssim_scales = 1;
  ai.train(ds, cfg, rng);
  const EnhancementEval eval = ai.evaluate(ds.test);
  EXPECT_LT(eval.mse_enhanced, eval.mse_low);
  EXPECT_GT(eval.msssim_enhanced, eval.msssim_low);
}

TEST(EnhancementAI, EnhanceVolumeSliceWise) {
  nn::seed_init_rng(5);
  EnhancementAI ai(tiny_ddnet_cfg());
  Rng rng(6);
  Tensor vol({3, 16, 16});
  rng.fill_uniform(vol, 0.0, 1.0);
  const Tensor out = ai.enhance_volume(vol);
  EXPECT_EQ(out.shape(), vol.shape());
}

TEST(SegmentationAI, TrainingImprovesDice) {
  nn::seed_init_rng(7);
  Rng rng(8);
  data::ClassificationDatasetConfig dcfg;
  dcfg.depth = 4;
  dcfg.image_px = 32;
  dcfg.num_train = 8;
  dcfg.num_test = 4;
  const data::ClassificationDataset ds =
      data::make_classification_dataset(dcfg, rng);

  SegmentationAI ai;
  const SegmentationEval before = ai.evaluate(ds.test);
  SegmentationTrainConfig cfg;
  cfg.epochs = 10;
  cfg.lr = 5e-3;
  const auto losses = ai.train(ds.train, cfg, rng);
  EXPECT_LT(losses.back(), losses.front());
  const SegmentationEval after = ai.evaluate(ds.test);
  EXPECT_GT(after.dice, before.dice);
  EXPECT_GT(after.pixel_accuracy, 0.7);
}

TEST(SegmentationAI, DiceIdentities) {
  Tensor a = Tensor::ones({2, 4, 4});
  Tensor b = Tensor::zeros({2, 4, 4});
  EXPECT_DOUBLE_EQ(SegmentationAI::dice(a, a), 1.0);
  EXPECT_DOUBLE_EQ(SegmentationAI::dice(a, b), 0.0);
  EXPECT_DOUBLE_EQ(SegmentationAI::dice(b, b), 1.0);  // empty-empty
}

TEST(ClassificationAI, LearnsSeparableVolumes) {
  nn::seed_init_rng(9);
  Rng rng(10);
  // Trivially separable synthetic task: positives have a bright block.
  std::vector<Tensor> volumes;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    Tensor v({4, 16, 16});
    rng.fill_uniform(v, 0.0, 0.3);
    const int label = i % 2;
    if (label == 1) {
      for (index_t z = 1; z < 3; ++z) {
        for (index_t y = 4; y < 12; ++y) {
          for (index_t x = 4; x < 12; ++x) v.at(z, y, x) += 0.6f;
        }
      }
    }
    volumes.push_back(std::move(v));
    labels.push_back(label);
  }
  ClassificationAI ai;
  ClassificationTrainConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 3e-3;
  cfg.augment = false;
  const auto logs = ai.train(volumes, labels, cfg, rng);
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  // Training-set AUC should be well above chance.
  const auto scores = ai.score_all(volumes, labels);
  EXPECT_GT(metrics::auc(scores.probabilities, scores.labels), 0.8);
}

TEST(ClassificationAI, PaperPresetMatchesSection331) {
  const auto cfg = ClassificationTrainConfig::paper();
  EXPECT_EQ(cfg.epochs, 100);
  EXPECT_DOUBLE_EQ(cfg.lr, 1e-6);
  EXPECT_DOUBLE_EQ(cfg.augment_cfg.noise_prob, 0.75);
  EXPECT_DOUBLE_EQ(cfg.augment_cfg.noise_variance, 0.1);
  EXPECT_DOUBLE_EQ(cfg.augment_cfg.contrast_prob, 0.5);
  EXPECT_DOUBLE_EQ(cfg.augment_cfg.intensity_magnitude, 0.1);
}

TEST(Framework, DiagnoseProducesProbability) {
  nn::seed_init_rng(11);
  Rng rng(12);
  auto enh = std::make_shared<EnhancementAI>(tiny_ddnet_cfg());
  auto seg = std::make_shared<SegmentationAI>();
  auto cls = std::make_shared<ClassificationAI>();
  enh->network().set_training(false);
  ComputeCovid19Pipeline pipeline(enh, seg, cls);

  const data::PhantomVolume vol = data::make_volume(4, 16, true, rng);
  const Diagnosis with = pipeline.diagnose(vol.hu, true);
  const Diagnosis without = pipeline.diagnose(vol.hu, false);
  EXPECT_GE(with.probability, 0.0);
  EXPECT_LE(with.probability, 1.0);
  EXPECT_GE(without.probability, 0.0);
  EXPECT_LE(without.probability, 1.0);
  EXPECT_EQ(with.positive, with.probability >= with.threshold);
}

TEST(Framework, ScoreVolumesMatchesDiagnose) {
  nn::seed_init_rng(13);
  Rng rng(14);
  auto enh = std::make_shared<EnhancementAI>(tiny_ddnet_cfg());
  auto seg = std::make_shared<SegmentationAI>();
  auto cls = std::make_shared<ClassificationAI>();
  enh->network().set_training(false);
  ComputeCovid19Pipeline pipeline(enh, seg, cls);

  std::vector<Tensor> volumes;
  volumes.push_back(data::make_volume(4, 16, false, rng).hu);
  volumes.push_back(data::make_volume(4, 16, true, rng).hu);
  const auto scores = pipeline.score_volumes(volumes, false);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0],
              pipeline.diagnose(volumes[0], false).probability, 1e-6);
}

TEST(Framework, RejectsNonVolumeInput) {
  nn::seed_init_rng(15);
  auto enh = std::make_shared<EnhancementAI>(tiny_ddnet_cfg());
  auto seg = std::make_shared<SegmentationAI>();
  auto cls = std::make_shared<ClassificationAI>();
  ComputeCovid19Pipeline pipeline(enh, seg, cls);
  Tensor slice({16, 16});
  EXPECT_THROW(pipeline.diagnose(slice, false), std::invalid_argument);
}

}  // namespace
}  // namespace ccovid::pipeline
