// Randomized property tests: algebraic invariants that must hold for
// arbitrary inputs — linearity of the convolution/projection operators,
// metric ranges, serialization round trips — swept over seeds with
// parameterized suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "autograd/losses.h"
#include "core/random.h"
#include "core/serialize.h"
#include "ct/fbp.h"
#include "ct/fft.h"
#include "data/phantom.h"
#include "ct/hu.h"
#include "ct/siddon.h"
#include "data/augment.h"
#include "metrics/image_quality.h"
#include "nn/ddnet.h"
#include "ops/ops.h"

namespace ccovid {
namespace {

Tensor random_tensor(Shape s, Rng& rng, double lo = -1.0, double hi = 1.0) {
  Tensor t(std::move(s));
  rng.fill_uniform(t, lo, hi);
  return t;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, Conv2dIsLinear) {
  Rng rng(GetParam());
  const Tensor x = random_tensor({1, 2, 7, 7}, rng);
  const Tensor y = random_tensor({1, 2, 7, 7}, rng);
  const Tensor w = random_tensor({3, 2, 3, 3}, rng);
  const real_t a = static_cast<real_t>(rng.uniform(-2.0, 2.0));
  const ops::Conv2dParams p = ops::Conv2dParams::same(3);

  // conv(a*x + y) == a*conv(x) + conv(y)  (no bias).
  Tensor ax_y = x.clone();
  ax_y.mul_(a);
  ax_y.add_(y);
  const Tensor lhs = ops::conv2d(ax_y, w, Tensor(), p);
  Tensor rhs = ops::conv2d(x, w, Tensor(), p);
  rhs.mul_(a);
  rhs.add_(ops::conv2d(y, w, Tensor(), p));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-3f);
}

TEST_P(SeedSweep, Deconv2dIsLinear) {
  Rng rng(GetParam() + 100);
  const Tensor x = random_tensor({1, 2, 6, 6}, rng);
  const Tensor y = random_tensor({1, 2, 6, 6}, rng);
  const Tensor w = random_tensor({2, 2, 3, 3}, rng);
  const ops::Deconv2dParams p = ops::Deconv2dParams::same(3);
  const Tensor lhs = ops::deconv2d(x.add(y), w, Tensor(), p);
  const Tensor rhs =
      ops::deconv2d(x, w, Tensor(), p).add(ops::deconv2d(y, w, Tensor(), p));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-3f);
}

TEST_P(SeedSweep, ForwardProjectionIsLinearAndPositive) {
  Rng rng(GetParam() + 200);
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  const Tensor x = random_tensor({16, 16}, rng, 0.0, 0.05);
  const Tensor y = random_tensor({16, 16}, rng, 0.0, 0.05);
  const Tensor sx = ct::forward_project(x, g);
  const Tensor sy = ct::forward_project(y, g);
  const Tensor sxy = ct::forward_project(x.add(y), g);
  EXPECT_LT(max_abs_diff(sxy, sx.add(sy)), 1e-3f);
  EXPECT_GE(sx.min(), 0.0f);  // nonneg attenuation -> nonneg integrals
}

TEST_P(SeedSweep, FbpIsLinear) {
  Rng rng(GetParam() + 300);
  ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  const Tensor s1 = random_tensor({g.num_views, g.num_dets}, rng, 0.0, 1.0);
  const Tensor s2 = random_tensor({g.num_views, g.num_dets}, rng, 0.0, 1.0);
  const Tensor lhs = ct::fbp_reconstruct(s1.add(s2), g);
  const Tensor rhs =
      ct::fbp_reconstruct(s1, g).add(ct::fbp_reconstruct(s2, g));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-2f * std::max(1.0f, rhs.abs_max()));
}

TEST_P(SeedSweep, MsSsimBounded) {
  Rng rng(GetParam() + 400);
  const Tensor a = random_tensor({32, 32}, rng, 0.0, 1.0);
  const Tensor b = random_tensor({32, 32}, rng, 0.0, 1.0);
  const double v = metrics::ms_ssim(a, b);
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, 1.0 + 1e-9);
  EXPECT_NEAR(metrics::ms_ssim(a, a), 1.0, 1e-5);
}

TEST_P(SeedSweep, SigmoidComplement) {
  Rng rng(GetParam() + 500);
  const Tensor x = random_tensor({16}, rng, -8.0, 8.0);
  Tensor neg = x.clone();
  neg.mul_(-1.0f);
  const Tensor s = ops::sigmoid(x);
  const Tensor sn = ops::sigmoid(neg);
  for (index_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(s.data()[i] + sn.data()[i], 1.0f, 1e-5);
  }
}

TEST_P(SeedSweep, SerializationRoundTripRandomShapes) {
  Rng rng(GetParam() + 600);
  const index_t dims[3] = {rng.uniform_int(1, 7), rng.uniform_int(1, 7),
                           rng.uniform_int(1, 7)};
  Tensor t{Shape(dims, 3)};
  rng.fill_gaussian(t, 0.0, 10.0);
  const std::string path =
      "/tmp/ccovid_prop_" + std::to_string(GetParam()) + ".tnsr";
  save_tensor(path, t);
  EXPECT_TRUE(allclose(load_tensor(path), t, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST_P(SeedSweep, NormalizeHuIdempotentInRange) {
  Rng rng(GetParam() + 700);
  const Tensor hu = random_tensor({8, 8}, rng, -1024.0, 1023.0);
  const Tensor once = ct::normalize_hu(hu);
  const Tensor back = ct::denormalize_hu(once);
  EXPECT_LT(max_abs_diff(back, hu), 0.5f);
}

TEST_P(SeedSweep, PoolingNeverInventsValues) {
  Rng rng(GetParam() + 800);
  const Tensor x = random_tensor({1, 2, 9, 9}, rng);
  const auto res = ops::max_pool2d(x, {3, 2, 1});
  EXPECT_LE(res.output.max(), x.max());
  const Tensor avg = ops::avg_pool2d(x, {3, 2, 1});
  // Averages are bounded by extrema (padding counts as zero, so extend
  // the bound to include 0).
  EXPECT_LE(avg.max(), std::max(x.max(), 0.0f) + 1e-6f);
  EXPECT_GE(avg.min(), std::min(x.min(), 0.0f) - 1e-6f);
}

TEST_P(SeedSweep, DdnetForwardIsDeterministic) {
  nn::seed_init_rng(GetParam() + 900);
  nn::DDnet net(nn::DDnetConfig::tiny());
  net.set_training(false);
  Rng rng(GetParam());
  Tensor img({16, 16});
  rng.fill_uniform(img, 0.0, 1.0);
  EXPECT_TRUE(allclose(net.enhance(img), net.enhance(img), 0.0f, 0.0f));
}

TEST_P(SeedSweep, AugmentIntensityScaleKeepsSign) {
  Rng rng(GetParam() + 1000);
  data::AugmentConfig cfg;
  cfg.noise_prob = 0.0;
  cfg.contrast_prob = 0.0;
  cfg.intensity_magnitude = 0.1;
  const Tensor vol = random_tensor({2, 4, 4}, rng, 0.1, 1.0);
  const Tensor aug = data::augment_volume(vol, cfg, rng);
  for (index_t i = 0; i < vol.numel(); ++i) {
    EXPECT_GT(aug.data()[i], 0.0f);
    EXPECT_NEAR(aug.data()[i] / vol.data()[i], 1.0, 0.11);
  }
}

TEST_P(SeedSweep, FftRoundTripRandomLengths) {
  // inverse(forward(x)) == x for random power-of-two lengths and random
  // data — the invariant the ramp filter's convolution rides on.
  Rng rng(GetParam() + 800);
  for (int trial = 0; trial < 4; ++trial) {
    const index_t n = index_t{1} << (1 + static_cast<int>(rng.uniform(0, 8)));
    ASSERT_TRUE(ct::is_pow2(n));
    std::vector<ct::cplx> data(static_cast<std::size_t>(n));
    double scale = 0.0;
    for (auto& c : data) {
      c = ct::cplx(rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0));
      scale = std::max(scale, std::abs(c));
    }
    const std::vector<ct::cplx> original = data;
    ct::fft(data, false);
    ct::fft(data, true);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9 * (1.0 + scale));
      EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9 * (1.0 + scale));
    }
  }
}

TEST_P(SeedSweep, SiddonRaySumSymmetricUnderEndpointSwap) {
  // The attenuation line integral is direction-independent: traversing
  // source->detector and detector->source must cross the same pixel
  // segments, so the sums agree to floating-point accumulation error.
  Rng rng(GetParam() + 900);
  const ct::FanBeamGeometry g = ct::paper_geometry().scaled(16);
  Tensor mu({16, 16});
  rng.fill_uniform(mu, 0.0, 0.05);
  const double r = 0.6 * g.fov_mm;
  for (int ray = 0; ray < 8; ++ray) {
    const double sx = rng.uniform(-r, r), sy = rng.uniform(-r, r);
    const double ex = rng.uniform(-r, r), ey = rng.uniform(-r, r);
    const double fwd = ct::siddon_line_integral(mu, g, sx, sy, ex, ey);
    const double rev = ct::siddon_line_integral(mu, g, ex, ey, sx, sy);
    EXPECT_NEAR(fwd, rev, 1e-6 * (1.0 + std::fabs(fwd)))
        << "ray (" << sx << "," << sy << ")->(" << ex << "," << ey << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// --- non-parameterized cross-module properties -------------------------

TEST(Property, ConvBiasEqualsPostAdd) {
  Rng rng(55);
  const Tensor x = random_tensor({1, 2, 6, 6}, rng);
  const Tensor w = random_tensor({3, 2, 3, 3}, rng);
  Tensor bias({3});
  rng.fill_uniform(bias, -1.0, 1.0);
  const ops::Conv2dParams p = ops::Conv2dParams::same(3);
  const Tensor with_bias = ops::conv2d(x, w, bias, p);
  Tensor no_bias = ops::conv2d(x, w, Tensor(), p);
  for (index_t c = 0; c < 3; ++c) {
    for (index_t i = 0; i < 36; ++i) {
      no_bias.data()[c * 36 + i] += bias.at(c);
    }
  }
  EXPECT_LT(max_abs_diff(with_bias, no_bias), 1e-5f);
}

TEST(Property, MinLesionRadiusHonored) {
  Rng rng(56);
  for (int trial = 0; trial < 10; ++trial) {
    for (const auto& l : data::sample_covid_lesions(rng, 0.12)) {
      EXPECT_GE(l.r, 0.12);
    }
  }
}

TEST(Property, PositiveVolumesDifferFromHealthyOnlyInLungs) {
  // Same RNG stream drives anatomy; lesions must not modify tissue
  // outside the lung mask.
  Rng rng_a(57), rng_b(57);
  const data::Anatomy anatomy_a = data::Anatomy::sample(rng_a);
  const data::Anatomy anatomy_b = data::Anatomy::sample(rng_b);
  Rng lrng(58);
  const auto lesions = data::sample_covid_lesions(lrng, 0.1);
  const auto healthy = data::render_slice(48, anatomy_a, {}, 0.5);
  const auto sick = data::render_slice(48, anatomy_b, lesions, 0.5);
  for (index_t i = 0; i < healthy.hu.numel(); ++i) {
    if (healthy.lung_mask.data()[i] < 0.5f) {
      EXPECT_FLOAT_EQ(healthy.hu.data()[i], sick.hu.data()[i]);
    }
  }
}

TEST(Property, EnhancementLossUpperBoundsMse) {
  // L = MSE + 0.1*(1 - MS-SSIM) >= MSE since MS-SSIM <= 1.
  Rng rng(59);
  Tensor target({1, 1, 16, 16});
  rng.fill_uniform(target, 0.0, 1.0);
  Tensor pred_t = target.clone();
  for (index_t i = 0; i < pred_t.numel(); ++i) {
    pred_t.data()[i] += static_cast<real_t>(rng.gaussian(0, 0.1));
  }
  autograd::Var pred(pred_t);
  const double composite =
      autograd::enhancement_loss(pred, target, 0.1f, 11, 1).value().at(0);
  autograd::Var pred2(pred_t);
  const double mse_only =
      autograd::mse_loss(pred2, target).value().at(0);
  EXPECT_GE(composite, mse_only - 1e-7);
}

}  // namespace
}  // namespace ccovid
