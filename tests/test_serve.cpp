// Serving-runtime suite: bounded-queue semantics, dynamic-batcher flush
// policy (size vs deadline vs compatibility), worker-pool execution,
// latency histograms, thread-safe KernelProfile, and the end-to-end
// InferenceServer contracts — backpressure rejection, deadline timeout,
// graceful-shutdown drain, and bitwise-identical diagnoses for any
// worker count / batch composition.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "data/phantom.h"
#include "nn/layers.h"
#include "serve/server.h"

namespace ccovid {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- queue

TEST(BoundedQueue, FifoAndCapacity) {
  serve::BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  EXPECT_EQ(q.size(), 2u);
  // Full: push fails and the value is NOT consumed.
  EXPECT_FALSE(q.try_push(std::move(c)));
  EXPECT_EQ(c, 3);
  auto x = q.pop();
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 1);
  EXPECT_EQ(*q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  serve::BoundedQueue<int> q(4);
  int a = 7;
  ASSERT_TRUE(q.try_push(std::move(a)));
  q.close();
  int rejected = 9;
  EXPECT_FALSE(q.try_push(std::move(rejected)));  // no admissions
  auto x = q.pop();  // drain semantics: existing items still come out
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 7);
  EXPECT_FALSE(q.pop().has_value());  // closed + empty => nullopt
}

TEST(BoundedQueue, PopBlocksUntilProducer) {
  serve::BoundedQueue<int> q(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    int v = 42;
    q.push(std::move(v));
  });
  auto x = q.pop();  // must block, not spuriously return
  producer.join();
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 42);
}

// -------------------------------------------------------------- batcher

serve::RequestPtr make_request(std::uint64_t id, bool enhance) {
  auto r = std::make_unique<serve::Request>();
  r->id = id;
  r->options.use_enhancement = enhance;
  r->submit_time = serve::Clock::now();
  return r;
}

TEST(DynamicBatcher, FlushesOnSizeWithoutWaiting) {
  serve::BoundedQueue<serve::RequestPtr> q(8);
  // Generous delay: if the batcher waited for it, the test would notice.
  serve::DynamicBatcher b(q, {3, std::chrono::microseconds(500000)});
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.try_push(make_request(i, true)));
  }
  const auto t0 = serve::Clock::now();
  auto batch = b.next_batch();
  const auto waited = serve::Clock::now() - t0;
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_LT(waited, 200ms);  // flushed on size, not on the 500ms delay
}

TEST(DynamicBatcher, FlushesOnDeadlineWhenUnderfull) {
  serve::BoundedQueue<serve::RequestPtr> q(8);
  serve::DynamicBatcher b(q, {4, std::chrono::microseconds(5000)});
  ASSERT_TRUE(q.try_push(make_request(0, true)));
  ASSERT_TRUE(q.try_push(make_request(1, true)));
  auto batch = b.next_batch();
  // Two compatible requests, no third within max_delay: partial flush.
  EXPECT_EQ(batch.size(), 2u);
}

TEST(DynamicBatcher, IncompatibleRequestSeedsNextBatch) {
  serve::BoundedQueue<serve::RequestPtr> q(8);
  serve::DynamicBatcher b(q, {4, std::chrono::microseconds(2000)});
  ASSERT_TRUE(q.try_push(make_request(0, true)));
  ASSERT_TRUE(q.try_push(make_request(1, false)));  // incompatible
  ASSERT_TRUE(q.try_push(make_request(2, false)));
  auto first = b.next_batch();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0]->id, 0u);
  auto second = b.next_batch();  // held request + its companion
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0]->id, 1u);
  EXPECT_EQ(second[1]->id, 2u);
  q.close();
  EXPECT_TRUE(b.next_batch().empty());  // shutdown signal
}

// ---------------------------------------------------------- worker pool

TEST(WorkerPool, ForEachCoversEveryIndexOnce) {
  serve::WorkerPool::Options opt;
  opt.workers = 4;
  serve::WorkerPool pool(opt);
  std::vector<std::atomic<int>> hits(64);
  pool.for_each(64, [&](index_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, WorkersPinKernelWidth) {
  serve::WorkerPool::Options opt;
  opt.workers = 2;
  opt.inner_threads = 1;
  serve::WorkerPool pool(opt);
  std::atomic<int> width{-1};
  pool.submit([&] { width.store(thread_num_threads()); });
  pool.wait_idle();
  EXPECT_EQ(width.load(), 1);
  // The pin is thread-local: the caller is unaffected.
  EXPECT_EQ(thread_num_threads(), 0);
}

TEST(ParallelPin, RestoresPreviousWidth) {
  EXPECT_EQ(thread_num_threads(), 0);
  {
    ParallelPin pin(1);
    EXPECT_EQ(thread_num_threads(), 1);
    {
      ParallelPin inner(3);
      EXPECT_EQ(thread_num_threads(), 3);
    }
    EXPECT_EQ(thread_num_threads(), 1);
  }
  EXPECT_EQ(thread_num_threads(), 0);
}

// ------------------------------------------------------- observability

TEST(LatencyHistogram, QuantilesWithinBucketError) {
  serve::LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(1e-3 * i);  // 1..100 ms
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean_seconds(), 0.0505, 1e-3);
  EXPECT_NEAR(h.min_seconds(), 1e-3, 1e-4);
  EXPECT_NEAR(h.max_seconds(), 0.1, 1e-3);
  // Geometric buckets with ratio 1.25: <= 25% relative error.
  EXPECT_NEAR(h.quantile(0.5), 0.050, 0.0125);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.024);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, MergeFoldsSamplesBeforeQuantileExtraction) {
  // Regression: percentiles must be extracted from the MERGED sample
  // set, never computed per worker and then combined — a quantile of
  // per-worker quantiles is not a quantile of the workload. Two workers
  // with disjoint load mixes make the difference unmissable.
  serve::LatencyHistogram fast_worker, slow_worker;
  for (int i = 0; i < 100; ++i) fast_worker.record(1e-3);   // 1 ms
  for (int i = 0; i < 100; ++i) slow_worker.record(100e-3); // 100 ms
  // Per-worker p99s are ~1ms and ~100ms; any combination of those two
  // numbers (mean: ~50ms) misstates the workload.
  serve::LatencyHistogram merged;
  merged.merge(fast_worker);
  merged.merge(slow_worker);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_NEAR(merged.min_seconds(), 1e-3, 1e-4);
  EXPECT_NEAR(merged.max_seconds(), 100e-3, 1e-3);
  EXPECT_NEAR(merged.sum_seconds(), 100 * 1e-3 + 100 * 100e-3, 1e-3);
  // Workload truth: 50% of requests were fast, so p25 sits on the fast
  // mode and p99 on the slow mode (25% geometric-bucket error bound).
  EXPECT_NEAR(merged.quantile(0.25), 1e-3, 0.25e-3);
  EXPECT_NEAR(merged.quantile(0.99), 100e-3, 25e-3);
  // A wrongly averaged per-worker p99 would land near 50ms — assert the
  // merged view is nowhere near it.
  EXPECT_GT(merged.quantile(0.99), 75e-3);
  // Merging into a non-empty histogram accumulates rather than replaces.
  serve::LatencyHistogram more;
  more.record(1e-3);
  more.merge(merged);
  EXPECT_EQ(more.count(), 201u);
}

TEST(KernelProfile, ConcurrentAddsAreLossless) {
  KernelProfile prof;
  constexpr int kThreads = 8, kAdds = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&prof] {
      for (int i = 0; i < kAdds; ++i) prof.add("stage", 1e-3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(prof.total("stage"), kThreads * kAdds * 1e-3, 1e-6);
  EXPECT_NEAR(prof.grand_total(), kThreads * kAdds * 1e-3, 1e-6);
}

// ------------------------------------------------------------- server

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> tiny_pipeline() {
  nn::seed_init_rng(3);
  auto enh =
      std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

std::vector<data::PhantomVolume> tiny_volumes(std::size_t n) {
  Rng rng(11);
  std::vector<data::PhantomVolume> vols;
  for (std::size_t i = 0; i < n; ++i) {
    vols.push_back(data::make_volume(2, 8, i % 2 == 1, rng));
  }
  return vols;
}

TEST(InferenceServer, CompletesAndReportsStats) {
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 2;
  auto vols = tiny_volumes(4);
  serve::InferenceServer server(tiny_pipeline(), opt);
  std::vector<std::future<serve::DiagnoseResponse>> futs;
  for (const auto& v : vols) futs.push_back(server.submit(v.hu));
  for (auto& f : futs) {
    const auto r = f.get();
    EXPECT_EQ(r.status, serve::RequestStatus::kOk);
    EXPECT_GE(r.batch_size, 1u);
    EXPECT_GT(r.total_s, 0.0);
    EXPECT_GE(r.total_s, r.execute_s);
  }
  server.shutdown();
  const auto& s = server.stats();
  EXPECT_EQ(s.submitted.load(), 4u);
  EXPECT_EQ(s.completed.load(), 4u);
  EXPECT_EQ(s.batched_volumes.load(), 4u);
  EXPECT_GE(s.batches.load(), 2u);
  EXPECT_EQ(s.total.count(), 4u);
  // Stage totals flow into the KernelProfile-style breakdown.
  EXPECT_GT(s.stage_totals.total("classify"), 0.0);
  const std::string json = server.stats_json();
  EXPECT_NE(json.find("\"completed\":4"), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  // The JSON percentiles come from the single merged histogram: its
  // sample count must equal the workload (all workers' completions),
  // not any one worker's share.
  EXPECT_NE(json.find("\"total\":{\"count\":4"), std::string::npos) << json;
}

TEST(InferenceServer, BackpressureRejectsWhenQueueFull) {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 1;
  opt.queue_capacity = 1;
  opt.device_stall_s = 0.05;  // keep the single worker busy
  auto vols = tiny_volumes(1);
  serve::InferenceServer server(tiny_pipeline(), opt);
  std::vector<std::future<serve::DiagnoseResponse>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(server.submit(vols[0].hu));
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futs) {
    const auto r = f.get();  // every future is fulfilled either way
    if (r.status == serve::RequestStatus::kOk) ++ok;
    if (r.status == serve::RequestStatus::kRejected) ++rejected;
  }
  server.shutdown();
  EXPECT_GT(ok, 0u);
  EXPECT_GT(rejected, 0u);  // fast-fail, not unbounded buffering
  EXPECT_EQ(ok + rejected, 12u);
  EXPECT_EQ(server.stats().rejected_queue_full.load(), rejected);
}

TEST(InferenceServer, DeadlineExpiresQueuedRequests) {
  serve::ServerOptions opt;
  opt.workers = 1;
  opt.max_batch = 1;
  opt.queue_capacity = 16;
  opt.device_stall_s = 0.05;
  opt.default_deadline = std::chrono::milliseconds(30);
  auto vols = tiny_volumes(1);
  serve::InferenceServer server(tiny_pipeline(), opt);
  std::vector<std::future<serve::DiagnoseResponse>> futs;
  for (int i = 0; i < 6; ++i) futs.push_back(server.submit(vols[0].hu));
  std::size_t ok = 0, timed_out = 0;
  for (auto& f : futs) {
    const auto r = f.get();
    if (r.status == serve::RequestStatus::kOk) ++ok;
    if (r.status == serve::RequestStatus::kTimedOut) ++timed_out;
  }
  server.shutdown();
  EXPECT_GT(ok, 0u);        // the head of the line still completes
  EXPECT_GT(timed_out, 0u); // the tail expired while queued
  EXPECT_EQ(server.stats().timed_out.load(), timed_out);
}

TEST(InferenceServer, GracefulShutdownDrainsAdmitted) {
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 2;
  opt.queue_capacity = 32;
  auto vols = tiny_volumes(6);
  serve::InferenceServer server(tiny_pipeline(), opt);
  std::vector<std::future<serve::DiagnoseResponse>> futs;
  for (const auto& v : vols) futs.push_back(server.submit(v.hu));
  server.shutdown();  // must drain, not drop
  for (auto& f : futs) {
    EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  }
  EXPECT_FALSE(server.accepting());
  auto late = server.submit(vols[0].hu);
  EXPECT_EQ(late.get().status, serve::RequestStatus::kShutdown);
  EXPECT_EQ(server.stats().completed.load(), 6u);
  EXPECT_EQ(server.stats().rejected_shutdown.load(), 1u);
}

TEST(InferenceServer, UnknownSessionReportsError) {
  serve::ServerOptions opt;
  auto vols = tiny_volumes(1);
  serve::InferenceServer server(tiny_pipeline(), opt);
  serve::ServeOptions sopt;
  sopt.session = "no-such-model";
  const auto r = server.submit(vols[0].hu, sopt).get();
  EXPECT_EQ(r.status, serve::RequestStatus::kError);
  EXPECT_FALSE(r.error.empty());
  server.shutdown();
}

// The determinism contract: any worker count, any batch composition,
// bitwise-identical to a direct single-threaded diagnose().
TEST(InferenceServer, BitwiseDeterministicAcrossWorkerCounts) {
  auto pipe = tiny_pipeline();
  auto vols = tiny_volumes(6);

  std::vector<double> reference;
  for (const auto& v : vols) {
    reference.push_back(pipe->diagnose(v.hu, true).probability);
  }

  struct Config { int workers; std::size_t batch; };
  for (const Config cfg : {Config{1, 1}, Config{2, 3}, Config{4, 2}}) {
    serve::ServerOptions opt;
    opt.workers = cfg.workers;
    opt.max_batch = cfg.batch;
    serve::InferenceServer server(pipe, opt);
    std::vector<std::future<serve::DiagnoseResponse>> futs;
    for (const auto& v : vols) futs.push_back(server.submit(v.hu));
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const auto r = futs[i].get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk);
      // Bitwise, not approximate: == on purpose.
      EXPECT_EQ(r.diagnosis.probability, reference[i])
          << "workers=" << cfg.workers << " batch=" << cfg.batch
          << " volume=" << i;
    }
    server.shutdown();
  }
}

TEST(Pipeline, ParallelScoreVolumesMatchesSerial) {
  auto pipe = tiny_pipeline();
  auto vols = tiny_volumes(5);
  std::vector<Tensor> hu;
  for (const auto& v : vols) hu.push_back(v.hu);
  const auto serial = pipe->score_volumes(hu, true, 1);
  const auto parallel = pipe->score_volumes(hu, true, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);  // bitwise
  }
}

}  // namespace
}  // namespace ccovid
