// Lane-determinism suite for the SIMD backend layer (core/simd.h).
//
// The contract under test: every backend — scalar emulation included —
// produces bitwise-identical results for every primitive and every
// ported kernel, because (1) per-output vectorization preserves scalar
// accumulation order with two-rounding madd, and (2) cross-lane
// reductions use one canonical strided-lane tree. These tests compare
// raw bit patterns, never distances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/random.h"
#include "core/simd.h"
#include "ops/gemm.h"
#include "ops/ops.h"

using namespace ccovid;

namespace {

std::vector<simd::Backend> available_backends() {
  std::vector<simd::Backend> out;
  for (const simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2,
        simd::Backend::kAvx2}) {
    if (simd::backend_available(b)) out.push_back(b);
  }
  return out;
}

bool bits_equal(const float* a, const float* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(float)) == 0;
}

bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() && bits_equal(a.data(), b.data(), a.numel());
}

Tensor random_tensor(Shape s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(s));
  rng.fill_gaussian(t, 0.0, 0.5);
  return t;
}

// Runs `make` under every available backend and requires every result
// to match the scalar backend's bits exactly.
template <typename Make>
void expect_backend_invariant(Make&& make, const char* what) {
  const simd::Backend prev = simd::active_backend();
  simd::set_backend(simd::Backend::kScalar);
  const Tensor ref = make();
  for (const simd::Backend be : available_backends()) {
    simd::set_backend(be);
    const Tensor got = make();
    EXPECT_TRUE(bits_equal(ref, got))
        << what << ": backend " << simd::backend_name(be)
        << " diverges from scalar bits";
  }
  simd::set_backend(prev);
}

}  // namespace

// ------------------------------------------------------------------
// Primitive probes: per-lane bitwise equality across backends.

TEST(SimdPrimitives, LanewiseOpsMatchScalarBits) {
  // Values chosen to stress rounding: near-1 products, denormals,
  // negative zero, large magnitudes.
  const float a[8] = {1.0f + 0x1p-12f, -3.1415926f, 0x1p-140f, -0.0f,
                      1e30f,           -1e-30f,     7.25f,     0.333333f};
  const float b[8] = {1.0f - 0x1p-12f, 2.7182818f, 0x1p-10f, 4.0f,
                      1e-30f,          -1e30f,     -7.25f,   3.0f};
  const float c[8] = {-1.0f, 0.5f, 0x1p-140f, -0.0f, 1.0f, -1.0f, 0.0f, 1.0f};

  const simd::KernelTable* ref = simd::table_for(simd::Backend::kScalar);
  ASSERT_NE(ref, nullptr);
  float want[8], got[8];

  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    ASSERT_NE(kt, nullptr);
    SCOPED_TRACE(simd::backend_name(be));

    ref->probe_madd(a, b, c, want);
    kt->probe_madd(a, b, c, got);
    EXPECT_TRUE(bits_equal(want, got, 8)) << "madd";

    ref->probe_mul(a, b, want);
    kt->probe_mul(a, b, got);
    EXPECT_TRUE(bits_equal(want, got, 8)) << "mul";

    ref->probe_add(a, b, want);
    kt->probe_add(a, b, got);
    EXPECT_TRUE(bits_equal(want, got, 8)) << "add";

    ref->probe_min(a, b, want);
    kt->probe_min(a, b, got);
    EXPECT_TRUE(bits_equal(want, got, 8)) << "min";

    ref->probe_max(a, b, want);
    kt->probe_max(a, b, got);
    EXPECT_TRUE(bits_equal(want, got, 8)) << "max";

    const float rw = ref->probe_reduce(a);
    const float rg = kt->probe_reduce(a);
    EXPECT_TRUE(bits_equal(&rw, &rg, 1)) << "reduce";
  }
}

TEST(SimdPrimitives, MaddUsesTwoRoundingsNotFma) {
  // (1 + 2^-12)(1 - 2^-12) = 1 - 2^-24. Exact f32. Adding -1:
  //   two roundings: f32(a*b) = 1 - 2^-24, plus -1 -> -2^-24
  //   fused        : same here, so pick the sharper pair below.
  // a = b = 1 + 2^-12: a*b = 1 + 2^-11 + 2^-24. f32 rounds away the
  // 2^-24 (ulp at 1 is 2^-23), so
  //   two roundings: (1 + 2^-11) - 1 = 2^-11 exactly
  //   fused        : 2^-11 + 2^-24 (single rounding keeps the tail)
  const float x = 1.0f + 0x1p-12f;
  const float a[8] = {x, x, x, x, x, x, x, x};
  const float c[8] = {-1.0f, -1.0f, -1.0f, -1.0f, -1.0f, -1.0f, -1.0f, -1.0f};
  const float two_rounded = 0x1p-11f;
  const float fused = std::fma(x, x, -1.0f);
  ASSERT_NE(two_rounded, fused) << "test values lost their discriminating power";

  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    float got[8];
    kt->probe_madd(a, a, c, got);
    for (int i = 0; i < simd::kLanes; ++i) {
      EXPECT_EQ(got[i], two_rounded) << simd::backend_name(be) << " lane " << i;
      EXPECT_NE(got[i], fused) << simd::backend_name(be)
                               << " contracted to FMA, lane " << i;
    }
  }
}

TEST(SimdPrimitives, MinMaxSecondOperandWinsOnNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float a[8] = {nan, 1.0f, -0.0f, 0.0f, nan, 2.0f, nan, -1.0f};
  const float b[8] = {3.0f, nan, 0.0f, -0.0f, -3.0f, nan, 0.0f, nan};
  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    SCOPED_TRACE(simd::backend_name(be));
    float mx[8], mn[8];
    kt->probe_max(a, b, mx);
    kt->probe_min(a, b, mn);
    // minps/maxps: when the comparison is false (NaN involved, or
    // equal-valued +-0), the SECOND operand is returned.
    EXPECT_EQ(mx[0], 3.0f);
    EXPECT_TRUE(std::isnan(mx[1]));
    EXPECT_EQ(mn[0], 3.0f);
    EXPECT_TRUE(std::isnan(mn[1]));
    // +-0 ties take operand b (bitwise).
    EXPECT_TRUE(bits_equal(&mx[2], &b[2], 1));
    EXPECT_TRUE(bits_equal(&mn[3], &b[3], 1));
  }
}

TEST(SimdPrimitives, ReduceMatchesCanonicalTree) {
  const float l[8] = {0.1f, 0.2f, 0.4f, 0.8f, 1.6f, 3.2f, 6.4f, 12.8f};
  // q_i = l_i + l_{i+4}; r0 = q0 + q2; r1 = q1 + q3; sum = r0 + r1.
  const float q0 = l[0] + l[4], q1 = l[1] + l[5], q2 = l[2] + l[6],
              q3 = l[3] + l[7];
  const float want = (q0 + q2) + (q1 + q3);
  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    const float got = kt->probe_reduce(l);
    EXPECT_TRUE(bits_equal(&want, &got, 1)) << simd::backend_name(be);
  }
}

TEST(SimdPrimitives, LoadPartialZeroFillsTail) {
  const float src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (const simd::Backend be : available_backends()) {
    const simd::KernelTable* kt = simd::table_for(be);
    for (index_t n = 0; n <= 8; ++n) {
      float out[8];
      std::memset(out, 0xAB, sizeof(out));
      kt->probe_load_partial(src, n, out);
      for (index_t i = 0; i < 8; ++i) {
        EXPECT_EQ(out[i], i < n ? src[i] : 0.0f)
            << simd::backend_name(be) << " n=" << n << " lane " << i;
      }
    }
  }
}

TEST(SimdPrimitives, DotMatchesStridedLaneReference) {
  Rng rng(99);
  Tensor xa({64}), xb({64});
  rng.fill_gaussian(xa, 0.0, 1.0);
  rng.fill_gaussian(xb, 0.0, 1.0);
  for (index_t n = 0; n <= 40; ++n) {
    // Reference: 8 virtual partial sums (element i -> lane i%8, scalar
    // order within each lane) + the canonical tree.
    float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (index_t i = 0; i < n; ++i) {
      lane[i % 8] = lane[i % 8] + xa.at(i) * xb.at(i);
    }
    const float q0 = lane[0] + lane[4], q1 = lane[1] + lane[5],
                q2 = lane[2] + lane[6], q3 = lane[3] + lane[7];
    const float want = (q0 + q2) + (q1 + q3);
    for (const simd::Backend be : available_backends()) {
      const float got = simd::table_for(be)->dot(xa.data(), xb.data(), n);
      EXPECT_TRUE(bits_equal(&want, &got, 1))
          << simd::backend_name(be) << " n=" << n;
    }
  }
}

// ------------------------------------------------------------------
// Dispatch API.

TEST(SimdDispatch, ParseBackendAcceptsKnownSpecsOnly) {
  simd::Backend b = simd::Backend::kScalar;
  bool is_auto = true;
  EXPECT_TRUE(simd::parse_backend("scalar", &b, &is_auto));
  EXPECT_EQ(b, simd::Backend::kScalar);
  EXPECT_FALSE(is_auto);
  EXPECT_TRUE(simd::parse_backend("sse2", &b, &is_auto));
  EXPECT_EQ(b, simd::Backend::kSse2);
  EXPECT_TRUE(simd::parse_backend("avx2", &b, &is_auto));
  EXPECT_EQ(b, simd::Backend::kAvx2);
  EXPECT_TRUE(simd::parse_backend("auto", &b, &is_auto));
  EXPECT_TRUE(is_auto);
  for (const char* bad : {"", "AVX2", "avx512", "neon", "scalar "}) {
    EXPECT_FALSE(simd::parse_backend(bad, &b, &is_auto)) << bad;
  }
}

TEST(SimdDispatch, SetBackendSpecRejectsUnknownAndKeepsState) {
  const simd::Backend prev = simd::active_backend();
  EXPECT_TRUE(simd::set_backend_spec("scalar"));
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  EXPECT_STREQ(simd::kernels().name, "scalar");
  EXPECT_FALSE(simd::set_backend_spec("fast-please"));
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);
  EXPECT_TRUE(simd::set_backend_spec("auto"));
  // auto must land on an available backend whose table agrees.
  EXPECT_TRUE(simd::backend_available(simd::active_backend()));
  EXPECT_STREQ(simd::kernels().name,
               simd::backend_name(simd::active_backend()));
  simd::set_backend(prev);
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndUnavailableRequestsClamp) {
  EXPECT_TRUE(simd::backend_available(simd::Backend::kScalar));
  const simd::Backend prev = simd::active_backend();
  // Requesting any backend yields an available one at or below it.
  for (const simd::Backend want :
       {simd::Backend::kScalar, simd::Backend::kSse2,
        simd::Backend::kAvx2}) {
    const simd::Backend got = simd::set_backend(want);
    EXPECT_TRUE(simd::backend_available(got));
    EXPECT_LE(static_cast<int>(got), static_cast<int>(want));
    EXPECT_EQ(got, simd::active_backend());
  }
  simd::set_backend(prev);
}

// ------------------------------------------------------------------
// Ported kernels: whole-op bitwise equality across backends. Shapes
// deliberately hit vector interiors, scalar borders, and ragged tails.

TEST(SimdKernels, Conv2dUnrolledBackendInvariant) {
  const Tensor x = random_tensor({2, 3, 13, 19}, 1);
  const Tensor w = random_tensor({4, 3, 5, 5}, 2);
  const Tensor b = random_tensor({4}, 3);
  expect_backend_invariant(
      [&] {
        return ops::conv2d(x, w, b, ops::Conv2dParams::same(5),
                           ops::KernelOptions::all());
      },
      "conv2d unrolled");
}

TEST(SimdKernels, Deconv2dGatherBackendInvariant) {
  const Tensor x = random_tensor({2, 3, 11, 17}, 4);
  const Tensor w = random_tensor({3, 4, 5, 5}, 5);
  const Tensor b = random_tensor({4}, 6);
  expect_backend_invariant(
      [&] {
        return ops::deconv2d(x, w, b, ops::Deconv2dParams::same(5),
                             ops::KernelOptions::all());
      },
      "deconv2d gather");
}

TEST(SimdKernels, MatmulBackendInvariant) {
  // 13x37x29 exercises the 4x8 micro tile plus both edge kernels.
  const Tensor a = random_tensor({13, 37}, 7);
  const Tensor b = random_tensor({37, 29}, 8);
  expect_backend_invariant([&] { return ops::matmul(a, b); }, "matmul");
}

TEST(SimdKernels, Conv2dGemmBackendInvariant) {
  const Tensor x = random_tensor({1, 3, 12, 12}, 9);
  const Tensor w = random_tensor({5, 3, 3, 3}, 10);
  const Tensor b = random_tensor({5}, 11);
  expect_backend_invariant(
      [&] { return ops::conv2d_gemm(x, w, b, ops::Conv2dParams::same(3)); },
      "conv2d_gemm");
}

TEST(SimdKernels, BatchNormInferBackendInvariant) {
  const Tensor x = random_tensor({2, 4, 9, 11}, 12);
  const Tensor gamma = random_tensor({4}, 13);
  const Tensor beta = random_tensor({4}, 14);
  Tensor mean = random_tensor({4}, 15);
  Tensor var = random_tensor({4}, 16);
  for (index_t c = 0; c < 4; ++c) var.at(c) = std::abs(var.at(c)) + 0.1f;
  expect_backend_invariant(
      [&] { return ops::batch_norm_infer(x, gamma, beta, mean, var); },
      "batch_norm_infer");
}

TEST(SimdKernels, ActivationsBackendInvariantIncludingNan) {
  Tensor x = random_tensor({1, 2, 7, 13}, 17);
  x.data()[3] = std::numeric_limits<float>::quiet_NaN();
  x.data()[40] = -0.0f;
  expect_backend_invariant([&] { return ops::relu(x); }, "relu");
  expect_backend_invariant([&] { return ops::leaky_relu(x, 0.01f); },
                           "leaky_relu");
  // relu maps NaN to 0 (maxps semantics) on every backend.
  const Tensor y = ops::relu(x);
  EXPECT_EQ(y.data()[3], 0.0f);
}

TEST(SimdKernels, LinearBackendInvariant) {
  const Tensor x = random_tensor({3, 37}, 18);
  const Tensor w = random_tensor({5, 37}, 19);
  const Tensor b = random_tensor({5}, 20);
  expect_backend_invariant([&] { return ops::linear(x, w, b); }, "linear");
}
