// Tracing-subsystem suite (`-L fast` / `-L trace`): span nesting and
// depth balance, ring wraparound accounting, the snapshot-while-writing
// discard protocol under real concurrency, chrome trace-event JSON
// schema checks, virtual-clock byte-stability, request-id propagation
// across the serving runtime's threads, and the disabled-mode
// no-allocation contract (via the alloc-cache's fresh_system_allocs
// counter).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/alloc_cache.h"
#include "data/phantom.h"
#include "nn/layers.h"
#include "serve/server.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace ccovid {
namespace {

constexpr std::size_t kDefaultRingCapacity = 16384;

// Every test starts from a known state: tracing off, rings empty,
// real clock, default ring capacity for any thread spawned later.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_level(0);
    trace::use_virtual_clock(false);
    trace::set_ring_capacity(kDefaultRingCapacity);
    trace::clear();
  }
  void TearDown() override {
    trace::set_level(0);
    trace::use_virtual_clock(false);
    trace::set_ring_capacity(kDefaultRingCapacity);
    trace::clear();
  }
};

std::vector<trace::Event> events_named(const trace::Snapshot& snap,
                                       const char* name) {
  std::vector<trace::Event> out;
  for (const auto& e : snap.events) {
    if (e.name != nullptr && std::strcmp(e.name, name) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

// ------------------------------------------------------ span basics

TEST_F(TraceTest, DisabledSitesRecordNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    TRACE_SPAN("off.span");
    TRACE_INSTANT("off.instant");
  }
  EXPECT_EQ(trace::thread_depth(), 0);
  EXPECT_TRUE(trace::snapshot().events.empty());
}

TEST_F(TraceTest, NestedSpansBalanceAndRecordDepth) {
  trace::set_level(1);
  EXPECT_EQ(trace::thread_depth(), 0);
  {
    TRACE_SPAN("outer");
    EXPECT_EQ(trace::thread_depth(), 1);
    {
      TRACE_SPAN("middle");
      EXPECT_EQ(trace::thread_depth(), 2);
      {
        TRACE_SPAN("inner");
        EXPECT_EQ(trace::thread_depth(), 3);
      }
      EXPECT_EQ(trace::thread_depth(), 2);
    }
    EXPECT_EQ(trace::thread_depth(), 1);
  }
  EXPECT_EQ(trace::thread_depth(), 0);

  const trace::Snapshot snap = trace::snapshot();
  ASSERT_EQ(snap.events.size(), 3u);
  std::map<std::string, trace::Event> by_name;
  for (const auto& e : snap.events) by_name[e.name] = e;
  EXPECT_EQ(by_name.at("outer").depth, 0);
  EXPECT_EQ(by_name.at("middle").depth, 1);
  EXPECT_EQ(by_name.at("inner").depth, 2);
  // Nesting invariant: children are contained in the parent interval.
  EXPECT_GE(by_name.at("inner").t0_ns, by_name.at("middle").t0_ns);
  EXPECT_LE(by_name.at("inner").t1_ns, by_name.at("middle").t1_ns);
  EXPECT_GE(by_name.at("middle").t0_ns, by_name.at("outer").t0_ns);
  EXPECT_LE(by_name.at("middle").t1_ns, by_name.at("outer").t1_ns);
  for (const auto& e : snap.events) {
    EXPECT_EQ(e.kind, trace::Kind::kSpan);
    EXPECT_LE(e.t0_ns, e.t1_ns);
  }
}

TEST_F(TraceTest, SpanOutlivingDisableStillBalancesDepth) {
  trace::set_level(1);
  {
    TRACE_SPAN("doomed");
    EXPECT_EQ(trace::thread_depth(), 1);
    trace::set_level(0);  // disabled mid-span
  }
  // The depth counter balanced, and the span was not recorded.
  EXPECT_EQ(trace::thread_depth(), 0);
  EXPECT_TRUE(events_named(trace::snapshot(), "doomed").empty());
}

TEST_F(TraceTest, InstantsInheritAndOverrideCorrelation) {
  trace::set_level(1);
  EXPECT_EQ(trace::correlation_id(), 0u);
  {
    trace::ScopedCorrelation corr(42);
    EXPECT_EQ(trace::correlation_id(), 42u);
    TRACE_INSTANT("inherit");
    TRACE_INSTANT_ID("override", 7);
    TRACE_SPAN("span.inherit");
  }
  EXPECT_EQ(trace::correlation_id(), 0u);
  const trace::Snapshot snap = trace::snapshot();
  ASSERT_EQ(events_named(snap, "inherit").size(), 1u);
  EXPECT_EQ(events_named(snap, "inherit")[0].id, 42u);
  EXPECT_EQ(events_named(snap, "inherit")[0].kind, trace::Kind::kInstant);
  ASSERT_EQ(events_named(snap, "override").size(), 1u);
  EXPECT_EQ(events_named(snap, "override")[0].id, 7u);
  ASSERT_EQ(events_named(snap, "span.inherit").size(), 1u);
  EXPECT_EQ(events_named(snap, "span.inherit")[0].id, 42u);
}

TEST_F(TraceTest, VerbosityGatedSitesNeedLevelTwo) {
  trace::set_level(1);
  {
    TRACE_SPAN_V("v.span");
    TRACE_INSTANT_V("v.instant");
  }
  EXPECT_TRUE(trace::snapshot().events.empty());
  trace::set_level(2);
  {
    TRACE_SPAN_V("v.span");
    TRACE_INSTANT_V("v.instant");
  }
  const trace::Snapshot snap = trace::snapshot();
  EXPECT_EQ(events_named(snap, "v.span").size(), 1u);
  EXPECT_EQ(events_named(snap, "v.instant").size(), 1u);
}

// ------------------------------------------------------------- ring

TEST_F(TraceTest, WraparoundKeepsNewestAndCountsDropped) {
  trace::set_level(1);
  // Rings pick up the capacity in force when their thread first emits,
  // so the small ring must belong to a fresh thread.
  trace::set_ring_capacity(64);
  constexpr int kEmits = 200;
  std::thread writer([] {
    for (int i = 0; i < kEmits; ++i) TRACE_INSTANT("wrap.evt");
  });
  writer.join();
  trace::set_ring_capacity(kDefaultRingCapacity);

  const trace::Snapshot snap = trace::snapshot();
  const auto evts = events_named(snap, "wrap.evt");
  EXPECT_EQ(evts.size(), 64u);  // exactly one ring of the newest records
  EXPECT_EQ(snap.dropped, static_cast<std::uint64_t>(kEmits - 64));
}

TEST_F(TraceTest, SnapshotWhileWritingNeverReturnsTornRecords) {
  trace::set_level(1);
  // Tiny rings force continuous wraparound, maximizing snapshot/writer
  // slot collisions — the case the discard protocol exists for.
  trace::set_ring_capacity(64);
  std::atomic<bool> stop{false};
  std::atomic<int> started{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, &started] {
      bool first = true;
      while (!stop.load(std::memory_order_relaxed)) {
        TRACE_SPAN("race.span");
        TRACE_INSTANT_ID("race.instant", 99);
        if (first) {
          started.fetch_add(1, std::memory_order_relaxed);
          first = false;
        }
      }
    });
  }
  // Don't start snapshotting (or, worse, stop) until every writer is
  // actually writing — thread startup can outlast 200 empty snapshots.
  while (started.load(std::memory_order_relaxed) < 4) {
    std::this_thread::yield();
  }
  // Snapshot continuously while the writers hammer their rings. Every
  // returned record must be fully-formed: a torn mix of two records
  // would show as t1 < t0 or a wrong-name/kind combination. (A round
  // may legitimately return nothing — a writer that laps the whole
  // ring mid-copy invalidates every slot — so only well-formedness is
  // asserted here, and liveness on the quiescent snapshot below.)
  for (int round = 0; round < 200; ++round) {
    const trace::Snapshot snap = trace::snapshot();
    for (const auto& e : snap.events) {
      ASSERT_NE(e.name, nullptr);
      const bool is_span = std::strcmp(e.name, "race.span") == 0;
      const bool is_instant = std::strcmp(e.name, "race.instant") == 0;
      ASSERT_TRUE(is_span || is_instant) << e.name;
      ASSERT_LE(e.t0_ns, e.t1_ns);
      if (is_span) {
        ASSERT_EQ(e.kind, trace::Kind::kSpan);
      } else {
        ASSERT_EQ(e.kind, trace::Kind::kInstant);
        ASSERT_EQ(e.t0_ns, e.t1_ns);
        ASSERT_EQ(e.id, 99u);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  trace::set_ring_capacity(kDefaultRingCapacity);
  // Writers quiescent: the last ring-full of records must survive.
  const trace::Snapshot final_snap = trace::snapshot();
  EXPECT_GT(final_snap.events.size(), 0u);
  EXPECT_GT(final_snap.dropped, 0u);  // tiny rings certainly wrapped
}

// ----------------------------------------------------------- vclock

TEST_F(TraceTest, VirtualClockTicksOneMicrosecondPerEvent) {
  trace::set_level(1);
  trace::use_virtual_clock(true);
  trace::clear();  // resets the virtual counter
  ASSERT_TRUE(trace::virtual_clock());
  {
    TRACE_SPAN("v.outer");   // draw 1 at open ...
    TRACE_INSTANT("v.mid");  // draw 2
  }                          // ... draw 3 at close
  const trace::Snapshot snap = trace::snapshot();
  const auto outer = events_named(snap, "v.outer");
  const auto mid = events_named(snap, "v.mid");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(outer[0].t0_ns, 1000u);
  EXPECT_EQ(mid[0].t0_ns, 2000u);
  EXPECT_EQ(outer[0].t1_ns, 3000u);
}

TEST_F(TraceTest, VirtualClockExportsAreByteStable) {
  trace::set_level(1);
  trace::use_virtual_clock(true);
  auto run = [] {
    trace::clear();
    {
      TRACE_SPAN_ID("stable.a", 5);
      TRACE_INSTANT("stable.b");
    }
    const trace::Snapshot snap = trace::snapshot();
    return std::make_pair(trace::chrome_json(snap),
                          trace::summary_json(snap));
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);    // chrome JSON, byte-for-byte
  EXPECT_EQ(first.second, second.second);  // summary JSON
}

// ---------------------------------------------------------- exports

// Minimal structural JSON check: every brace/bracket balances outside
// string literals and escapes are well-formed. Catches the classic
// hand-rolled-serializer failures (trailing comma handled separately).
bool json_structure_ok(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TraceTest, ChromeJsonMatchesTraceEventSchema) {
  trace::set_level(1);
  trace::use_virtual_clock(true);
  trace::clear();
  {
    TRACE_SPAN_ID("schema.span", 17);
    TRACE_INSTANT("schema.instant");
  }
  const std::string json = trace::chrome_json(trace::snapshot());
  EXPECT_TRUE(json_structure_ok(json)) << json;
  EXPECT_EQ(json.front(), '[');
  // Array-of-events form: one "X" complete event per span, one "i"
  // instant, both with the fields chrome://tracing requires.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"schema.span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"schema.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"id\":17"), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos);  // no trailing commas
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST_F(TraceTest, AggregateMergesAcrossThreadsBeforeQuantiles) {
  trace::set_level(1);
  // Two threads emit different numbers of the same span; the aggregate
  // must pool them (merged count, quantiles over the union) rather than
  // reporting any per-thread view.
  auto burn = [](int spins) {
    volatile int x = 0;
    for (int i = 0; i < spins; ++i) x = x + 1;
  };
  std::thread a([&] {
    for (int i = 0; i < 3; ++i) {
      TRACE_SPAN("agg.work");
      burn(100);
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 5; ++i) {
      TRACE_SPAN("agg.work");
      burn(100);
    }
  });
  a.join();
  b.join();

  const trace::Snapshot snap = trace::snapshot();
  const auto stats = trace::aggregate(snap);
  const auto it = std::find_if(
      stats.begin(), stats.end(),
      [](const trace::SpanStat& s) { return s.name == "agg.work"; });
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->count, 8u);  // 3 + 5, merged across both threads
  EXPECT_GE(it->p99_s, it->p50_s);
  EXPECT_GE(it->total_s, it->p99_s);  // 8 samples: total >= any single one
  // Instants carry no duration and must not pollute the table.
  TRACE_INSTANT("agg.instant");
  for (const auto& s : trace::aggregate(trace::snapshot())) {
    EXPECT_NE(s.name, "agg.instant");
  }
}

TEST_F(TraceTest, SummaryJsonIsStructurallyValid) {
  trace::set_level(1);
  trace::use_virtual_clock(true);
  trace::clear();
  { TRACE_SPAN("sum.a"); }
  { TRACE_SPAN("sum.a"); }
  const std::string json = trace::summary_json(trace::snapshot());
  EXPECT_TRUE(json_structure_ok(json)) << json;
  EXPECT_NE(json.find("\"events\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sum.a\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

// ------------------------------------------------- serve integration

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> tiny_pipeline() {
  nn::seed_init_rng(3);
  auto enh =
      std::make_shared<pipeline::EnhancementAI>(nn::DDnetConfig::tiny());
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

TEST_F(TraceTest, RequestIdPropagatesAcrossBatcherThreads) {
  trace::set_level(1);
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 2;
  Rng rng(11);
  std::vector<data::PhantomVolume> vols;
  for (int i = 0; i < 4; ++i) {
    vols.push_back(data::make_volume(2, 8, i % 2 == 1, rng));
  }

  std::set<std::uint64_t> ids;
  {
    serve::InferenceServer server(tiny_pipeline(), opt);
    std::vector<std::future<serve::DiagnoseResponse>> futs;
    for (const auto& v : vols) futs.push_back(server.submit(v.hu));
    for (auto& f : futs) {
      const auto r = f.get();
      ASSERT_EQ(r.status, serve::RequestStatus::kOk);
      ids.insert(r.request_id);
    }
    server.shutdown();
  }
  ASSERT_EQ(ids.size(), 4u);

  const trace::Snapshot snap = trace::snapshot();
  const auto admits = events_named(snap, "serve.admit");
  const auto responds = events_named(snap, "serve.respond");
  const auto executes = events_named(snap, "serve.batch.execute");
  EXPECT_EQ(admits.size(), 4u);
  EXPECT_EQ(responds.size(), 4u);
  EXPECT_GE(executes.size(), 1u);

  // Every request's timeline is stitched by its id: admission on the
  // submitter thread, response on a worker thread — different rings,
  // same correlation id.
  for (const std::uint64_t id : ids) {
    const auto admit = std::find_if(
        admits.begin(), admits.end(),
        [id](const trace::Event& e) { return e.id == id; });
    const auto respond = std::find_if(
        responds.begin(), responds.end(),
        [id](const trace::Event& e) { return e.id == id; });
    ASSERT_NE(admit, admits.end()) << "no admit span for request " << id;
    ASSERT_NE(respond, responds.end())
        << "no respond span for request " << id;
    EXPECT_NE(admit->tid, respond->tid)
        << "admit and respond unexpectedly on the same thread";
  }
  // Worker-side kernels inherit the lead request id via
  // ScopedCorrelation, so batch compute is attributable.
  bool kernel_with_request_id = false;
  for (const auto& e : snap.events) {
    if (e.name != nullptr && std::strncmp(e.name, "ops.", 4) == 0 &&
        ids.count(e.id) > 0) {
      kernel_with_request_id = true;
      break;
    }
  }
  EXPECT_TRUE(kernel_with_request_id);

  // The stats JSON grows a merged-before-quantile trace section while
  // tracing is live (satellite of the percentile fix).
  serve::InferenceServer server2(tiny_pipeline(), opt);
  const std::string stats = server2.stats_json();
  EXPECT_NE(stats.find("\"trace\":"), std::string::npos);
  EXPECT_TRUE(json_structure_ok(stats)) << stats;
  server2.shutdown();
}

// ------------------------------------------------------- allocation

TEST_F(TraceTest, DisabledSitesDoNotAllocate) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  ASSERT_FALSE(trace::enabled());
  const std::uint64_t before = fresh_system_allocs();
  for (int i = 0; i < 100000; ++i) {
    TRACE_SPAN("alloc.span");
    TRACE_SPAN_ID("alloc.span.id", 1);
    TRACE_INSTANT("alloc.instant");
    TRACE_INSTANT_ID("alloc.instant.id", 2);
    TRACE_SPAN_V("alloc.verbose");
  }
  // A disabled site is one relaxed load — the loop must not have
  // reached the system heap even once.
  EXPECT_EQ(fresh_system_allocs() - before, 0u);
}

TEST_F(TraceTest, EnabledEmitIsAllocationFreeAfterRingWarmup) {
  if (!alloc_cache_active()) {
    GTEST_SKIP() << "alloc cache inactive (sanitizer build or disabled)";
  }
  trace::set_level(1);
  TRACE_INSTANT("warm");  // materializes this thread's ring
  const std::uint64_t before = fresh_system_allocs();
  for (int i = 0; i < 10000; ++i) {
    TRACE_SPAN("steady.span");
    TRACE_INSTANT("steady.instant");
  }
  // emit() writes into the preallocated ring: records wrap, the heap is
  // never touched.
  EXPECT_EQ(fresh_system_allocs() - before, 0u);
}

}  // namespace
}  // namespace ccovid
