// ccovid_diagnose — run the full ComputeCOVID19+ pipeline on a volume
// produced by ccovid_sim, using models trained by ccovid_train.
//
//   ccovid_diagnose --models models --input patient.tnsr
//                   [--threshold 0.35] [--no-enhance]
//
// Prints the diagnosis (and, when the input carries a ground-truth
// label, whether the call was correct).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/parallel.h"
#include "core/serialize.h"
#include "core/simd.h"
#include "pipeline/framework.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

int main(int argc, char** argv) {
  std::string models = "models";
  std::string input = "patient.tnsr";
  std::string trace_out;
  double threshold = 0.35;
  bool use_enhancement = true;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--models") && i + 1 < argc) {
      models = argv[++i];
    } else if (!std::strcmp(argv[i], "--input") && i + 1 < argc) {
      input = argv[++i];
    } else if (!std::strcmp(argv[i], "--threshold") && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--no-enhance")) {
      use_enhancement = false;
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      set_num_threads(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--simd") && i + 1 < argc) {
      if (!simd::set_backend_spec(argv[++i])) {
        std::fprintf(stderr, "--simd: unknown backend '%s' (scalar|sse2|avx2|auto)\n",
                     argv[i]);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
      trace::set_level(1);
    } else {
      std::printf(
          "usage: ccovid_diagnose --models D --input F "
          "[--threshold T] [--no-enhance] [--threads N]\n"
          "                [--simd MODE] [--trace-out PATH]\n");
      return !std::strcmp(argv[i], "--help") ? 0 : 1;
    }
  }

  // Architectures must match ccovid_train's configurations.
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  enh->network().load(models + "/ddnet.tnsr");
  seg->network().load(models + "/ahnet.tnsr");
  cls->network().load(models + "/densenet3d.tnsr");
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);

  const TensorMap patient = load_tensor_map(input);
  const auto it = patient.find("hu");
  if (it == patient.end()) {
    std::fprintf(stderr, "input %s has no 'hu' volume\n", input.c_str());
    return 1;
  }

  pipeline::ComputeCovid19Pipeline clinic(enh, seg, cls);
  const pipeline::Diagnosis dx =
      clinic.diagnose(it->second, use_enhancement, threshold);

  std::printf("ComputeCOVID19+ report for %s\n", input.c_str());
  std::printf("  enhancement        : %s\n",
              use_enhancement ? "on (DDnet)" : "off");
  std::printf("  P(COVID-19+)       : %.4f\n", dx.probability);
  std::printf("  decision @ %.2f    : %s\n", threshold,
              dx.positive ? "POSITIVE" : "negative");
  const auto label_it = patient.find("label");
  if (label_it != patient.end()) {
    const bool truth = label_it->second.at(0) > 0.5f;
    std::printf("  ground truth       : %s (%s)\n",
                truth ? "POSITIVE" : "negative",
                truth == dx.positive ? "correct" : "MISSED");
  }
  if (!trace_out.empty()) {
    if (trace::write_chrome_json(trace_out)) {
      std::printf("trace written to %s (chrome://tracing)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    }
  }
  return 0;
}
