// ccovid_serve — run the batching inference-serving runtime against a
// stream of phantom CT volumes (or models trained by ccovid_train).
//
//   ccovid_serve [--volumes N] [--depth D] [--size PX] [--seed S]
//                [--workers W] [--batch B] [--batch-delay-us U]
//                [--queue-cap Q] [--deadline-ms MS] [--stall-ms MS]
//                [--interval-ms MS] [--threshold T] [--no-enhance]
//                [--models DIR] [--json PATH]
//                [--failpoints SPECS] [--fault-seed S]
//                [--retries N] [--degrade] [--recv-timeout S]
//
// --failpoints arms seeded fault schedules (grammar in DESIGN.md, e.g.
// "serve.worker.exec=prob(0.2)*error;serve.queue.admit=nth(3)") so the
// runtime's retry/degradation behavior can be exercised from the shell;
// --fault-seed pins the schedule RNG (defaults to --seed), and
// --retries/--degrade turn on retry-with-backoff and the reduced
// (enhancement-off) fallback workflow.
//
// Sharded multi-process mode (serve/shard.h):
//
//   ccovid_serve --role front --shards N     spawns N worker processes
//       (this binary, --role worker) on Unix sockets, hash-routes the
//       phantom stream across them, health-checks with heartbeats and
//       fails over on worker death. --connect SPEC,SPEC joins
//       pre-started workers instead of spawning (unix:/path or
//       tcp:host:port). --kill-shard K --kill-after M SIGKILLs worker K
//       after M responses (worker-kill chaos); --verify recomputes every
//       volume on an in-process server and checks the probability bits
//       match; --shard-json PATH records a BENCH_shard.json-style
//       summary for scripts/check_bench.py.
//   ccovid_serve --role worker --listen SPEC serves one shard: accepts
//       a front door, runs requests through a local InferenceServer,
//       and re-accepts after a front-door restart.
//
// Without --models the pipeline uses seeded randomly-initialized compact
// networks (deterministic, self-contained demo); with --models it loads
// the ccovid_train weights like ccovid_diagnose does. Volumes alternate
// healthy / COVID-positive phantoms, are submitted --interval-ms apart
// (0 = as fast as possible, exercising admission backpressure), and the
// run ends with a graceful drain plus a ServerStats JSON dump.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/precision.h"
#include "core/simd.h"
#include "graph/graph.h"
#include "data/phantom.h"
#include "fault/failpoint.h"
#include "net/error.h"
#include "net/socket.h"
#include "net/transport.h"
#include "nn/layers.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "serve/shard_spawn.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

namespace {

struct ToolArgs {
  int volumes = 8;
  index_t depth = 4;
  index_t size = 16;
  std::uint64_t seed = 42;
  int workers = 2;
  std::size_t batch = 4;
  long batch_delay_us = 2000;
  std::size_t queue_cap = 16;
  long deadline_ms = 0;
  double stall_ms = 0.0;
  long interval_ms = 0;
  double threshold = 0.35;
  bool use_enhancement = true;
  std::string models;  // empty = seeded random init
  std::string json_path;
  std::string failpoints;       // empty = no fault injection
  std::uint64_t fault_seed = 0; // 0 = reuse --seed
  int retries = 0;
  bool degrade = false;
  std::string trace_out;  // empty = tracing off

  // Longitudinal monitoring mode (serve/monitor.h).
  bool monitor = false;
  int rescans = 0;             // follow-up scan rounds per patient
  std::size_t cache_cap = 256;
  std::size_t session_cap = 1024;
  double session_ttl_s = 0.0;  // 0 = never expire

  // Sharded mode (serve/shard.h).
  std::string role = "single";  // single | front | worker
  int shards = 2;
  std::string listen_spec;     // worker: endpoint to listen on
  std::string connect_specs;   // front: comma-separated worker endpoints
  int shard_id = 0;            // worker: identity (logging only)
  double recv_timeout_s = ccovid::net::default_recv_timeout_s();
  double hb_interval_ms = 100.0;
  int hb_miss_limit = 5;
  int max_failovers = 2;
  int kill_shard = -1;    // front chaos: SIGKILL this shard's worker...
  long kill_after = 0;    // ...after this many responses arrived
  std::string worker_failpoints;  // front: --failpoints for spawned workers
  std::string shard_json;         // front: BENCH_shard.json-style output
  bool verify = false;            // front: bitwise-check vs local server
  double accept_timeout_s = 30.0; // worker: give up when no front door
  std::string socket_dir = "/tmp";
};

void usage() {
  std::printf(
      "usage: ccovid_serve [--volumes N] [--depth D] [--size PX]\n"
      "                    [--seed S] [--workers W] [--batch B]\n"
      "                    [--batch-delay-us U] [--queue-cap Q]\n"
      "                    [--deadline-ms MS] [--stall-ms MS]\n"
      "                    [--interval-ms MS] [--threshold T]\n"
      "                    [--no-enhance] [--models DIR] [--json PATH]\n"
      "                    [--failpoints SPECS] [--fault-seed S]\n"
      "                    [--retries N] [--degrade] [--threads N]\n"
      "                    [--simd MODE] [--graph-fusion on|off]\n"
      "                    [--precision fp32|fp16|bf16|int8]\n"
      "                    [--trace-out PATH]\n"
      "                    [--recv-timeout S]\n"
      "  monitoring:       [--monitor] [--rescans N] [--cache-cap N]\n"
      "                    [--session-cap N] [--session-ttl S]\n"
      "  sharded:          [--role front|worker|single] [--shards N]\n"
      "                    [--connect SPEC,SPEC] [--listen SPEC]\n"
      "                    [--shard-id K] [--hb-interval-ms MS]\n"
      "                    [--hb-miss-limit N] [--max-failovers N]\n"
      "                    [--kill-shard K] [--kill-after M]\n"
      "                    [--worker-failpoints SPECS] [--verify]\n"
      "                    [--shard-json PATH] [--accept-timeout S]\n"
      "                    [--socket-dir DIR]\n"
      "  SPEC is unix:/path or tcp:host:port\n");
}

bool parse(int argc, char** argv, ToolArgs& a) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--volumes")) {
      if (!(v = next(arg))) return false;
      a.volumes = std::atoi(v);
    } else if (!std::strcmp(arg, "--depth")) {
      if (!(v = next(arg))) return false;
      a.depth = std::atoll(v);
    } else if (!std::strcmp(arg, "--size")) {
      if (!(v = next(arg))) return false;
      a.size = std::atoll(v);
    } else if (!std::strcmp(arg, "--seed")) {
      if (!(v = next(arg))) return false;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--workers")) {
      if (!(v = next(arg))) return false;
      a.workers = std::atoi(v);
    } else if (!std::strcmp(arg, "--batch")) {
      if (!(v = next(arg))) return false;
      a.batch = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--batch-delay-us")) {
      if (!(v = next(arg))) return false;
      a.batch_delay_us = std::atol(v);
    } else if (!std::strcmp(arg, "--queue-cap")) {
      if (!(v = next(arg))) return false;
      a.queue_cap = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--deadline-ms")) {
      if (!(v = next(arg))) return false;
      a.deadline_ms = std::atol(v);
    } else if (!std::strcmp(arg, "--stall-ms")) {
      if (!(v = next(arg))) return false;
      a.stall_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--interval-ms")) {
      if (!(v = next(arg))) return false;
      a.interval_ms = std::atol(v);
    } else if (!std::strcmp(arg, "--threshold")) {
      if (!(v = next(arg))) return false;
      a.threshold = std::atof(v);
    } else if (!std::strcmp(arg, "--no-enhance")) {
      a.use_enhancement = false;
    } else if (!std::strcmp(arg, "--models")) {
      if (!(v = next(arg))) return false;
      a.models = v;
    } else if (!std::strcmp(arg, "--json")) {
      if (!(v = next(arg))) return false;
      a.json_path = v;
    } else if (!std::strcmp(arg, "--failpoints")) {
      if (!(v = next(arg))) return false;
      a.failpoints = v;
    } else if (!std::strcmp(arg, "--fault-seed")) {
      if (!(v = next(arg))) return false;
      a.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--retries")) {
      if (!(v = next(arg))) return false;
      a.retries = std::atoi(v);
    } else if (!std::strcmp(arg, "--degrade")) {
      a.degrade = true;
    } else if (!std::strcmp(arg, "--monitor")) {
      a.monitor = true;
    } else if (!std::strcmp(arg, "--rescans")) {
      if (!(v = next(arg))) return false;
      a.rescans = std::atoi(v);
    } else if (!std::strcmp(arg, "--cache-cap")) {
      if (!(v = next(arg))) return false;
      a.cache_cap = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--session-cap")) {
      if (!(v = next(arg))) return false;
      a.session_cap = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--session-ttl")) {
      if (!(v = next(arg))) return false;
      a.session_ttl_s = std::atof(v);
    } else if (!std::strcmp(arg, "--threads")) {
      if (!(v = next(arg))) return false;
      set_num_threads(std::atoi(v));
    } else if (!std::strcmp(arg, "--simd")) {
      if (!(v = next(arg))) return false;
      if (!simd::set_backend_spec(v)) {
        std::fprintf(stderr,
                     "--simd: unknown backend '%s' (scalar|sse2|avx2|auto)\n",
                     v);
        return false;
      }
    } else if (!std::strcmp(arg, "--precision")) {
      if (!(v = next(arg))) return false;
      core::Precision p;
      if (!core::parse_precision(v, &p)) {
        std::fprintf(stderr,
                     "--precision: unknown format '%s' "
                     "(fp32|fp16|bf16|int8)\n",
                     v);
        return false;
      }
      core::set_active_precision(p);
    } else if (!std::strcmp(arg, "--graph-fusion")) {
      if (!(v = next(arg))) return false;
      if (!std::strcmp(v, "on")) {
        graph::set_fusion_enabled(true);
      } else if (!std::strcmp(v, "off")) {
        graph::set_fusion_enabled(false);
      } else {
        std::fprintf(stderr, "--graph-fusion: expected on|off\n");
        return false;
      }
    } else if (!std::strcmp(arg, "--trace-out")) {
      if (!(v = next(arg))) return false;
      a.trace_out = v;
      trace::set_level(1);
    } else if (!std::strcmp(arg, "--role")) {
      if (!(v = next(arg))) return false;
      a.role = v;
      if (a.role != "single" && a.role != "front" && a.role != "worker") {
        std::fprintf(stderr, "--role: expected single|front|worker\n");
        return false;
      }
    } else if (!std::strcmp(arg, "--shards")) {
      if (!(v = next(arg))) return false;
      a.shards = std::atoi(v);
    } else if (!std::strcmp(arg, "--listen")) {
      if (!(v = next(arg))) return false;
      a.listen_spec = v;
    } else if (!std::strcmp(arg, "--connect")) {
      if (!(v = next(arg))) return false;
      a.connect_specs = v;
    } else if (!std::strcmp(arg, "--shard-id")) {
      if (!(v = next(arg))) return false;
      a.shard_id = std::atoi(v);
    } else if (!std::strcmp(arg, "--recv-timeout")) {
      if (!(v = next(arg))) return false;
      a.recv_timeout_s = std::atof(v);
      if (a.recv_timeout_s <= 0) {
        std::fprintf(stderr, "--recv-timeout: expected seconds > 0\n");
        return false;
      }
    } else if (!std::strcmp(arg, "--hb-interval-ms")) {
      if (!(v = next(arg))) return false;
      a.hb_interval_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--hb-miss-limit")) {
      if (!(v = next(arg))) return false;
      a.hb_miss_limit = std::atoi(v);
    } else if (!std::strcmp(arg, "--max-failovers")) {
      if (!(v = next(arg))) return false;
      a.max_failovers = std::atoi(v);
    } else if (!std::strcmp(arg, "--kill-shard")) {
      if (!(v = next(arg))) return false;
      a.kill_shard = std::atoi(v);
    } else if (!std::strcmp(arg, "--kill-after")) {
      if (!(v = next(arg))) return false;
      a.kill_after = std::atol(v);
    } else if (!std::strcmp(arg, "--worker-failpoints")) {
      if (!(v = next(arg))) return false;
      a.worker_failpoints = v;
    } else if (!std::strcmp(arg, "--verify")) {
      a.verify = true;
    } else if (!std::strcmp(arg, "--shard-json")) {
      if (!(v = next(arg))) return false;
      a.shard_json = v;
    } else if (!std::strcmp(arg, "--accept-timeout")) {
      if (!(v = next(arg))) return false;
      a.accept_timeout_s = std::atof(v);
    } else if (!std::strcmp(arg, "--socket-dir")) {
      if (!(v = next(arg))) return false;
      a.socket_dir = v;
    } else {
      usage();
      return std::strcmp(arg, "--help") == 0 ? (std::exit(0), false)
                                             : false;
    }
  }
  return true;
}

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> build_pipeline(
    const ToolArgs& a) {
  // Architectures match ccovid_train / ccovid_diagnose.
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  nn::seed_init_rng(a.seed);
  auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  if (!a.models.empty()) {
    try {
      enh->network().load(a.models + "/ddnet.tnsr");
      seg->network().load(a.models + "/ahnet.tnsr");
      cls->network().load(a.models + "/densenet3d.tnsr");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccovid_serve: cannot load models from %s: %s\n",
                   a.models.c_str(), e.what());
      return nullptr;
    }
  }
  // The registry only serves eval-mode (immutable) models.
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

serve::ServerOptions server_options(const ToolArgs& a) {
  serve::ServerOptions opt;
  opt.queue_capacity = a.queue_cap;
  opt.max_batch = a.batch;
  opt.batch_delay = std::chrono::microseconds(a.batch_delay_us);
  opt.workers = a.workers;
  opt.default_deadline = std::chrono::milliseconds(a.deadline_ms);
  opt.device_stall_s = a.stall_ms * 1e-3;
  opt.max_retries = a.retries;
  opt.degrade_on_failure = a.degrade;
  opt.monitor = a.monitor;
  opt.monitor_opts.cache_capacity = a.cache_cap;
  opt.monitor_opts.session_capacity = a.session_cap;
  opt.monitor_opts.session_ttl_s = a.session_ttl_s;
  return opt;
}

std::vector<data::PhantomVolume> make_patients(const ToolArgs& a) {
  // Alternating negative / positive phantoms; seeded, so the front
  // door, workers' --verify twin, and the single-process path all see
  // identical voxels.
  Rng rng(a.seed);
  std::vector<data::PhantomVolume> patients;
  patients.reserve(static_cast<std::size_t>(a.volumes));
  for (int i = 0; i < a.volumes; ++i) {
    patients.push_back(data::make_volume(a.depth, a.size, i % 2 == 1, rng));
  }
  return patients;
}

// Follow-up volumes for monitoring mode. Scan rounds alternate: even
// rounds re-submit each patient's baseline volume (deterministic cache
// hits whose bits must equal round 0's recomputation), odd rounds
// submit this distinct follow-up (real burden deltas). Seeded, so every
// process — front door, workers, the --verify twin — sees the same
// voxels.
std::vector<data::PhantomVolume> make_followups(const ToolArgs& a) {
  Rng rng(a.seed ^ 0x6d6f6e69746f72ull);
  std::vector<data::PhantomVolume> scans;
  scans.reserve(static_cast<std::size_t>(a.volumes));
  for (int i = 0; i < a.volumes; ++i) {
    scans.push_back(data::make_volume(a.depth, a.size, i % 2 == 1, rng));
  }
  return scans;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", s);
  return buf;
}

// ------------------------------------------------------- worker role

int run_worker(const ToolArgs& a) {
  if (a.listen_spec.empty()) {
    std::fprintf(stderr, "ccovid_serve: --role worker needs --listen\n");
    return 1;
  }
  auto pipe = build_pipeline(a);
  if (!pipe) return 1;
  serve::ShardWorkerOptions wopt;
  wopt.server = server_options(a);
  wopt.recv_timeout_s = a.recv_timeout_s;
  try {
    net::Endpoint ep = net::Endpoint::parse(a.listen_spec);
    net::SocketListener listener(ep);
    std::fprintf(stderr, "ccovid_serve worker %d: listening on %s (pid %d)\n",
                 a.shard_id, listener.endpoint().str().c_str(),
                 static_cast<int>(::getpid()));
    const std::uint64_t served =
        serve::run_worker_listener(listener, std::move(pipe), wopt,
                                   a.accept_timeout_s);
    std::fprintf(stderr, "ccovid_serve worker %d: served %llu request(s)\n",
                 a.shard_id, static_cast<unsigned long long>(served));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ccovid_serve worker %d: %s\n", a.shard_id,
                 e.what());
    return 1;
  }
  return 0;
}

// --------------------------------------------------- front-door role

std::vector<std::string> worker_argv(const ToolArgs& a, const std::string& exe,
                                     int shard, const std::string& spec) {
  std::vector<std::string> argv = {
      exe, "--role", "worker", "--listen", spec,
      "--shard-id", std::to_string(shard),
      "--seed", std::to_string(a.seed),
      "--workers", std::to_string(a.workers),
      "--batch", std::to_string(a.batch),
      "--batch-delay-us", std::to_string(a.batch_delay_us),
      "--queue-cap", std::to_string(a.queue_cap),
      "--retries", std::to_string(a.retries),
      "--recv-timeout", format_seconds(a.recv_timeout_s),
  };
  if (a.stall_ms > 0) {
    argv.push_back("--stall-ms");
    argv.push_back(format_seconds(a.stall_ms));
  }
  if (a.degrade) argv.push_back("--degrade");
  if (a.monitor) {
    argv.push_back("--monitor");
    argv.push_back("--cache-cap");
    argv.push_back(std::to_string(a.cache_cap));
    argv.push_back("--session-cap");
    argv.push_back(std::to_string(a.session_cap));
    if (a.session_ttl_s > 0) {
      argv.push_back("--session-ttl");
      argv.push_back(format_seconds(a.session_ttl_s));
    }
  }
  if (core::active_precision() != core::Precision::kF32) {
    // Spawned workers must run the same storage format as the front
    // door's --verify twin, or the bitwise check would compare formats.
    argv.push_back("--precision");
    argv.push_back(core::precision_name(core::active_precision()));
  }
  if (!a.models.empty()) {
    argv.push_back("--models");
    argv.push_back(a.models);
  }
  if (!a.worker_failpoints.empty()) {
    argv.push_back("--failpoints");
    argv.push_back(a.worker_failpoints);
    argv.push_back("--fault-seed");
    argv.push_back(std::to_string(a.fault_seed ? a.fault_seed : a.seed));
  }
  return argv;
}

int run_front(const ToolArgs& a) {
  if (a.shards < 1) {
    std::fprintf(stderr, "ccovid_serve: --shards must be >= 1\n");
    return 1;
  }

  // Worker endpoints: join pre-started ones (--connect) or spawn our
  // own binary in worker role on per-shard Unix sockets.
  std::vector<net::Endpoint> eps;
  std::vector<int> pids;          // spawned workers only
  std::vector<std::string> unix_paths;  // spawned socket files (cleanup)
  if (!a.connect_specs.empty()) {
    std::string specs = a.connect_specs;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = specs.find(',', pos);
      const std::string one =
          specs.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!one.empty()) eps.push_back(net::Endpoint::parse(one));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
    if (eps.empty()) {
      std::fprintf(stderr, "ccovid_serve: --connect: no endpoints\n");
      return 1;
    }
  } else {
    const std::string exe = serve::self_exe_path();
    for (int i = 0; i < a.shards; ++i) {
      const std::string path = a.socket_dir + "/ccovid_shard_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(i) + ".sock";
      const std::string spec = "unix:" + path;
      unix_paths.push_back(path);
      eps.push_back(net::Endpoint::parse(spec));
      pids.push_back(serve::spawn_process(worker_argv(a, exe, i, spec)));
    }
  }
  const int n = static_cast<int>(eps.size());

  auto reap_workers = [&] {
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (serve::wait_process(pids[i], 5.0) == -1) {
        serve::kill_process(pids[i], SIGKILL);
        serve::wait_process(pids[i], 5.0);
      }
    }
    for (const auto& p : unix_paths) ::unlink(p.c_str());
  };

  std::printf("ccovid_serve front: %d shard(s) over %s, %s\n", n,
              eps[0].kind == net::Endpoint::Kind::kUnix ? "unix sockets"
                                                        : "tcp",
              pids.empty() ? "pre-started workers" : "spawned workers");

  int rc = 0;
  bool bitwise_match = true;
  int lost = 0, completed = 0, correct = 0;
  double elapsed = 0.0, single_elapsed = 0.0;
  std::string stats;
  std::uint64_t failed_over = 0, hb_misses = 0;
  try {
    std::vector<std::unique_ptr<net::Transport>> transports;
    for (int i = 0; i < n; ++i) {
      // Generous connect window: spawned workers build their pipeline
      // before binding the listener.
      transports.push_back(net::connect_endpoint(eps[i], 15.0, 0, i));
    }
    serve::FrontDoorOptions fopt;
    fopt.recv_timeout_s = a.recv_timeout_s;
    fopt.heartbeat_interval_s = a.hb_interval_ms * 1e-3;
    fopt.heartbeat_miss_limit = a.hb_miss_limit;
    fopt.max_failovers = a.max_failovers;
    fopt.monitor = a.monitor;
    serve::FrontDoor front(std::move(transports), fopt);

    const auto patients = make_patients(a);
    const auto followups = make_followups(a);
    serve::ServeOptions sopt;
    sopt.use_enhancement = a.use_enhancement;
    sopt.threshold = a.threshold;

    // Monitoring: each round is one scan per patient; the front door is
    // the ordinal authority, and rounds are collected before the next
    // one submits (a patient's follow-up scan never overtakes its
    // predecessor — the sequential-per-patient contract).
    const int rounds = 1 + (a.monitor ? a.rescans : 0);
    std::vector<const data::PhantomVolume*> scans;  // flat submit order
    std::vector<serve::DiagnoseResponse> responses;
    bool killed = false;
    long got = 0;
    WallTimer wall;
    for (int round = 0; round < rounds; ++round) {
      std::vector<std::future<serve::DiagnoseResponse>> futures;
      futures.reserve(patients.size());
      for (std::size_t i = 0; i < patients.size(); ++i) {
        const data::PhantomVolume& vol =
            round % 2 == 0 ? patients[i] : followups[i];
        scans.push_back(&vol);
        // Patient ids are stable across runs so routing is reproducible.
        futures.push_back(front.submit(
            1000 + static_cast<std::uint64_t>(i), vol.hu, sopt));
        if (a.interval_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(a.interval_ms));
        }
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        if (!killed && a.kill_shard >= 0 && a.kill_shard < n &&
            got == a.kill_after) {
          const std::uint32_t pid = front.worker_pid(a.kill_shard);
          if (pid != 0) {
            std::printf("chaos: SIGKILL shard %d (pid %u) after %ld "
                        "response(s)\n",
                        a.kill_shard, pid, got);
            serve::kill_process(static_cast<int>(pid), SIGKILL);
          }
          killed = true;
        }
        responses.push_back(futures[i].get());
        ++got;
        const auto& r = responses.back();
        const bool truth = scans[responses.size() - 1]->label != 0;
        if (r.status == serve::RequestStatus::kOk) {
          ++completed;
          correct += truth == r.diagnosis.positive;
        } else {
          ++lost;
          std::printf("  #%-3llu %-9s %s\n",
                      static_cast<unsigned long long>(r.request_id),
                      serve::to_string(r.status), r.error.c_str());
        }
      }
    }
    elapsed = wall.seconds();
    front.shutdown();
    failed_over = front.failed_over();
    hb_misses = front.heartbeat_misses();
    stats = front.stats_json();

    if (a.verify) {
      // Bitwise check: the same seed builds the same weights here as in
      // every worker, so each probability must match exactly. The twin
      // runs WITHOUT a monitor, so every scan is recomputed — sharded
      // responses served from the result cache must still match it
      // bit-for-bit (the no-stale-bits invariant, end to end).
      auto pipe = build_pipeline(a);
      if (!pipe) return 1;
      serve::ServerOptions lopt = server_options(a);
      lopt.monitor = false;
      serve::InferenceServer local(std::move(pipe), lopt);
      // Submit round-by-round like the serving loop did: the whole
      // scan stream can exceed the admission queue bound.
      WallTimer single_wall;
      std::vector<std::future<serve::DiagnoseResponse>> lf;
      lf.reserve(scans.size());
      for (std::size_t base = 0; base < scans.size();
           base += patients.size()) {
        std::vector<std::future<serve::DiagnoseResponse>> roundf;
        for (std::size_t i = base;
             i < base + patients.size() && i < scans.size(); ++i) {
          roundf.push_back(local.submit(scans[i]->hu, sopt));
        }
        for (auto& f : roundf) f.wait();
        for (auto& f : roundf) lf.push_back(std::move(f));
      }
      for (std::size_t i = 0; i < lf.size(); ++i) {
        const serve::DiagnoseResponse e = lf[i].get();
        if (responses[i].status != serve::RequestStatus::kOk) continue;
        if (e.status != serve::RequestStatus::kOk) {
          bitwise_match = false;
          std::printf("verify: local twin failed at #%zu: %s %s\n", i,
                      serve::to_string(e.status), e.error.c_str());
          continue;
        }
        if (std::memcmp(&e.diagnosis.probability,
                        &responses[i].diagnosis.probability,
                        sizeof(double)) != 0 ||
            e.diagnosis.positive != responses[i].diagnosis.positive) {
          bitwise_match = false;
          std::printf("verify: MISMATCH at #%zu: sharded P=%.17g, "
                      "single P=%.17g\n",
                      i, responses[i].diagnosis.probability,
                      e.diagnosis.probability);
        }
        if (a.monitor &&
            std::memcmp(&e.diagnosis.infection_burden,
                        &responses[i].infection_burden,
                        sizeof(double)) != 0) {
          bitwise_match = false;
          std::printf("verify: BURDEN MISMATCH at #%zu: sharded %.17g "
                      "(cache_hit=%d), single %.17g\n",
                      i, responses[i].infection_burden,
                      responses[i].cache_hit ? 1 : 0,
                      e.diagnosis.infection_burden);
        }
      }
      single_elapsed = single_wall.seconds();
      local.shutdown();
      std::printf("verify: %s (single-process pass: %.2fs)\n",
                  bitwise_match ? "bitwise identical" : "MISMATCH",
                  single_elapsed);
    }

    std::printf("\n%d/%zu completed (%d correct, %d lost, %llu failed "
                "over, %llu heartbeat misses) in %.2fs — %.2f volumes/s\n",
                completed, scans.size(), correct, lost,
                static_cast<unsigned long long>(failed_over),
                static_cast<unsigned long long>(hb_misses), elapsed,
                completed / elapsed);
    std::printf("stats: %s\n", stats.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ccovid_serve front: %s\n", e.what());
    rc = 1;
  }
  reap_workers();

  if (!a.json_path.empty() && !stats.empty()) {
    std::FILE* f = std::fopen(a.json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "%s\n", stats.c_str());
      std::fclose(f);
    }
  }
  if (!a.shard_json.empty() && rc == 0) {
    std::FILE* f = std::fopen(a.shard_json.c_str(), "w");
    if (f) {
      std::fprintf(
          f,
          "{\"shard_runs\":[{\"transport\":\"%s\",\"shards\":%d,"
          "\"volumes\":%d,\"achieved_vps\":%.4f,\"single_vps\":%.4f,"
          "\"bitwise_match\":%s,\"lost\":%d,\"failed_over\":%llu,"
          "\"heartbeat_misses\":%llu,\"killed\":%s}]}\n",
          eps[0].kind == net::Endpoint::Kind::kUnix ? "unix" : "tcp", n,
          a.volumes, completed / (elapsed > 0 ? elapsed : 1.0),
          a.verify && single_elapsed > 0 ? completed / single_elapsed : 0.0,
          bitwise_match ? "true" : "false", lost,
          static_cast<unsigned long long>(failed_over),
          static_cast<unsigned long long>(hb_misses),
          a.kill_shard >= 0 ? "true" : "false");
      std::fclose(f);
      std::printf("shard bench written to %s\n", a.shard_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", a.shard_json.c_str());
    }
  }
  if (lost > 0 || !bitwise_match) rc = rc ? rc : 2;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  ToolArgs a;
  if (!parse(argc, argv, a)) return 1;

  const serve::ServerOptions opt = server_options(a);

  if (!a.failpoints.empty()) {
    const std::uint64_t fseed = a.fault_seed ? a.fault_seed : a.seed;
    fault::Registry::instance().set_seed(fseed);
    try {
      const int n = fault::Registry::instance().configure(a.failpoints);
      std::printf("failpoints: %d schedule(s) armed, fault seed %llu\n", n,
                  static_cast<unsigned long long>(fseed));
      if (!fault::kCompiledIn) {
        std::fprintf(stderr,
                     "ccovid_serve: warning: this binary was built with "
                     "CCOVID_DISABLE_FAILPOINTS; armed schedules cannot "
                     "fire\n");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccovid_serve: %s\n", e.what());
      return 1;
    }
  }

  if (a.role == "worker") return run_worker(a);
  if (a.role == "front") return run_front(a);

  std::printf("ccovid_serve: %d worker(s), batch<=%zu/%ldus, queue cap %zu"
              "%s%s\n",
              opt.workers, opt.max_batch, a.batch_delay_us,
              opt.queue_capacity,
              a.models.empty() ? ", seeded random-init models"
                               : ", models from ",
              a.models.c_str());

  auto pipe = build_pipeline(a);
  if (!pipe) return 1;
  serve::InferenceServer server(std::move(pipe), opt);

  const std::vector<data::PhantomVolume> patients = make_patients(a);
  const std::vector<data::PhantomVolume> followups = make_followups(a);

  serve::ServeOptions sopt;
  sopt.use_enhancement = a.use_enhancement;
  sopt.threshold = a.threshold;

  // Monitoring: rounds of one scan per patient, collected round by
  // round so a patient's scans observe the session store in order.
  const int rounds = 1 + (a.monitor ? a.rescans : 0);
  std::size_t submitted = 0;
  int correct = 0, completed = 0;
  WallTimer wall;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::future<serve::DiagnoseResponse>> futures;
    futures.reserve(patients.size());
    for (std::size_t i = 0; i < patients.size(); ++i) {
      const data::PhantomVolume& vol =
          round % 2 == 0 ? patients[i] : followups[i];
      serve::ServeOptions so = sopt;
      if (a.monitor) so.patient_id = 1000 + static_cast<std::uint64_t>(i);
      futures.push_back(server.submit(vol.hu, so));
      ++submitted;
      if (a.interval_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(a.interval_ms));
      }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const serve::DiagnoseResponse r = futures[i].get();
      const bool truth =
          (round % 2 == 0 ? patients[i] : followups[i]).label != 0;
      if (r.status == serve::RequestStatus::kOk) {
        ++completed;
        const bool ok = truth == r.diagnosis.positive;
        correct += ok;
        char mon[96] = "";
        if (r.scan_seq > 0) {
          std::snprintf(mon, sizeof(mon),
                        " seq=%llu burden=%.4f d=%+.4f%s",
                        static_cast<unsigned long long>(r.scan_seq),
                        r.infection_burden, r.burden_delta,
                        r.cache_hit ? " [hit]" : "");
        }
        std::printf(
            "  #%-3llu %-9s P=%.4f -> %-8s truth=%-8s batch=%zu "
            "queue=%.1fms exec=%.1fms total=%.1fms%s%s%s\n",
            static_cast<unsigned long long>(r.request_id),
            serve::to_string(r.status), r.diagnosis.probability,
            r.diagnosis.positive ? "POSITIVE" : "negative",
            truth ? "POSITIVE" : "negative", r.batch_size, 1e3 * r.queue_s,
            1e3 * r.execute_s, 1e3 * r.total_s,
            r.retries > 0 ? " [retried]" : "",
            r.degraded ? " [degraded]" : "", mon);
      } else {
        std::printf("  #%-3llu %-9s %s\n",
                    static_cast<unsigned long long>(r.request_id),
                    serve::to_string(r.status), r.error.c_str());
      }
    }
  }
  const double elapsed = wall.seconds();
  server.shutdown();

  std::printf("\n%d/%zu completed (%d calls correct) in %.2fs — "
              "%.2f volumes/s\n",
              completed, submitted, correct, elapsed,
              completed / elapsed);
  const std::string stats = server.stats_json();
  std::printf("stats: %s\n", stats.c_str());
  if (trace::enabled()) {
    std::printf("\ntrace spans (merged across threads):\n%s",
                trace::table(trace::aggregate(trace::snapshot())).c_str());
  }
  if (!a.json_path.empty()) {
    std::FILE* f = std::fopen(a.json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "%s\n", stats.c_str());
      std::fclose(f);
      std::printf("stats written to %s\n", a.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", a.json_path.c_str());
    }
  }
  if (!a.trace_out.empty()) {
    if (trace::write_chrome_json(a.trace_out)) {
      std::printf("trace written to %s (chrome://tracing)\n",
                  a.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", a.trace_out.c_str());
    }
  }
  return 0;
}
