// ccovid_serve — run the batching inference-serving runtime against a
// stream of phantom CT volumes (or models trained by ccovid_train).
//
//   ccovid_serve [--volumes N] [--depth D] [--size PX] [--seed S]
//                [--workers W] [--batch B] [--batch-delay-us U]
//                [--queue-cap Q] [--deadline-ms MS] [--stall-ms MS]
//                [--interval-ms MS] [--threshold T] [--no-enhance]
//                [--models DIR] [--json PATH]
//                [--failpoints SPECS] [--fault-seed S]
//                [--retries N] [--degrade]
//
// --failpoints arms seeded fault schedules (grammar in DESIGN.md, e.g.
// "serve.worker.exec=prob(0.2)*error;serve.queue.admit=nth(3)") so the
// runtime's retry/degradation behavior can be exercised from the shell;
// --fault-seed pins the schedule RNG (defaults to --seed), and
// --retries/--degrade turn on retry-with-backoff and the reduced
// (enhancement-off) fallback workflow.
//
// Without --models the pipeline uses seeded randomly-initialized compact
// networks (deterministic, self-contained demo); with --models it loads
// the ccovid_train weights like ccovid_diagnose does. Volumes alternate
// healthy / COVID-positive phantoms, are submitted --interval-ms apart
// (0 = as fast as possible, exercising admission backpressure), and the
// run ends with a graceful drain plus a ServerStats JSON dump.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/simd.h"
#include "data/phantom.h"
#include "fault/failpoint.h"
#include "nn/layers.h"
#include "serve/server.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

namespace {

struct ToolArgs {
  int volumes = 8;
  index_t depth = 4;
  index_t size = 16;
  std::uint64_t seed = 42;
  int workers = 2;
  std::size_t batch = 4;
  long batch_delay_us = 2000;
  std::size_t queue_cap = 16;
  long deadline_ms = 0;
  double stall_ms = 0.0;
  long interval_ms = 0;
  double threshold = 0.35;
  bool use_enhancement = true;
  std::string models;  // empty = seeded random init
  std::string json_path;
  std::string failpoints;       // empty = no fault injection
  std::uint64_t fault_seed = 0; // 0 = reuse --seed
  int retries = 0;
  bool degrade = false;
  std::string trace_out;  // empty = tracing off
};

void usage() {
  std::printf(
      "usage: ccovid_serve [--volumes N] [--depth D] [--size PX]\n"
      "                    [--seed S] [--workers W] [--batch B]\n"
      "                    [--batch-delay-us U] [--queue-cap Q]\n"
      "                    [--deadline-ms MS] [--stall-ms MS]\n"
      "                    [--interval-ms MS] [--threshold T]\n"
      "                    [--no-enhance] [--models DIR] [--json PATH]\n"
      "                    [--failpoints SPECS] [--fault-seed S]\n"
      "                    [--retries N] [--degrade] [--threads N]\n"
      "                    [--simd MODE] [--trace-out PATH]\n");
}

bool parse(int argc, char** argv, ToolArgs& a) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (!std::strcmp(arg, "--volumes")) {
      if (!(v = next(arg))) return false;
      a.volumes = std::atoi(v);
    } else if (!std::strcmp(arg, "--depth")) {
      if (!(v = next(arg))) return false;
      a.depth = std::atoll(v);
    } else if (!std::strcmp(arg, "--size")) {
      if (!(v = next(arg))) return false;
      a.size = std::atoll(v);
    } else if (!std::strcmp(arg, "--seed")) {
      if (!(v = next(arg))) return false;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--workers")) {
      if (!(v = next(arg))) return false;
      a.workers = std::atoi(v);
    } else if (!std::strcmp(arg, "--batch")) {
      if (!(v = next(arg))) return false;
      a.batch = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--batch-delay-us")) {
      if (!(v = next(arg))) return false;
      a.batch_delay_us = std::atol(v);
    } else if (!std::strcmp(arg, "--queue-cap")) {
      if (!(v = next(arg))) return false;
      a.queue_cap = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--deadline-ms")) {
      if (!(v = next(arg))) return false;
      a.deadline_ms = std::atol(v);
    } else if (!std::strcmp(arg, "--stall-ms")) {
      if (!(v = next(arg))) return false;
      a.stall_ms = std::atof(v);
    } else if (!std::strcmp(arg, "--interval-ms")) {
      if (!(v = next(arg))) return false;
      a.interval_ms = std::atol(v);
    } else if (!std::strcmp(arg, "--threshold")) {
      if (!(v = next(arg))) return false;
      a.threshold = std::atof(v);
    } else if (!std::strcmp(arg, "--no-enhance")) {
      a.use_enhancement = false;
    } else if (!std::strcmp(arg, "--models")) {
      if (!(v = next(arg))) return false;
      a.models = v;
    } else if (!std::strcmp(arg, "--json")) {
      if (!(v = next(arg))) return false;
      a.json_path = v;
    } else if (!std::strcmp(arg, "--failpoints")) {
      if (!(v = next(arg))) return false;
      a.failpoints = v;
    } else if (!std::strcmp(arg, "--fault-seed")) {
      if (!(v = next(arg))) return false;
      a.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(arg, "--retries")) {
      if (!(v = next(arg))) return false;
      a.retries = std::atoi(v);
    } else if (!std::strcmp(arg, "--degrade")) {
      a.degrade = true;
    } else if (!std::strcmp(arg, "--threads")) {
      if (!(v = next(arg))) return false;
      set_num_threads(std::atoi(v));
    } else if (!std::strcmp(arg, "--simd")) {
      if (!(v = next(arg))) return false;
      if (!simd::set_backend_spec(v)) {
        std::fprintf(stderr,
                     "--simd: unknown backend '%s' (scalar|sse2|avx2|auto)\n",
                     v);
        return false;
      }
    } else if (!std::strcmp(arg, "--trace-out")) {
      if (!(v = next(arg))) return false;
      a.trace_out = v;
      trace::set_level(1);
    } else {
      usage();
      return std::strcmp(arg, "--help") == 0 ? (std::exit(0), false)
                                             : false;
    }
  }
  return true;
}

std::shared_ptr<const pipeline::ComputeCovid19Pipeline> build_pipeline(
    const ToolArgs& a) {
  // Architectures match ccovid_train / ccovid_diagnose.
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  nn::seed_init_rng(a.seed);
  auto enh = std::make_shared<pipeline::EnhancementAI>(ncfg);
  auto seg = std::make_shared<pipeline::SegmentationAI>();
  auto cls = std::make_shared<pipeline::ClassificationAI>();
  if (!a.models.empty()) {
    try {
      enh->network().load(a.models + "/ddnet.tnsr");
      seg->network().load(a.models + "/ahnet.tnsr");
      cls->network().load(a.models + "/densenet3d.tnsr");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccovid_serve: cannot load models from %s: %s\n",
                   a.models.c_str(), e.what());
      return nullptr;
    }
  }
  // The registry only serves eval-mode (immutable) models.
  enh->network().set_training(false);
  seg->network().set_training(false);
  cls->network().set_training(false);
  return std::make_shared<const pipeline::ComputeCovid19Pipeline>(enh, seg,
                                                                  cls);
}

}  // namespace

int main(int argc, char** argv) {
  ToolArgs a;
  if (!parse(argc, argv, a)) return 1;

  serve::ServerOptions opt;
  opt.queue_capacity = a.queue_cap;
  opt.max_batch = a.batch;
  opt.batch_delay = std::chrono::microseconds(a.batch_delay_us);
  opt.workers = a.workers;
  opt.default_deadline = std::chrono::milliseconds(a.deadline_ms);
  opt.device_stall_s = a.stall_ms * 1e-3;
  opt.max_retries = a.retries;
  opt.degrade_on_failure = a.degrade;

  if (!a.failpoints.empty()) {
    const std::uint64_t fseed = a.fault_seed ? a.fault_seed : a.seed;
    fault::Registry::instance().set_seed(fseed);
    try {
      const int n = fault::Registry::instance().configure(a.failpoints);
      std::printf("failpoints: %d schedule(s) armed, fault seed %llu\n", n,
                  static_cast<unsigned long long>(fseed));
      if (!fault::kCompiledIn) {
        std::fprintf(stderr,
                     "ccovid_serve: warning: this binary was built with "
                     "CCOVID_DISABLE_FAILPOINTS; armed schedules cannot "
                     "fire\n");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ccovid_serve: %s\n", e.what());
      return 1;
    }
  }

  std::printf("ccovid_serve: %d worker(s), batch<=%zu/%ldus, queue cap %zu"
              "%s%s\n",
              opt.workers, opt.max_batch, a.batch_delay_us,
              opt.queue_capacity,
              a.models.empty() ? ", seeded random-init models"
                               : ", models from ",
              a.models.c_str());

  auto pipe = build_pipeline(a);
  if (!pipe) return 1;
  serve::InferenceServer server(std::move(pipe), opt);

  // Phantom stream: alternating negative / positive patients.
  Rng rng(a.seed);
  std::vector<data::PhantomVolume> patients;
  patients.reserve(a.volumes);
  for (int i = 0; i < a.volumes; ++i) {
    patients.push_back(
        data::make_volume(a.depth, a.size, i % 2 == 1, rng));
  }

  serve::ServeOptions sopt;
  sopt.use_enhancement = a.use_enhancement;
  sopt.threshold = a.threshold;

  std::vector<std::future<serve::DiagnoseResponse>> futures;
  futures.reserve(patients.size());
  WallTimer wall;
  for (const auto& p : patients) {
    futures.push_back(server.submit(p.hu, sopt));
    if (a.interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(a.interval_ms));
    }
  }

  int correct = 0, completed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::DiagnoseResponse r = futures[i].get();
    const bool truth = patients[i].label != 0;
    if (r.status == serve::RequestStatus::kOk) {
      ++completed;
      const bool ok = truth == r.diagnosis.positive;
      correct += ok;
      std::printf(
          "  #%-3llu %-9s P=%.4f -> %-8s truth=%-8s batch=%zu "
          "queue=%.1fms exec=%.1fms total=%.1fms%s%s\n",
          static_cast<unsigned long long>(r.request_id),
          serve::to_string(r.status), r.diagnosis.probability,
          r.diagnosis.positive ? "POSITIVE" : "negative",
          truth ? "POSITIVE" : "negative", r.batch_size, 1e3 * r.queue_s,
          1e3 * r.execute_s, 1e3 * r.total_s,
          r.retries > 0 ? " [retried]" : "",
          r.degraded ? " [degraded]" : "");
    } else {
      std::printf("  #%-3llu %-9s %s\n",
                  static_cast<unsigned long long>(r.request_id),
                  serve::to_string(r.status), r.error.c_str());
    }
  }
  const double elapsed = wall.seconds();
  server.shutdown();

  std::printf("\n%d/%zu completed (%d calls correct) in %.2fs — "
              "%.2f volumes/s\n",
              completed, futures.size(), correct, elapsed,
              completed / elapsed);
  const std::string stats = server.stats_json();
  std::printf("stats: %s\n", stats.c_str());
  if (trace::enabled()) {
    std::printf("\ntrace spans (merged across threads):\n%s",
                trace::table(trace::aggregate(trace::snapshot())).c_str());
  }
  if (!a.json_path.empty()) {
    std::FILE* f = std::fopen(a.json_path.c_str(), "w");
    if (f) {
      std::fprintf(f, "%s\n", stats.c_str());
      std::fclose(f);
      std::printf("stats written to %s\n", a.json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", a.json_path.c_str());
    }
  }
  if (!a.trace_out.empty()) {
    if (trace::write_chrome_json(a.trace_out)) {
      std::printf("trace written to %s (chrome://tracing)\n",
                  a.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", a.trace_out.c_str());
    }
  }
  return 0;
}
