// ccovid_sim — synthesize chest phantom volumes and low-dose scans.
//
//   ccovid_sim --out patient.tnsr [--covid] [--depth 16] [--px 64]
//              [--seed 1] [--photons 2e4] [--pgm-dir DIR]
//
// Writes a tensor-map file containing:
//   hu        (D, H, W) ground-truth Hounsfield volume
//   acquired  (D, H, W) low-dose reconstruction, normalized [0, 1]
//   lung_mask (D, H, W) ground-truth lung foreground
//   label     (1)       1 = COVID-positive
// Optionally dumps per-slice PGM panels for inspection.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/image_io.h"
#include "core/parallel.h"
#include "core/serialize.h"
#include "core/simd.h"
#include "ct/hu.h"
#include "data/lowdose.h"
#include "data/phantom.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

int main(int argc, char** argv) {
  std::string out = "patient.tnsr";
  std::string pgm_dir;
  std::string trace_out;
  bool covid = false;
  index_t depth = 16, px = 64;
  std::uint64_t seed = 1;
  double photons = 2e4;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--pgm-dir") && i + 1 < argc) {
      pgm_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--covid")) {
      covid = true;
    } else if (!std::strcmp(argv[i], "--depth") && i + 1 < argc) {
      depth = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--px") && i + 1 < argc) {
      px = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--photons") && i + 1 < argc) {
      photons = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      set_num_threads(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--simd") && i + 1 < argc) {
      if (!simd::set_backend_spec(argv[++i])) {
        std::fprintf(stderr, "--simd: unknown backend '%s' (scalar|sse2|avx2|auto)\n",
                     argv[i]);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
      trace::set_level(1);
    } else {
      std::printf(
          "usage: ccovid_sim --out F [--covid] [--depth D] [--px N] "
          "[--seed S] [--photons B] [--pgm-dir DIR] [--threads N]\n"
          "                 [--simd MODE] [--trace-out PATH]\n");
      return !std::strcmp(argv[i], "--help") ? 0 : 1;
    }
  }

  Rng rng(seed);
  std::printf("synthesizing %s phantom volume %lldx%lldx%lld (seed %llu)\n",
              covid ? "COVID-positive" : "healthy", (long long)depth,
              (long long)px, (long long)px, (unsigned long long)seed);
  const data::PhantomVolume vol = data::make_volume(
      depth, px, covid, rng, /*min_lesion_radius_frac=*/4.0 / double(px));

  std::printf("acquiring through Siddon + Poisson(b=%.0e) + FBP...\n",
              photons);
  data::LowDoseConfig ld;
  ld.geometry = ld.geometry.scaled(px);
  ld.photons_per_ray = photons;
  Tensor acquired({depth, px, px});
  for (index_t z = 0; z < depth; ++z) {
    Tensor slice({px, px});
    std::copy(vol.hu.data() + z * px * px,
              vol.hu.data() + (z + 1) * px * px, slice.data());
    const data::LowDosePair pair = data::make_lowdose_pair(slice, ld, rng);
    std::copy(pair.low.data(), pair.low.data() + px * px,
              acquired.data() + z * px * px);
    if (!pgm_dir.empty()) {
      write_pgm(pgm_dir + "/slice" + std::to_string(z) + "_truth.pgm",
                pair.full, 0.0f, 1.0f);
      write_pgm(pgm_dir + "/slice" + std::to_string(z) + "_acquired.pgm",
                pair.low, 0.0f, 1.0f);
    }
  }

  TensorMap map;
  map["hu"] = vol.hu;
  map["acquired"] = acquired;
  map["lung_mask"] = vol.lung_mask;
  Tensor label({1});
  label.at(0) = static_cast<real_t>(vol.label);
  map["label"] = label;
  save_tensor_map(out, map);
  std::printf("wrote %s (label=%d)\n", out.c_str(), vol.label);
  if (!trace_out.empty()) {
    if (trace::write_chrome_json(trace_out)) {
      std::printf("trace written to %s (chrome://tracing)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    }
  }
  return 0;
}
