// ccovid_train — train the three ComputeCOVID19+ models on synthetic
// data and save their weights for ccovid_diagnose.
//
//   ccovid_train --out-dir models [--px 32] [--depth 8] [--volumes 40]
//                [--epochs 16] [--seed 7]
//
// Produces models/ddnet.tnsr, models/ahnet.tnsr, models/densenet3d.tnsr
// plus a models/manifest.txt recording the configurations.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/parallel.h"
#include "ct/hu.h"
#include "pipeline/classification_ai.h"
#include "pipeline/enhancement_ai.h"
#include "pipeline/segmentation_ai.h"

using namespace ccovid;

int main(int argc, char** argv) {
  std::string out_dir = "models";
  index_t px = 32, depth = 8, volumes = 40;
  int epochs = 16;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out-dir") && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--px") && i + 1 < argc) {
      px = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--depth") && i + 1 < argc) {
      depth = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--volumes") && i + 1 < argc) {
      volumes = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--epochs") && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      set_num_threads(std::atoi(argv[++i]));
    } else {
      std::printf(
          "usage: ccovid_train --out-dir D [--px N] [--depth D] "
          "[--volumes V] [--epochs E] [--seed S] [--threads N]\n");
      return !std::strcmp(argv[i], "--help") ? 0 : 1;
    }
  }

  Rng rng(seed);
  nn::seed_init_rng(seed);

  // --- cohort ---
  data::ClassificationDatasetConfig ccfg;
  ccfg.depth = depth;
  ccfg.image_px = px;
  ccfg.num_train = volumes;
  ccfg.num_test = 0;
  ccfg.min_lesion_radius_frac = 4.0 / double(px);
  std::printf("generating %lld training volumes...\n", (long long)volumes);
  const data::ClassificationDataset cds =
      data::make_classification_dataset(ccfg, rng);

  // --- Enhancement AI ---
  data::EnhancementDatasetConfig ecfg;
  ecfg.image_px = px;
  ecfg.num_train = std::max<index_t>(12, volumes / 2);
  ecfg.num_val = 2;
  ecfg.num_test = 0;
  ecfg.lowdose.photons_per_ray = 2e4;
  const data::EnhancementDataset eds =
      data::make_enhancement_dataset(ecfg, rng);
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  pipeline::EnhancementAI enh(ncfg);
  pipeline::EnhancementTrainConfig etc;
  etc.epochs = epochs;
  etc.lr = 2e-3;
  etc.msssim_scales = 1;
  std::printf("training Enhancement AI (%d epochs)...\n", etc.epochs);
  enh.train(eds, etc, rng);
  enh.network().save(out_dir + "/ddnet.tnsr");

  // --- Segmentation AI ---
  pipeline::SegmentationAI seg;
  pipeline::SegmentationTrainConfig scfg;
  scfg.epochs = std::max(6, epochs / 2);
  scfg.lr = 5e-3;
  std::printf("training Segmentation AI (%d epochs)...\n", scfg.epochs);
  seg.train(cds.train, scfg, rng);
  seg.network().save(out_dir + "/ahnet.tnsr");

  // --- Classification AI ---
  std::vector<Tensor> vols;
  std::vector<int> labels;
  for (const auto& s : cds.train) {
    vols.push_back(ct::normalize_hu(s.hu).mul(s.lung_mask));
    labels.push_back(s.label);
  }
  pipeline::ClassificationAI cls;
  pipeline::ClassificationTrainConfig ctc;
  ctc.epochs = epochs;
  ctc.lr = 1e-3;
  std::printf("training Classification AI (%d epochs)...\n", ctc.epochs);
  cls.train(vols, labels, ctc, rng);
  cls.network().save(out_dir + "/densenet3d.tnsr");

  std::ofstream manifest(out_dir + "/manifest.txt");
  manifest << "px " << px << "\ndepth " << depth << "\nvolumes " << volumes
           << "\nepochs " << epochs << "\nseed " << seed << "\n";
  std::printf("models written to %s/\n", out_dir.c_str());
  return 0;
}
