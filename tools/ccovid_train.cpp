// ccovid_train — train the three ComputeCOVID19+ models on synthetic
// data and save their weights for ccovid_diagnose.
//
//   ccovid_train --out-dir models [--px 32] [--depth 8] [--volumes 40]
//                [--epochs 16] [--seed 7] [--ranks 1]
//                [--collective ring|tree|bcast-halving|auto]
//                [--bucket-kb 1024] [--no-overlap]
//
// With --ranks R > 1 the Enhancement AI trains through dist::DdpTrainer
// (R modeled nodes, bucketed all-reduce overlapped with backward by
// default); --collective picks the all-reduce algorithm (auto defers to
// CCOVID_COLLECTIVE, else the interconnect cost model), --bucket-kb
// sets the gradient bucket budget, and --no-overlap falls back to the
// reduce-after-backward path. All combinations produce bitwise
// identical weights. With --trace-out the per-rank
// ddp.compute/allreduce/apply lanes land in the chrome trace.
//
// Produces models/ddnet.tnsr, models/ahnet.tnsr, models/densenet3d.tnsr
// plus a models/manifest.txt recording the configurations.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/parallel.h"
#include "core/simd.h"
#include "ct/hu.h"
#include "dist/ddp.h"
#include "net/error.h"
#include "pipeline/classification_ai.h"
#include "pipeline/enhancement_ai.h"
#include "pipeline/segmentation_ai.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace ccovid;

int main(int argc, char** argv) {
  std::string out_dir = "models";
  std::string trace_out;
  index_t px = 32, depth = 8, volumes = 40;
  int epochs = 16, ranks = 1;
  std::uint64_t seed = 7;
  // Guarded-transport receive budget for the --ranks path; defaults to
  // CCOVID_RECV_TIMEOUT (else 2 s) — see net/error.h.
  double recv_timeout_s = net::default_recv_timeout_s();
  bool guard = false;
  bool overlap = true;
  std::size_t bucket_kb = 1024;
  dist::Collective collective = dist::Collective::kAuto;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out-dir") && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--px") && i + 1 < argc) {
      px = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--depth") && i + 1 < argc) {
      depth = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--volumes") && i + 1 < argc) {
      volumes = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--epochs") && i + 1 < argc) {
      epochs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      set_num_threads(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--ranks") && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--recv-timeout") && i + 1 < argc) {
      recv_timeout_s = std::atof(argv[++i]);
      guard = true;
      if (recv_timeout_s <= 0) {
        std::fprintf(stderr, "--recv-timeout: expected seconds > 0\n");
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--guard")) {
      guard = true;
    } else if (!std::strcmp(argv[i], "--collective") && i + 1 < argc) {
      const auto parsed = dist::parse_collective(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr,
                     "--collective: unknown algorithm '%s' "
                     "(ring|tree|bcast-halving|auto)\n",
                     argv[i]);
        return 1;
      }
      collective = *parsed;
    } else if (!std::strcmp(argv[i], "--bucket-kb") && i + 1 < argc) {
      const long long kb = std::atoll(argv[++i]);
      if (kb <= 0) {
        std::fprintf(stderr, "--bucket-kb: expected KiB > 0\n");
        return 1;
      }
      bucket_kb = static_cast<std::size_t>(kb);
    } else if (!std::strcmp(argv[i], "--no-overlap")) {
      overlap = false;
    } else if (!std::strcmp(argv[i], "--simd") && i + 1 < argc) {
      if (!simd::set_backend_spec(argv[++i])) {
        std::fprintf(stderr, "--simd: unknown backend '%s' (scalar|sse2|avx2|auto)\n",
                     argv[i]);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc) {
      trace_out = argv[++i];
      trace::set_level(1);
    } else {
      std::printf(
          "usage: ccovid_train --out-dir D [--px N] [--depth D] "
          "[--volumes V] [--epochs E] [--seed S] [--threads N]\n"
          "                   [--ranks R] [--guard] [--recv-timeout S]\n"
          "                   [--collective ring|tree|bcast-halving|auto]\n"
          "                   [--bucket-kb N] [--no-overlap]\n"
          "                   [--simd MODE] [--trace-out PATH]\n");
      return !std::strcmp(argv[i], "--help") ? 0 : 1;
    }
  }

  Rng rng(seed);
  nn::seed_init_rng(seed);

  // --- cohort ---
  data::ClassificationDatasetConfig ccfg;
  ccfg.depth = depth;
  ccfg.image_px = px;
  ccfg.num_train = volumes;
  ccfg.num_test = 0;
  ccfg.min_lesion_radius_frac = 4.0 / double(px);
  std::printf("generating %lld training volumes...\n", (long long)volumes);
  const data::ClassificationDataset cds =
      data::make_classification_dataset(ccfg, rng);

  // --- Enhancement AI ---
  data::EnhancementDatasetConfig ecfg;
  ecfg.image_px = px;
  ecfg.num_train = std::max<index_t>(12, volumes / 2);
  ecfg.num_val = 2;
  ecfg.num_test = 0;
  ecfg.lowdose.photons_per_ray = 2e4;
  const data::EnhancementDataset eds =
      data::make_enhancement_dataset(ecfg, rng);
  nn::DDnetConfig ncfg;
  ncfg.base_channels = 8;
  ncfg.growth = 8;
  ncfg.levels = 2;
  ncfg.dense_layers = 2;
  pipeline::EnhancementAI enh(ncfg);
  pipeline::EnhancementTrainConfig etc;
  etc.epochs = epochs;
  etc.lr = 2e-3;
  etc.msssim_scales = 1;
  std::printf("training Enhancement AI (%d epochs)...\n", etc.epochs);
  if (ranks > 1) {
    // Multi-node path: one DDnet replica per modeled rank, gradients
    // synchronized by ring all-reduce. Lock-step Adam updates keep the
    // replicas bit-identical, so saving rank 0 saves the cluster model.
    dist::DdpConfig dcfg;
    dcfg.world_size = ranks;
    dcfg.per_worker_batch = 1;
    dcfg.lr = etc.lr;
    dcfg.lr_decay = etc.lr_decay;
    dcfg.guard.enabled = guard;
    dcfg.guard.recv_timeout_s = recv_timeout_s;
    dcfg.overlap = overlap;
    dcfg.bucket_bytes = bucket_kb * 1024;
    dcfg.collective = collective;
    dist::DdpTrainer trainer(
        [&ncfg] { return std::make_shared<nn::DDnet>(ncfg); }, dcfg);
    auto loss_fn = [&eds, &etc](nn::Module& model, int /*rank*/,
                                const std::vector<index_t>& samples) {
      auto& net = dynamic_cast<nn::DDnet&>(model);
      autograd::Var total;
      for (const index_t s : samples) {
        const auto& pair = eds.train[s];
        autograd::Var x(pair.low.clone().reshape(
            {1, 1, pair.low.dim(0), pair.low.dim(1)}));
        autograd::Var loss = autograd::enhancement_loss(
            net.forward(x),
            pair.full.clone().reshape(
                {1, 1, pair.full.dim(0), pair.full.dim(1)}),
            etc.msssim_weight, 11, etc.msssim_scales);
        total = total.defined() ? autograd::add(total, loss) : loss;
      }
      return autograd::mul_scalar(
          total, 1.0f / static_cast<real_t>(samples.size()));
    };
    for (int e = 0; e < etc.epochs; ++e) {
      const dist::EpochStats st = trainer.train_epoch(
          static_cast<index_t>(eds.train.size()), loss_fn, rng);
      trainer.decay_lr();
      std::printf("  epoch %d/%d loss %.5f (modeled cluster %.2fs)\n",
                  e + 1, etc.epochs, st.mean_loss, st.modeled_seconds);
    }
    dynamic_cast<nn::DDnet&>(trainer.model(0)).save(out_dir + "/ddnet.tnsr");
  } else {
    enh.train(eds, etc, rng);
    enh.network().save(out_dir + "/ddnet.tnsr");
  }

  // --- Segmentation AI ---
  pipeline::SegmentationAI seg;
  pipeline::SegmentationTrainConfig scfg;
  scfg.epochs = std::max(6, epochs / 2);
  scfg.lr = 5e-3;
  std::printf("training Segmentation AI (%d epochs)...\n", scfg.epochs);
  seg.train(cds.train, scfg, rng);
  seg.network().save(out_dir + "/ahnet.tnsr");

  // --- Classification AI ---
  std::vector<Tensor> vols;
  std::vector<int> labels;
  for (const auto& s : cds.train) {
    vols.push_back(ct::normalize_hu(s.hu).mul(s.lung_mask));
    labels.push_back(s.label);
  }
  pipeline::ClassificationAI cls;
  pipeline::ClassificationTrainConfig ctc;
  ctc.epochs = epochs;
  ctc.lr = 1e-3;
  std::printf("training Classification AI (%d epochs)...\n", ctc.epochs);
  cls.train(vols, labels, ctc, rng);
  cls.network().save(out_dir + "/densenet3d.tnsr");

  std::ofstream manifest(out_dir + "/manifest.txt");
  manifest << "px " << px << "\ndepth " << depth << "\nvolumes " << volumes
           << "\nepochs " << epochs << "\nseed " << seed << "\nranks "
           << ranks << "\n";
  std::printf("models written to %s/\n", out_dir.c_str());
  if (!trace_out.empty()) {
    if (trace::write_chrome_json(trace_out)) {
      std::printf("trace written to %s (chrome://tracing)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    }
  }
  return 0;
}
